"""The distributed control plane the adversary perturbs.

A :class:`ControllerCluster` (mastership, quorum, failover) plus per-node
*mastership views* and a set of devices exchanging real control messages —
``PacketIn`` → reactive ``FlowMod`` installs, ``EchoRequest``/``EchoReply``
liveness probes, ``MastershipAnnouncement`` view synchronization — with a
:class:`MessageInterposer` in front of every endpoint.  The failure modes
the paper's hardest bug classes need all emerge from message-level effects:

* a partition makes the majority re-assign mastership while the isolated
  old master keeps a stale self-claim → **dual mastership**;
* a kill under the buggy quorum knob wedges the cluster (ONOS-5992) and
  strands **orphaned devices**;
* drops/corruption of ``PacketIn``/``FlowMod`` break **flow convergence**;
* clock skew and drops starve **echo liveness**.

``hardened=True`` is the PR-1-style build: fixed quorum accounting,
term-checked view application, one retransmission for unanswered echoes and
uninstalled flows (priced as RETRY in the ledger), and anti-entropy view
sync after a partition heals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adversary.interposer import MessageInterposer
from repro.adversary.invariants import (
    Invariant,
    InvariantViolation,
    MonitorSet,
)
from repro.adversary.schedule import CHANNEL_ACTIONS, FaultAction, FaultEvent, FaultSchedule
from repro.errors import ReproError
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.sdnsim.cluster import ControllerCluster
from repro.sdnsim.clock import EventScheduler
from repro.sdnsim.messages import (
    Action,
    EchoReply,
    EchoRequest,
    FlowMod,
    Match,
    Packet,
    PacketIn,
)
from repro.sdnsim.observers import Outcome
from repro.taxonomy import Trigger


@dataclass(frozen=True)
class MastershipAnnouncement:
    """Cluster-internal view-sync message: ``master`` owns ``dpid`` at ``term``."""

    dpid: int
    master: str
    term: int


@dataclass
class DeviceState:
    """One switch as the adversary world sees it."""

    dpid: int
    flow_table: set[str] = field(default_factory=set)
    pending_echoes: dict[int, float] = field(default_factory=dict)
    echo_seq: int = 0
    echoes_answered: int = 0


def _match_key(match: Match) -> str:
    return f"{match.dst_mac}/{match.vlan}"


def _corrupt_device_message(message):
    """Bit-flip semantics for southbound messages.

    A corrupted ``FlowMod`` installs an entry for the wrong match (so the
    requested flow never converges); a corrupted ``EchoReply`` carries a
    bogus sequence number (so the probe stays pending); anything else is
    unparseable and dropped.
    """
    if isinstance(message, FlowMod):
        return FlowMod(
            dpid=message.dpid,
            match=Match(dst_mac="de:ad:be:ef:00:00"),
            actions=message.actions,
            priority=message.priority,
        )
    if isinstance(message, EchoReply):
        return EchoReply(dpid=message.dpid, sequence=-1)
    return None


class AdversaryWorld:
    """A small replicated control plane wired through interposers."""

    def __init__(
        self,
        *,
        nodes: tuple[str, ...] = ("a", "b", "c"),
        dpids: tuple[int, ...] = (1, 2, 3),
        hardened: bool = False,
        ledger: ResilienceLedger | None = None,
        invariants: list[Invariant] | None = None,
        election_delay: float = 1.0,
        echo_interval: float = 5.0,
        echo_deadline: float = 10.0,
        convergence_horizon: float = 8.0,
        settle_horizon: float = 3.0,
        flows: int | None = None,
    ) -> None:
        if len(nodes) < 2:
            raise ReproError("the adversary world needs at least two nodes")
        if flows is not None and flows < 1:
            raise ReproError("flows must be >= 1 when given")
        self.nodes = tuple(nodes)
        self.dpids = tuple(dpids)
        self.hardened = hardened
        self.ledger = ledger
        #: Total workload flow requests per run (None = one per device per
        #: round, the hand-sized legacy workload).  Large parameterized
        #: topologies cap this so run cost scales with the workload, not
        #: with switches x rounds.
        self.flows = flows
        self.echo_interval = echo_interval
        self.echo_deadline = echo_deadline
        self.convergence_horizon = convergence_horizon
        self.settle_horizon = settle_horizon
        self.scheduler = EventScheduler()
        # Bare builds carry the ONOS-5992 quorum accounting; hardened ones
        # count live members (the fix).
        self.cluster = ControllerCluster(
            list(nodes),
            self.scheduler,
            quorum_counts_live_members=hardened,
            election_delay=election_delay,
        )
        self.views: dict[str, dict[int, tuple[int, str]]] = {n: {} for n in nodes}
        self.skew: dict[str, float] = {n: 0.0 for n in nodes}
        self.partitions: list[frozenset[str]] | None = None
        self.devices: dict[int, DeviceState] = {d: DeviceState(d) for d in dpids}
        #: (dpid, match key) -> time the device first requested the flow.
        self.issued_flows: dict[tuple[int, str], float] = {}
        self.last_disruption = -1e9
        self._terms: dict[int, int] = {}
        self._truth: dict[int, str] = {}
        self._echo_retried: set[tuple[int, int]] = set()
        self._flow_retried: set[tuple[int, str]] = set()
        self.monitors = MonitorSet(ledger=ledger)
        if invariants is not None:
            self.monitors.invariants = invariants

        self.node_channels: dict[str, MessageInterposer] = {
            n: MessageInterposer(
                self.scheduler,
                self._make_node_deliver(n),
                name=f"node:{n}",
                reachable=self._make_reachability(n),
                corrupter=self._make_node_corrupter(n),
            )
            for n in nodes
        }
        self.dev_channels: dict[int, MessageInterposer] = {
            d: MessageInterposer(
                self.scheduler,
                self._make_dev_deliver(d),
                name=f"dev:{d}",
                corrupter=_corrupt_device_message,
            )
            for d in dpids
        }

        # Converged start: every device mastered, every view in agreement.
        for dpid in self.dpids:
            master = self.cluster.assign_mastership(dpid)
            self._terms[dpid] = 1
            self._truth[dpid] = master
            for node in self.nodes:
                self.views[node][dpid] = (1, master)

    # -- partition topology ------------------------------------------------------
    def _make_reachability(self, owner: str):
        def reachable(source: str | None) -> bool:
            if self.partitions is None or source is None:
                return True
            if not source.startswith("node:"):
                return True  # devices reach every node (management network)
            peer = source.split(":", 1)[1]
            return self._same_group(owner, peer)

        return reachable

    def _same_group(self, a: str, b: str) -> bool:
        if self.partitions is None:
            return True
        for group in self.partitions:
            if a in group:
                return b in group
        return a == b

    def _majority_group(self) -> frozenset[str] | None:
        """The partition side holding the most live members (None on a tie)."""
        if self.partitions is None:
            return None
        sized = sorted(
            self.partitions,
            key=lambda g: (sum(1 for n in g if self.cluster.instances[n].is_alive), sorted(g)),
            reverse=True,
        )
        if len(sized) > 1:
            top = sum(1 for n in sized[0] if self.cluster.instances[n].is_alive)
            second = sum(1 for n in sized[1] if self.cluster.instances[n].is_alive)
            if top == second:
                return None
        return sized[0]

    # -- message corruption ------------------------------------------------------
    def _make_node_corrupter(self, owner: str):
        def corrupt(message):
            if isinstance(message, MastershipAnnouncement):
                # The classic state corruption: the receiving node decodes
                # the announcement as naming *itself* master.
                return MastershipAnnouncement(
                    dpid=message.dpid, master=owner, term=message.term
                )
            return None  # unparseable frame: dropped

        return corrupt

    # -- delivery endpoints ------------------------------------------------------
    def _make_node_deliver(self, node: str):
        def deliver(message, source: str | None) -> None:
            if not self.cluster.instances[node].is_alive:
                return
            if isinstance(message, MastershipAnnouncement):
                term, _master = self.views[node].get(message.dpid, (0, ""))
                if self.hardened and message.term <= term:
                    return  # stale or duplicate announcement rejected
                self.views[node][message.dpid] = (message.term, message.master)
            elif isinstance(message, EchoRequest):
                reply = EchoReply(dpid=message.dpid, sequence=message.sequence)
                self.scheduler.schedule(
                    max(0.0, self.skew[node]),
                    lambda: self.dev_channels[message.dpid].feed(
                        reply, source=f"node:{node}"
                    ),
                )
            elif isinstance(message, PacketIn):
                mod = FlowMod(
                    dpid=message.dpid,
                    match=Match(dst_mac=message.packet.dst_mac),
                    actions=(Action(output_port=message.in_port),),
                )
                self.scheduler.schedule(
                    max(0.0, self.skew[node]),
                    lambda: self.dev_channels[message.dpid].feed(
                        mod, source=f"node:{node}"
                    ),
                )

        return deliver

    def _make_dev_deliver(self, dpid: int):
        def deliver(message, source: str | None) -> None:
            device = self.devices[dpid]
            if isinstance(message, FlowMod):
                device.flow_table.add(_match_key(message.match))
            elif isinstance(message, EchoReply):
                if device.pending_echoes.pop(message.sequence, None) is not None:
                    device.echoes_answered += 1

        return deliver

    # -- workload ----------------------------------------------------------------
    def _send_echo(self, dpid: int) -> None:
        device = self.devices[dpid]
        device.echo_seq += 1
        seq = device.echo_seq
        device.pending_echoes[seq] = self.scheduler.clock.now
        self._transmit_echo(dpid, seq)
        if self.hardened:
            self.scheduler.schedule(
                self.echo_deadline * 0.5, lambda: self._maybe_retry_echo(dpid, seq)
            )

    def _transmit_echo(self, dpid: int, seq: int) -> None:
        master = self.cluster.master_of(dpid)
        if master is None:
            return  # nowhere to send: the pending echo will go stale
        self.node_channels[master].feed(
            EchoRequest(dpid=dpid, sequence=seq), source=f"dev:{dpid}"
        )

    def _maybe_retry_echo(self, dpid: int, seq: int) -> None:
        device = self.devices[dpid]
        if seq not in device.pending_echoes or (dpid, seq) in self._echo_retried:
            return
        self._echo_retried.add((dpid, seq))
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.RETRY,
                component=f"dev:{dpid}",
                time=self.scheduler.clock.now,
                detail=f"echo seq={seq} retransmitted",
                trigger=Trigger.NETWORK_EVENTS,
            )
        self._transmit_echo(dpid, seq)

    def _request_flow(self, dpid: int, round_index: int) -> None:
        dst_mac = f"aa:00:00:00:{round_index % 256:02x}:{dpid % 256:02x}"
        key = _match_key(Match(dst_mac=dst_mac))
        self.issued_flows[(dpid, key)] = self.scheduler.clock.now
        self._transmit_packet_in(dpid, dst_mac)
        if self.hardened:
            self.scheduler.schedule(
                self.convergence_horizon * 0.6,
                lambda: self._maybe_retry_flow(dpid, dst_mac, key),
            )

    def _transmit_packet_in(self, dpid: int, dst_mac: str) -> None:
        master = self.cluster.master_of(dpid)
        if master is None:
            return
        packet_in = PacketIn(
            dpid=dpid,
            in_port=1,
            packet=Packet(src_mac=f"02:00:00:00:00:{dpid:02x}", dst_mac=dst_mac),
        )
        self.node_channels[master].feed(packet_in, source=f"dev:{dpid}")

    def _maybe_retry_flow(self, dpid: int, dst_mac: str, key: str) -> None:
        if key in self.devices[dpid].flow_table or (dpid, key) in self._flow_retried:
            return
        self._flow_retried.add((dpid, key))
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.RETRY,
                component=f"dev:{dpid}",
                time=self.scheduler.clock.now,
                detail=f"flow {key!r} re-requested",
                trigger=Trigger.NETWORK_EVENTS,
            )
        self._transmit_packet_in(dpid, dst_mac)

    # -- mastership sync ---------------------------------------------------------
    def _announce(self, dpid: int, master: str, term: int) -> None:
        for node in self.nodes:
            self.node_channels[node].feed(
                MastershipAnnouncement(dpid=dpid, master=master, term=term),
                source=f"node:{master}",
            )

    def _reassign(self, dpid: int, new_master: str) -> None:
        self._terms[dpid] += 1
        self._truth[dpid] = new_master
        self.cluster.mastership[dpid] = new_master
        self._announce(dpid, new_master, self._terms[dpid])

    def _partition_failover(self) -> None:
        """The majority side declares cross-partition masters dead and
        re-assigns their devices; the isolated old masters keep stale
        self-claims — the dual-mastership mechanism."""
        majority = self._majority_group()
        if majority is None:
            return
        live_majority = sorted(
            n for n in majority if self.cluster.instances[n].is_alive
        )
        if not live_majority or not self.cluster.has_quorum():
            return
        load = {n: 0 for n in live_majority}
        for master in self._truth.values():
            if master in load:
                load[master] += 1
        for dpid in sorted(self.dpids):
            if self._truth.get(dpid) in live_majority:
                continue
            chosen = min(load, key=lambda n: (load[n], n))
            load[chosen] += 1
            self._reassign(dpid, chosen)

    def _sync_after_kill(self) -> None:
        """Propagate the cluster's failover decisions as announcements."""
        for dpid in sorted(self.dpids):
            actual = self.cluster.mastership.get(dpid)
            if actual is not None and actual != self._truth.get(dpid):
                self._terms[dpid] += 1
                self._truth[dpid] = actual
                self._announce(dpid, actual, self._terms[dpid])

    def _heal(self) -> None:
        self.partitions = None
        self.last_disruption = self.scheduler.clock.now
        if self.hardened:
            # Anti-entropy: re-broadcast the truth; term checks make every
            # view converge and stale self-claims die.
            for dpid in sorted(self.dpids):
                self._announce(dpid, self._truth[dpid], self._terms[dpid])

    # -- schedule execution ------------------------------------------------------
    def load_schedule(self, schedule: FaultSchedule) -> None:
        for event in schedule:
            self.scheduler.schedule_at(event.time, self._make_applier(event))

    def _make_applier(self, event: FaultEvent):
        def apply() -> None:
            self._apply_event(event)

        return apply

    def _apply_event(self, event: FaultEvent) -> None:
        if event.action in CHANNEL_ACTIONS:
            self._channel_for(event.target).arm(event.action, event.param)
        elif event.action is FaultAction.PARTITION:
            self.partitions = _parse_partition(event.target, self.nodes)
            self.last_disruption = self.scheduler.clock.now
            self.scheduler.schedule(
                self.cluster.election_delay, self._partition_failover
            )
        elif event.action is FaultAction.HEAL:
            self._heal()
        elif event.action is FaultAction.CLOCK_SKEW:
            if event.target not in self.skew:
                raise ReproError(f"unknown node {event.target!r} for clock skew")
            self.skew[event.target] += float(event.param)
        elif event.action is FaultAction.KILL:
            if event.target not in self.cluster.instances:
                raise ReproError(f"unknown node {event.target!r} for kill")
            if self.cluster.instances[event.target].is_alive:
                self.cluster.kill_instance(event.target)
                self.last_disruption = self.scheduler.clock.now
                self.scheduler.schedule(
                    self.cluster.election_delay + 0.001, self._sync_after_kill
                )

    def _channel_for(self, target: str) -> MessageInterposer:
        kind, _, ident = target.partition(":")
        if kind == "node" and ident in self.node_channels:
            return self.node_channels[ident]
        if kind == "dev":
            try:
                dpid = int(ident)
            except ValueError:
                raise ReproError(f"malformed device target {target!r}") from None
            if dpid in self.dev_channels:
                return self.dev_channels[dpid]
        raise ReproError(f"unknown channel target {target!r}")

    # -- running -----------------------------------------------------------------
    def run(self, *, horizon: float = 90.0, check_interval: float = 1.0) -> None:
        """Drive the workload plus schedule to ``horizon``, monitoring as we go."""
        t = self.echo_interval
        while t < horizon:
            for dpid in self.dpids:
                self.scheduler.schedule_at(t, self._make_echo_sender(dpid))
            t += self.echo_interval
        if self.flows is None:
            round_index = 0
            t = 3.0
            while t < horizon * 0.8:
                for dpid in self.dpids:
                    self.scheduler.schedule_at(
                        t, self._make_flow_requester(dpid, round_index)
                    )
                round_index += 1
                t += 7.0
        else:
            # K flows round-robin over devices, spread across the active
            # window so mid-run disruptions always have traffic to break.
            window = max(horizon * 0.8 - 3.0, 1.0)
            step = window / self.flows
            for index in range(self.flows):
                dpid = self.dpids[index % len(self.dpids)]
                self.scheduler.schedule_at(
                    3.0 + index * step,
                    self._make_flow_requester(dpid, index // len(self.dpids)),
                )
        t = check_interval
        while t <= horizon:
            self.scheduler.schedule_at(t, lambda: self.monitors.run(self))
            t += check_interval
        self.scheduler.run(until=horizon)
        self.monitors.run(self)

    def _make_echo_sender(self, dpid: int):
        return lambda: self._send_echo(dpid)

    def _make_flow_requester(self, dpid: int, round_index: int):
        return lambda: self._request_flow(dpid, round_index)


def _parse_partition(spec: str, nodes: tuple[str, ...]) -> list[frozenset[str]]:
    groups = [
        frozenset(part.strip() for part in group.split(",") if part.strip())
        for group in spec.split("|")
        if group.strip()
    ]
    if not groups:
        raise ReproError(f"empty partition spec {spec!r}")
    mentioned = {n for g in groups for n in g}
    unknown = mentioned - set(nodes)
    if unknown:
        raise ReproError(f"partition names unknown nodes {sorted(unknown)}")
    groups.extend(frozenset({n}) for n in nodes if n not in mentioned)
    return groups


@dataclass
class AdversaryResult:
    """One adversary run: the schedule, the world, and what broke."""

    schedule: FaultSchedule
    world: AdversaryWorld
    violations: list[InvariantViolation]

    @property
    def violated(self) -> bool:
        return bool(self.violations)

    @property
    def first_violation(self) -> InvariantViolation | None:
        return self.violations[0] if self.violations else None

    def by_invariant(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts

    def violated_subjects(self) -> set[tuple[str, str]]:
        """Distinct (invariant, subject) pairs that broke at least once.

        The fair A/B unit: a permanently-wedged cluster and a flapping
        (repeatedly breaking and healing) probe each count once per subject,
        so the edge-triggered re-fires don't skew arm comparisons.
        """
        return {(v.invariant, v.subject) for v in self.violations}

    def distinct_by_invariant(self) -> dict[str, int]:
        """Violating-subject counts per invariant (see ``violated_subjects``)."""
        counts: dict[str, int] = {}
        for invariant, _subject in self.violated_subjects():
            counts[invariant] = counts.get(invariant, 0) + 1
        return counts

    def outcome(self) -> Outcome:
        """Map the run onto the taxonomy, like every other campaign does."""
        first = self.first_violation
        if first is None:
            return Outcome(symptom=None, detail="no invariant violated")
        return Outcome(
            symptom=first.symptom,
            byzantine_mode=first.byzantine_mode,
            detail=f"{first.invariant} [{first.subject}]: {first.detail}",
        )


def run_adversary(
    schedule: FaultSchedule,
    *,
    hardened: bool = False,
    ledger: ResilienceLedger | None = None,
    nodes: tuple[str, ...] = ("a", "b", "c"),
    dpids: tuple[int, ...] = (1, 2, 3),
    horizon: float = 90.0,
    invariants: list[Invariant] | None = None,
    flows: int | None = None,
    echo_interval: float = 5.0,
    check_interval: float = 1.0,
) -> AdversaryResult:
    """Deterministically replay ``schedule`` against a fresh world."""
    world = AdversaryWorld(
        nodes=nodes, dpids=dpids, hardened=hardened, ledger=ledger,
        invariants=invariants, flows=flows, echo_interval=echo_interval,
    )
    world.load_schedule(schedule)
    world.run(
        horizon=max(horizon, schedule.horizon + 20.0),
        check_interval=check_interval,
    )
    return AdversaryResult(
        schedule=schedule, world=world, violations=list(world.monitors.violations)
    )


def find_violating_schedule(
    start_seed: int,
    *,
    events: int = 20,
    horizon: float = 60.0,
    hardened: bool = False,
    max_seeds: int = 64,
    nodes: tuple[str, ...] = ("a", "b", "c"),
    dpids: tuple[int, ...] = (1, 2, 3),
) -> tuple[int, FaultSchedule, AdversaryResult]:
    """Scan seeds from ``start_seed`` until a schedule violates an invariant."""
    from repro.adversary.schedule import random_schedule

    for offset in range(max_seeds):
        seed = start_seed + offset
        schedule = random_schedule(
            seed, events=events, horizon=horizon, nodes=nodes, dpids=dpids
        )
        result = run_adversary(
            schedule, hardened=hardened, nodes=nodes, dpids=dpids, horizon=horizon + 30.0
        )
        if result.violated:
            return seed, schedule, result
    raise ReproError(
        f"no violating schedule in {max_seeds} seeds from {start_seed} "
        f"({events} events, horizon {horizon})"
    )
