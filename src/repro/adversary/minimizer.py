"""STS-style trace minimization: delta debugging over fault schedules.

Given a schedule that violates an invariant, shrink it to a minimal
sub-schedule that still reproduces *the same* invariant violation under
deterministic replay — the core of Scott et al.'s STS (SIGCOMM'14) retrofit
troubleshooting loop.  Because every adversary run is a pure function of
its schedule, the classic ddmin algorithm (Zeller & Hildebrandt) applies
directly: no flakiness handling, no replay heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.schedule import FaultSchedule
from repro.adversary.world import AdversaryResult, run_adversary
from repro.errors import ReproError


@dataclass(frozen=True)
class MinimizationResult:
    """The outcome of one ddmin pass."""

    original: FaultSchedule
    minimized: FaultSchedule
    target: str
    #: World replays actually executed (memoized subset probes are free).
    replays: int
    #: Subset tests ddmin asked for, including memoization hits.
    probes: int = 0

    @property
    def reduction(self) -> float:
        """Fraction of events removed (0 = nothing, 1 = everything)."""
        if not len(self.original):
            return 0.0
        return 1.0 - len(self.minimized) / len(self.original)

    def summary(self) -> str:
        return (
            f"{len(self.original)} -> {len(self.minimized)} events "
            f"({self.reduction:.0%} removed) reproducing {self.target!r} "
            f"in {self.replays} replays ({self.probes} probes)"
        )


def _chunks(indices: list[int], n: int) -> list[list[int]]:
    """Split ``indices`` into ``n`` near-equal contiguous chunks."""
    size, rem = divmod(len(indices), n)
    out: list[list[int]] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        if end > start:
            out.append(indices[start:end])
        start = end
    return out


def minimize_schedule(
    schedule: FaultSchedule,
    *,
    target: str | None = None,
    predicate: Callable[[AdversaryResult], bool] | None = None,
    replay: Callable[[FaultSchedule], AdversaryResult] | None = None,
    max_replays: int = 512,
    **world_kwargs,
) -> MinimizationResult:
    """ddmin ``schedule`` down to a minimal reproducer of ``target``.

    ``target`` is an invariant name; by default the invariant of the first
    violation the full schedule produces.  ``predicate`` replaces the
    invariant-name check entirely — the fuzzer uses it to preserve a whole
    coverage signature, not just an invariant — with ``target`` kept as the
    reproducer's label.  ``replay`` defaults to :func:`run_adversary` with
    ``world_kwargs`` (e.g. ``hardened=True``) — pass a custom closure to
    minimize against a different system under test.

    Identical index-subsets are memoized: replay is a pure function of the
    schedule, so ddmin's revisits (complement passes re-deriving an earlier
    chunk, granularity resets) never re-execute the world.
    """
    if replay is None:
        replay = lambda s: run_adversary(s, **world_kwargs)  # noqa: E731

    replays = 0
    probes = 0
    tested: dict[tuple[int, ...], bool] = {}

    def holds(result: AdversaryResult, wanted: str) -> bool:
        if predicate is not None:
            return predicate(result)
        return any(v.invariant == wanted for v in result.violations)

    def violates(keep: list[int], wanted: str) -> bool:
        nonlocal replays, probes
        probes += 1
        key = tuple(keep)
        if key in tested:
            return tested[key]
        replays += 1
        if replays > max_replays:
            raise ReproError(f"minimization exceeded {max_replays} replays")
        outcome = holds(replay(schedule.subset(keep)), wanted)
        tested[key] = outcome
        return outcome

    base = replay(schedule)
    replays += 1
    probes += 1
    if predicate is not None:
        if not holds(base, target or ""):
            raise ReproError("schedule does not satisfy the predicate; "
                             "nothing to minimize")
        if target is None:
            target = "predicate"
    else:
        if not base.violations:
            raise ReproError(
                "schedule does not violate any invariant; nothing to minimize"
            )
        if target is None:
            target = base.violations[0].invariant
        elif not any(v.invariant == target for v in base.violations):
            raise ReproError(f"schedule does not violate {target!r}")
    tested[tuple(range(len(schedule)))] = True

    indices = list(range(len(schedule)))
    n = 2
    while len(indices) >= 2:
        reduced = False
        for chunk in _chunks(indices, n):
            if violates(chunk, target):
                indices = chunk
                n = 2
                reduced = True
                break
        if reduced:
            continue
        if n < len(indices):
            for chunk in _chunks(indices, n):
                complement = [i for i in indices if i not in set(chunk)]
                if complement and violates(complement, target):
                    indices = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if n < len(indices):
            n = min(len(indices), 2 * n)
        else:
            break

    minimized = schedule.subset(indices)
    return MinimizationResult(
        original=schedule, minimized=minimized, target=target,
        replays=replays, probes=probes,
    )
