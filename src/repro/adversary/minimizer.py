"""STS-style trace minimization: delta debugging over fault schedules.

Given a schedule that violates an invariant, shrink it to a minimal
sub-schedule that still reproduces *the same* invariant violation under
deterministic replay — the core of Scott et al.'s STS (SIGCOMM'14) retrofit
troubleshooting loop.  Because every adversary run is a pure function of
its schedule, the classic ddmin algorithm (Zeller & Hildebrandt) applies
directly: no flakiness handling, no replay heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.schedule import FaultSchedule
from repro.adversary.world import AdversaryResult, run_adversary
from repro.errors import ReproError


@dataclass(frozen=True)
class MinimizationResult:
    """The outcome of one ddmin pass."""

    original: FaultSchedule
    minimized: FaultSchedule
    target: str
    replays: int

    @property
    def reduction(self) -> float:
        """Fraction of events removed (0 = nothing, 1 = everything)."""
        if not len(self.original):
            return 0.0
        return 1.0 - len(self.minimized) / len(self.original)

    def summary(self) -> str:
        return (
            f"{len(self.original)} -> {len(self.minimized)} events "
            f"({self.reduction:.0%} removed) reproducing {self.target!r} "
            f"in {self.replays} replays"
        )


def _chunks(indices: list[int], n: int) -> list[list[int]]:
    """Split ``indices`` into ``n`` near-equal contiguous chunks."""
    size, rem = divmod(len(indices), n)
    out: list[list[int]] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        if end > start:
            out.append(indices[start:end])
        start = end
    return out


def minimize_schedule(
    schedule: FaultSchedule,
    *,
    target: str | None = None,
    replay: Callable[[FaultSchedule], AdversaryResult] | None = None,
    max_replays: int = 512,
    **world_kwargs,
) -> MinimizationResult:
    """ddmin ``schedule`` down to a minimal reproducer of ``target``.

    ``target`` is an invariant name; by default the invariant of the first
    violation the full schedule produces.  ``replay`` defaults to
    :func:`run_adversary` with ``world_kwargs`` (e.g. ``hardened=True``) —
    pass a custom closure to minimize against a different system under test.
    """
    if replay is None:
        replay = lambda s: run_adversary(s, **world_kwargs)  # noqa: E731

    replays = 0

    def violates(sub: FaultSchedule, wanted: str) -> bool:
        nonlocal replays
        replays += 1
        if replays > max_replays:
            raise ReproError(f"minimization exceeded {max_replays} replays")
        return any(v.invariant == wanted for v in replay(sub).violations)

    base = replay(schedule)
    replays += 1
    if not base.violations:
        raise ReproError("schedule does not violate any invariant; nothing to minimize")
    if target is None:
        target = base.violations[0].invariant
    elif not any(v.invariant == target for v in base.violations):
        raise ReproError(f"schedule does not violate {target!r}")

    indices = list(range(len(schedule)))
    n = 2
    while len(indices) >= 2:
        reduced = False
        for chunk in _chunks(indices, n):
            if violates(schedule.subset(chunk), target):
                indices = chunk
                n = 2
                reduced = True
                break
        if reduced:
            continue
        if n < len(indices):
            for chunk in _chunks(indices, n):
                complement = [i for i in indices if i not in set(chunk)]
                if complement and violates(schedule.subset(complement), target):
                    indices = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if n < len(indices):
            n = min(len(indices), 2 * n)
        else:
            break

    minimized = schedule.subset(indices)
    return MinimizationResult(
        original=schedule, minimized=minimized, target=target, replays=replays
    )
