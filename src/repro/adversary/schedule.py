"""Replayable fault schedules: the adversary's input language.

An STS-style adversary is only useful if its perturbations are *replayable*:
the same schedule against the same build must produce the same violation,
or a minimized trace is worthless.  A :class:`FaultSchedule` is therefore an
explicit, serializable list of ``(time, target, action, param)`` events —
no hidden RNG state, no wall clock.  Randomness exists only in
:func:`random_schedule`, which derives the whole schedule from a seed up
front; after that, execution is pure discrete-event replay.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.errors import ReproError, ScheduleError


class FaultAction(enum.Enum):
    """The adversary's action vocabulary.

    Message-level actions (``DROP`` .. ``CORRUPT``) arm a rule on the target
    channel and affect the next ``param`` messages through it; node-level
    actions (``PARTITION`` .. ``KILL``) change control-plane membership or
    timing directly.
    """

    DROP = "drop"
    DUPLICATE = "duplicate"
    DELAY = "delay"
    REORDER = "reorder"
    CORRUPT = "corrupt"
    PARTITION = "partition"
    HEAL = "heal"
    CLOCK_SKEW = "clock_skew"
    KILL = "kill"


#: Actions interpreted by a message channel (vs. by the world itself).
CHANNEL_ACTIONS = frozenset(
    {
        FaultAction.DROP,
        FaultAction.DUPLICATE,
        FaultAction.DELAY,
        FaultAction.REORDER,
        FaultAction.CORRUPT,
    }
)


def _numeric_field(data: dict[str, object], name: str, value: object) -> float:
    # bool is an int subclass, but "time": true is a malformed document.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScheduleError(
            f"fault event {data!r}: field {name!r} must be a number, "
            f"got {type(value).__name__}"
        )
    return float(value)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled adversary action.

    ``target`` names a channel (``node:a``, ``dev:1``), a node (for
    ``KILL``/``CLOCK_SKEW``), or a partition spec (``a|b,c`` — groups
    separated by ``|``, members by ``,``).  ``param`` is action-specific:
    message count for DROP/DUPLICATE/REORDER/CORRUPT, seconds for
    DELAY/CLOCK_SKEW, unused for PARTITION/HEAL/KILL.
    """

    time: float
    target: str
    action: FaultAction
    param: float = 1.0

    def to_dict(self) -> dict[str, object]:
        return {
            "time": self.time,
            "target": self.target,
            "action": self.action.value,
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FaultEvent":
        if not isinstance(data, dict):
            raise ScheduleError(
                f"fault event must be a JSON object, got {type(data).__name__}"
            )
        missing = [key for key in ("time", "target", "action") if key not in data]
        if missing:
            raise ScheduleError(
                f"fault event {data!r} is missing field(s) {missing}"
            )
        try:
            action = FaultAction(data["action"])
        except ValueError:
            known = ", ".join(sorted(a.value for a in FaultAction))
            raise ScheduleError(
                f"unknown fault action {data['action']!r} (known: {known})"
            ) from None
        time = _numeric_field(data, "time", data["time"])
        param = _numeric_field(data, "param", data.get("param", 1.0))
        if time < 0:
            raise ScheduleError(f"fault event {data!r} scheduled before t=0")
        return cls(time=time, target=str(data["target"]), action=action, param=param)


@dataclass
class FaultSchedule:
    """An ordered, replayable sequence of adversary actions."""

    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for event in self.events:
            if event.time < 0:
                raise ScheduleError(f"fault event before t=0: {event}")
        self.events = sorted(self.events, key=lambda e: (e.time, e.target, e.action.value))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def add(self, time: float, target: str, action: FaultAction, param: float = 1.0) -> "FaultSchedule":
        self.events.append(FaultEvent(time=time, target=target, action=action, param=param))
        self.events.sort(key=lambda e: (e.time, e.target, e.action.value))
        return self

    def subset(self, indices: list[int]) -> "FaultSchedule":
        """A new schedule keeping only the events at ``indices`` (in order)."""
        keep = set(indices)
        return FaultSchedule([e for i, e in enumerate(self.events) if i in keep])

    @property
    def horizon(self) -> float:
        return max((e.time for e in self.events), default=0.0)

    def to_dicts(self) -> list[dict[str, object]]:
        return [e.to_dict() for e in self.events]

    def to_json(self) -> str:
        return json.dumps(self.to_dicts(), indent=2)

    @classmethod
    def from_dicts(cls, rows: list[dict[str, object]]) -> "FaultSchedule":
        return cls([FaultEvent.from_dict(row) for row in rows])

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            rows = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScheduleError(f"schedule document is not valid JSON: {exc}") from exc
        if not isinstance(rows, list):
            raise ScheduleError("a schedule JSON document must be a list of events")
        return cls.from_dicts(rows)

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.action.value] = counts.get(event.action.value, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"{len(self.events)} events over {self.horizon:.1f}s ({parts or 'empty'})"


def random_schedule(
    seed: int,
    *,
    events: int = 20,
    horizon: float = 60.0,
    nodes: tuple[str, ...] = ("a", "b", "c"),
    dpids: tuple[int, ...] = (1, 2, 3),
) -> FaultSchedule:
    """Derive a whole schedule from ``seed`` — the only RNG in the adversary.

    The action mix is weighted toward the message-level perturbations the
    paper's nondeterministic bug tail needs (drops, delays, reorders) with a
    steady minority of partitions, kills, and clock skews so cluster-level
    invariants get exercised too.
    """
    import random

    if events < 1:
        raise ReproError("a schedule needs at least one event")
    rng = random.Random(seed)
    weighted = (
        [FaultAction.DROP] * 4
        + [FaultAction.DELAY] * 3
        + [FaultAction.REORDER] * 2
        + [FaultAction.DUPLICATE] * 2
        + [FaultAction.CORRUPT] * 2
        + [FaultAction.PARTITION] * 2
        + [FaultAction.HEAL] * 1
        + [FaultAction.CLOCK_SKEW] * 2
        + [FaultAction.KILL] * 1
    )
    schedule = FaultSchedule()
    for _ in range(events):
        action = weighted[rng.randrange(len(weighted))]
        at = round(rng.uniform(1.0, horizon * 0.7), 3)
        if action in CHANNEL_ACTIONS:
            if rng.random() < 0.5:
                target = f"node:{nodes[rng.randrange(len(nodes))]}"
            else:
                target = f"dev:{dpids[rng.randrange(len(dpids))]}"
            param = (
                round(rng.uniform(2.0, 12.0), 2)
                if action is FaultAction.DELAY
                else float(rng.randint(1, 3))
            )
        elif action is FaultAction.PARTITION:
            isolated = nodes[rng.randrange(len(nodes))]
            rest = ",".join(n for n in nodes if n != isolated)
            target = f"{isolated}|{rest}"
            param = 0.0
        elif action is FaultAction.HEAL:
            target = "*"
            param = 0.0
        elif action is FaultAction.CLOCK_SKEW:
            target = nodes[rng.randrange(len(nodes))]
            param = round(rng.uniform(2.0, 20.0), 2)
        else:  # KILL
            target = nodes[rng.randrange(len(nodes))]
            param = 0.0
        schedule.add(at, target, action, param)
    return schedule
