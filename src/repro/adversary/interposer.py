"""Message interposition: the adversary's hook into every control channel.

One :class:`MessageInterposer` sits in front of one delivery endpoint (a
controller node's inbox, a device's southbound port).  All control traffic
to that endpoint goes through :meth:`feed`, where armed fault rules —
drop / duplicate / delay / reorder / corrupt, plus partition cuts — are
applied before the message is handed to the real deliver callback via the
discrete-event scheduler.  Everything runs on the sim clock, so a schedule
replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.adversary.schedule import CHANNEL_ACTIONS, FaultAction
from repro.errors import ReproError
from repro.sdnsim.clock import EventScheduler

#: How long a reorder rule may hold a message waiting for a successor to
#: overtake it before it is flushed anyway (so held messages cannot leak).
REORDER_FLUSH_AFTER = 5.0


@dataclass
class InterposerLog:
    """What the interposer did to each message (for trace reports)."""

    entries: list[tuple[float, str, str]] = field(default_factory=list)

    def note(self, time: float, verdict: str, message: Any) -> None:
        self.entries.append((time, verdict, type(message).__name__))

    def count(self, verdict: str) -> int:
        return sum(1 for _t, v, _m in self.entries if v == verdict)


class MessageInterposer:
    """Fault-rule pipeline in front of one delivery endpoint.

    Parameters
    ----------
    scheduler:
        The scenario's event scheduler; all deliveries are scheduled events.
    deliver:
        The real endpoint; called with ``(message, source)``.
    name:
        Channel name, matched against :class:`FaultEvent` targets.
    reachable:
        Partition oracle: ``reachable(source)`` — False drops the message
        (a cut link), recorded separately from DROP rules.
    corrupter:
        Domain-specific mutation for CORRUPT rules; returning ``None``
        drops the message instead (an unparseable frame).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        deliver: Callable[[Any, str | None], None],
        *,
        name: str,
        reachable: Callable[[str | None], bool] | None = None,
        corrupter: Callable[[Any], Any | None] | None = None,
        transit_delay: float = 0.0,
    ) -> None:
        self.scheduler = scheduler
        self.deliver = deliver
        self.name = name
        self.reachable = reachable
        self.corrupter = corrupter
        self.transit_delay = transit_delay
        self.log = InterposerLog()
        self._drop_budget = 0
        self._dup_budget = 0
        self._delay_budget = 0
        self._delay_by = 0.0
        self._reorder_budget = 0
        self._held: tuple[Any, str | None] | None = None
        self._corrupt_budget = 0

    # -- rule arming -----------------------------------------------------------
    def arm(self, action: FaultAction, param: float) -> None:
        """Arm a message-level rule; budgets accumulate."""
        if action not in CHANNEL_ACTIONS:
            raise ReproError(f"{action.value} is not a channel action")
        if action is FaultAction.DROP:
            self._drop_budget += max(1, int(param))
        elif action is FaultAction.DUPLICATE:
            self._dup_budget += max(1, int(param))
        elif action is FaultAction.DELAY:
            self._delay_budget += 1
            self._delay_by = max(self._delay_by, float(param))
        elif action is FaultAction.REORDER:
            self._reorder_budget += max(1, int(param))
        elif action is FaultAction.CORRUPT:
            self._corrupt_budget += max(1, int(param))

    # -- the pipeline -----------------------------------------------------------
    def feed(self, message: Any, source: str | None = None) -> None:
        """Run one message through the armed rules toward delivery."""
        now = self.scheduler.clock.now
        if self.reachable is not None and not self.reachable(source):
            self.log.note(now, "partitioned", message)
            return
        if self._drop_budget > 0:
            self._drop_budget -= 1
            self.log.note(now, "dropped", message)
            return
        if self._corrupt_budget > 0:
            self._corrupt_budget -= 1
            mutated = self.corrupter(message) if self.corrupter is not None else None
            if mutated is None:
                self.log.note(now, "corrupted-dropped", message)
                return
            self.log.note(now, "corrupted", message)
            message = mutated
        if self._dup_budget > 0:
            self._dup_budget -= 1
            self.log.note(now, "duplicated", message)
            self._ship(message, source)
            self._ship(message, source)
            return
        if self._delay_budget > 0:
            self._delay_budget -= 1
            self.log.note(now, "delayed", message)
            self._ship(message, source, extra_delay=self._delay_by)
            return
        if self._reorder_budget > 0 and self._held is None:
            self._reorder_budget -= 1
            self._held = (message, source)
            self.log.note(now, "held", message)
            self.scheduler.schedule(REORDER_FLUSH_AFTER, self._flush_held)
            return
        self.log.note(now, "delivered", message)
        self._ship(message, source)
        if self._held is not None:
            held, held_source = self._held
            self._held = None
            self.log.note(now, "released", held)
            self._ship(held, held_source)

    def _flush_held(self) -> None:
        """Deliver a held message that never saw a successor overtake it."""
        if self._held is None:
            return
        held, source = self._held
        self._held = None
        self.log.note(self.scheduler.clock.now, "flushed", held)
        self._ship(held, source)

    def _ship(self, message: Any, source: str | None, *, extra_delay: float = 0.0) -> None:
        self.scheduler.schedule(
            self.transit_delay + extra_delay, lambda: self.deliver(message, source)
        )
