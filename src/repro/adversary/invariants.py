"""Runtime invariant monitors: the adversary's oracle.

STS needs an oracle to know a trace is worth minimizing; these monitors are
that oracle.  Each one checks a cross-cutting safety or liveness property of
the distributed control plane after every delivered event, emits a
:class:`InvariantViolation` the moment a property breaks, and maps the
violation onto the paper's Table I symptom taxonomy so adversary findings
land in the same reporting vocabulary as every other campaign.  Violations
are edge-triggered per (invariant, subject): a wedged cluster is one
violation, not one per check tick, and a property that heals and breaks
again is counted again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.taxonomy import ByzantineMode, Symptom, Trigger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.adversary.world import AdversaryWorld


@dataclass(frozen=True)
class InvariantViolation:
    """One observed break of a control-plane property."""

    time: float
    invariant: str
    subject: str
    detail: str
    symptom: Symptom
    byzantine_mode: ByzantineMode | None = None


@dataclass(frozen=True)
class Invariant:
    """One monitored property.

    ``check`` returns the currently-violating subjects as
    ``(subject, detail)`` pairs; the monitor set handles edge-triggering.
    """

    name: str
    symptom: Symptom
    byzantine_mode: ByzantineMode | None
    check: Callable[["AdversaryWorld"], Iterable[tuple[str, str]]]


# -- the invariant catalog ------------------------------------------------------

def _mastership_uniqueness(world: "AdversaryWorld") -> Iterable[tuple[str, str]]:
    """Safety: at most one live node self-claims mastership of each device."""
    for dpid in world.dpids:
        claimants = sorted(
            node
            for node, view in world.views.items()
            if world.cluster.instances[node].is_alive
            and view.get(dpid, (0, None))[1] == node
        )
        if len(claimants) > 1:
            yield (
                f"dpid={dpid}",
                f"dual mastership: {', '.join(claimants)} all claim dpid {dpid}",
            )


def _quorum_safety(world: "AdversaryWorld") -> Iterable[tuple[str, str]]:
    """Liveness: live members must retain quorum (the ONOS-5992 wedge)."""
    if world.cluster.is_wedged():
        live = ", ".join(world.cluster.live_members)
        yield ("cluster", f"wedged: live members ({live}) but no quorum")


def _no_orphaned_devices(world: "AdversaryWorld") -> Iterable[tuple[str, str]]:
    """Safety: once failover has settled, no device may lack a live master."""
    if world.scheduler.clock.now - world.last_disruption < world.settle_horizon:
        return
    for dpid in world.cluster.orphaned_devices():
        yield (f"dpid={dpid}", f"device {dpid} orphaned after failover settled")


def _echo_liveness(world: "AdversaryWorld") -> Iterable[tuple[str, str]]:
    """Liveness: every echo request is answered within the deadline."""
    now = world.scheduler.clock.now
    for dpid, device in world.devices.items():
        overdue = [
            seq
            for seq, sent in device.pending_echoes.items()
            if now - sent > world.echo_deadline
        ]
        if overdue:
            yield (
                f"dpid={dpid}",
                f"{len(overdue)} echo(es) unanswered past {world.echo_deadline:.0f}s "
                f"(seq {min(overdue)}..{max(overdue)})",
            )


def _flow_convergence(world: "AdversaryWorld") -> Iterable[tuple[str, str]]:
    """Liveness: issued flow mods reach the device table within the horizon."""
    now = world.scheduler.clock.now
    for (dpid, match_key), issued_at in world.issued_flows.items():
        if now - issued_at <= world.convergence_horizon:
            continue
        if match_key not in world.devices[dpid].flow_table:
            yield (
                f"dpid={dpid}",
                f"flow {match_key!r} issued at t={issued_at:.1f} never installed",
            )


def default_invariants() -> list[Invariant]:
    """The standard catalog, ordered by operational severity."""
    return [
        Invariant(
            "mastership-uniqueness",
            Symptom.BYZANTINE,
            ByzantineMode.INCORRECT_BEHAVIOR,
            _mastership_uniqueness,
        ),
        Invariant(
            "quorum-safety",
            Symptom.BYZANTINE,
            ByzantineMode.STALL,
            _quorum_safety,
        ),
        Invariant(
            "no-orphaned-devices",
            Symptom.BYZANTINE,
            ByzantineMode.GRAY_FAILURE,
            _no_orphaned_devices,
        ),
        Invariant(
            "echo-liveness",
            Symptom.BYZANTINE,
            ByzantineMode.STALL,
            _echo_liveness,
        ),
        Invariant(
            "flow-convergence",
            Symptom.BYZANTINE,
            ByzantineMode.INCORRECT_BEHAVIOR,
            _flow_convergence,
        ),
    ]


@dataclass
class MonitorSet:
    """Edge-triggered evaluation of the invariant catalog.

    Violations are priced into the resilience :class:`ResilienceLedger`
    (event ``VIOLATION``) so adversary findings share the accounting the
    A/B campaigns already use.
    """

    invariants: list[Invariant] = field(default_factory=default_invariants)
    ledger: ResilienceLedger | None = None
    violations: list[InvariantViolation] = field(default_factory=list)
    #: Every edge the monitors observed, in detection order:
    #: ``(time, invariant, subject, "rise"|"fall")``.  A rise is a fresh
    #: violation; a fall is the condition clearing (re-arming the trigger).
    #: The fuzzer's coverage map is built from these.
    transitions: list[tuple[float, str, str, str]] = field(default_factory=list)
    _active: set[tuple[str, str]] = field(default_factory=set)

    def run(self, world: "AdversaryWorld") -> list[InvariantViolation]:
        """Check every invariant; return (and record) the *new* violations."""
        fresh: list[InvariantViolation] = []
        now = world.scheduler.clock.now
        for invariant in self.invariants:
            current = {
                (invariant.name, subject): detail
                for subject, detail in invariant.check(world)
            }
            # Cleared conditions re-arm the edge trigger.
            cleared = sorted(
                key
                for key in self._active
                if key[0] == invariant.name and key not in current
            )
            for name, subject in cleared:
                self.transitions.append((now, name, subject, "fall"))
            self._active = {
                key
                for key in self._active
                if key[0] != invariant.name or key in current
            }
            for (name, subject), detail in sorted(current.items()):
                if (name, subject) in self._active:
                    continue
                self._active.add((name, subject))
                self.transitions.append((now, name, subject, "rise"))
                violation = InvariantViolation(
                    time=now,
                    invariant=name,
                    subject=subject,
                    detail=detail,
                    symptom=invariant.symptom,
                    byzantine_mode=invariant.byzantine_mode,
                )
                fresh.append(violation)
                self.violations.append(violation)
                if self.ledger is not None:
                    self.ledger.record(
                        ResilienceEvent.VIOLATION,
                        component=subject,
                        time=now,
                        detail=f"{name}: {detail}",
                        trigger=Trigger.NETWORK_EVENTS,
                        symptom=invariant.symptom,
                    )
        return fresh

    def by_invariant(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts
