"""repro — reproduction of "A Comprehensive Study of Bugs in Software
Defined Networks" (Bhardwaj, Zhou, Benson; DSN 2021).

The package is organized bottom-up:

* substrates: :mod:`repro.trackers`, :mod:`repro.textmining`,
  :mod:`repro.ml`, :mod:`repro.embeddings`, :mod:`repro.smells`,
  :mod:`repro.gitmodel`, :mod:`repro.vuln`, :mod:`repro.sdnsim`;
* the study itself: :mod:`repro.taxonomy`, :mod:`repro.corpus`,
  :mod:`repro.pipeline`, :mod:`repro.analysis`;
* applications of the study: :mod:`repro.faultinjection`,
  :mod:`repro.frameworks`, :mod:`repro.guidance`;
* paper ground truth and rendering: :mod:`repro.paperdata`,
  :mod:`repro.reporting`.

Quickstart::

    from repro import CorpusGenerator, determinism_rates

    corpus = CorpusGenerator(seed=2020).generate()
    print(determinism_rates(corpus.dataset))
"""

from repro._version import __version__
from repro.analysis import (
    determinism_rates,
    symptom_distribution,
    trigger_distribution,
)
from repro.corpus import BugDataset, CorpusGenerator, LabeledBug, StudyCorpus
from repro.errors import ReproError
from repro.pipeline import AutoClassifier, ClassifierKind, validate_pipeline
from repro.taxonomy import (
    BugLabel,
    BugType,
    ByzantineMode,
    FixStrategy,
    RootCause,
    Symptom,
    Trigger,
)

__all__ = [
    "__version__",
    "determinism_rates",
    "symptom_distribution",
    "trigger_distribution",
    "BugDataset",
    "CorpusGenerator",
    "LabeledBug",
    "StudyCorpus",
    "ReproError",
    "AutoClassifier",
    "ClassifierKind",
    "validate_pipeline",
    "BugLabel",
    "BugType",
    "ByzantineMode",
    "FixStrategy",
    "RootCause",
    "Symptom",
    "Trigger",
]
