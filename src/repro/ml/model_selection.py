"""Dataset splitting and cross-validation utilities.

The paper validates the autoclassifier with a 2/3 train, 1/3 test split
(SS II-C2); :func:`train_test_split` defaults to that ratio.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.ml.metrics import accuracy_score
from repro.parallel import WorkPool


def train_test_split(
    X: np.ndarray,
    y: Sequence,
    *,
    train_fraction: float = 2.0 / 3.0,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, list, list]:
    """Shuffle and split into ``(X_train, X_test, y_train, y_test)``.

    With ``stratify=True`` (the default) each class keeps approximately the
    same share in both splits — important here because several taxonomy
    classes are rare (e.g. performance bugs, 4%).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    X = np.asarray(X)
    y = list(y)
    if len(X) != len(y):
        raise ValueError("X and y have different lengths")
    rng = np.random.default_rng(seed)
    if stratify:
        train_idx: list[int] = []
        test_idx: list[int] = []
        by_class: dict[object, list[int]] = {}
        for i, label in enumerate(y):
            by_class.setdefault(label, []).append(i)
        for indices in by_class.values():
            indices = list(indices)
            rng.shuffle(indices)
            cut = max(1, int(round(len(indices) * train_fraction)))
            if cut >= len(indices) and len(indices) > 1:
                cut = len(indices) - 1
            train_idx.extend(indices[:cut])
            test_idx.extend(indices[cut:])
        rng.shuffle(train_idx)
        rng.shuffle(test_idx)
    else:
        order = rng.permutation(len(y))
        cut = int(round(len(y) * train_fraction))
        train_idx = list(order[:cut])
        test_idx = list(order[cut:])
    X_train = X[train_idx]
    X_test = X[test_idx]
    y_train = [y[i] for i in train_idx]
    y_test = [y[i] for i in test_idx]
    return X_train, X_test, y_train, y_test


class KFold:
    """Deterministic shuffled k-fold index generator."""

    def __init__(self, n_splits: int = 3, *, seed: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` for each fold."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"n_samples={n_samples} < n_splits={self.n_splits}"
            )
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


def cross_val_score(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: Sequence,
    *,
    n_splits: int = 3,
    seed: int = 0,
    pool: WorkPool | None = None,
) -> list[float]:
    """Accuracy per fold; ``model_factory`` builds a fresh estimator per fold.

    Estimators must expose ``fit(X, y)`` and ``predict(X)``.  Folds are
    independent (fresh estimator, disjoint indices), so running them through
    a :class:`~repro.parallel.WorkPool` returns the same scores in the same
    fold order as the serial loop.  The thread backend is used because
    ``model_factory`` is typically a closure, which the process backend
    cannot pickle.
    """
    X = np.asarray(X)
    y = list(y)
    folds = list(KFold(n_splits, seed=seed).split(len(y)))

    def _score_fold(fold: tuple[np.ndarray, np.ndarray]) -> float:
        train_idx, test_idx = fold
        model = model_factory()
        model.fit(X[train_idx], [y[i] for i in train_idx])  # type: ignore[attr-defined]
        predictions = model.predict(X[test_idx])  # type: ignore[attr-defined]
        return accuracy_score([y[i] for i in test_idx], predictions)

    if pool is None or pool.jobs == 1:
        return [_score_fold(fold) for fold in folds]
    thread_pool = WorkPool(pool.jobs, backend="thread")
    return thread_pool.map(_score_fold, folds)
