"""CART decision-tree classifier with Gini impurity."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.ml.preprocessing import LabelEncoder


@dataclass
class _Node:
    """Internal tree node; leaves have ``feature is None``."""

    prediction: int
    class_counts: np.ndarray
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier:
    """Binary-split CART tree.

    Splits minimize weighted Gini impurity; candidate thresholds are the
    midpoints between consecutive distinct sorted feature values.  To keep
    training tractable on high-dimensional TF-IDF features, at most
    ``max_thresholds`` candidate thresholds per feature are evaluated
    (quantile-sampled).
    """

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_thresholds: int = 32,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self._root: _Node | None = None
        self._encoder: LabelEncoder | None = None
        self._n_classes = 0

    @property
    def classes_(self) -> list:
        if self._encoder is None:
            raise NotFittedError("DecisionTreeClassifier has not been fitted")
        return self._encoder.classes_

    def fit(self, X: np.ndarray, y: Sequence) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        encoder = LabelEncoder().fit(y)
        y_idx = encoder.transform(y)
        self._n_classes = len(encoder.classes_)
        self._encoder = encoder
        self._root = self._build(X, y_idx, depth=0)
        return self

    def _leaf(self, y_idx: np.ndarray) -> _Node:
        counts = np.bincount(y_idx, minlength=self._n_classes)
        return _Node(prediction=int(np.argmax(counts)), class_counts=counts)

    def _build(self, X: np.ndarray, y_idx: np.ndarray, depth: int) -> _Node:
        node = self._leaf(y_idx)
        if (
            len(y_idx) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or len(np.unique(y_idx)) == 1
        ):
            return node
        split = self._best_split(X, y_idx)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y_idx[mask], depth + 1)
        node.right = self._build(X[~mask], y_idx[~mask], depth + 1)
        return node

    def _candidate_thresholds(self, values: np.ndarray) -> np.ndarray:
        distinct = np.unique(values)
        if len(distinct) < 2:
            return np.empty(0)
        midpoints = (distinct[:-1] + distinct[1:]) / 2.0
        if len(midpoints) > self.max_thresholds:
            picks = np.linspace(0, len(midpoints) - 1, self.max_thresholds)
            midpoints = midpoints[picks.astype(int)]
        return midpoints

    def _best_split(
        self, X: np.ndarray, y_idx: np.ndarray
    ) -> tuple[int, float] | None:
        # Zero-gain splits are allowed (initial best is +inf, not the parent
        # impurity): XOR-style targets need a first split that doesn't reduce
        # Gini by itself.  Recursion still terminates because min_samples_leaf
        # guarantees both children are non-empty.
        best_score = np.inf
        best: tuple[int, float] | None = None
        n = len(y_idx)
        for feature in range(X.shape[1]):
            column = X[:, feature]
            for threshold in self._candidate_thresholds(column):
                mask = column <= threshold
                n_left = int(mask.sum())
                n_right = n - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_counts = np.bincount(y_idx[mask], minlength=self._n_classes)
                right_counts = np.bincount(y_idx[~mask], minlength=self._n_classes)
                score = (n_left * _gini(left_counts) + n_right * _gini(right_counts)) / n
                if score < best_score - 1e-12:
                    best_score = score
                    best = (feature, float(threshold))
        return best

    def predict(self, X: np.ndarray) -> list:
        """Predicted class labels for each row of ``X``."""
        if self._root is None or self._encoder is None:
            raise NotFittedError("DecisionTreeClassifier.predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        indices = [self._predict_row(row) for row in X]
        return self._encoder.inverse_transform(indices)

    def _predict_row(self, row: np.ndarray) -> int:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
