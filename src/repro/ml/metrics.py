"""Classification metrics: accuracy, confusion matrix, precision/recall/F1."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exact matches between ``y_true`` and ``y_pred``."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred have different lengths")
    if not y_true:
        raise ValueError("empty label sequences")
    matches = sum(1 for t, p in zip(y_true, y_pred) if t == p)
    return matches / len(y_true)


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Sequence | None = None
) -> tuple[np.ndarray, list]:
    """Return ``(matrix, labels)`` where ``matrix[i, j]`` counts samples with
    true label ``labels[i]`` predicted as ``labels[j]``."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred have different lengths")
    if labels is None:
        labels = sorted(set(y_true) | set(y_pred), key=repr)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix, list(labels)


def precision_recall_f1(
    y_true: Sequence, y_pred: Sequence
) -> dict[object, dict[str, float]]:
    """Per-class precision, recall, F1, and support.

    Classes never predicted get precision 0; classes with no true samples get
    recall 0 — no NaNs escape.
    """
    matrix, labels = confusion_matrix(y_true, y_pred)
    result: dict[object, dict[str, float]] = {}
    for i, label in enumerate(labels):
        tp = float(matrix[i, i])
        predicted = float(matrix[:, i].sum())
        actual = float(matrix[i, :].sum())
        precision = tp / predicted if predicted > 0 else 0.0
        recall = tp / actual if actual > 0 else 0.0
        f1 = (
            2.0 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        result[label] = {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "support": actual,
        }
    return result


def f1_score(y_true: Sequence, y_pred: Sequence, *, average: str = "macro") -> float:
    """Macro or weighted mean of per-class F1."""
    per_class = precision_recall_f1(y_true, y_pred)
    if average == "macro":
        return float(np.mean([v["f1"] for v in per_class.values()]))
    if average == "weighted":
        total = sum(v["support"] for v in per_class.values())
        if total == 0:
            return 0.0
        return float(
            sum(v["f1"] * v["support"] for v in per_class.values()) / total
        )
    raise ValueError(f"unknown average {average!r}; use 'macro' or 'weighted'")
