"""AdaBoost (SAMME) over decision stumps."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.ml.preprocessing import LabelEncoder


class DecisionStump:
    """Depth-1 weighted classifier: threshold on a single feature.

    Each side of the threshold predicts the class with the largest total
    sample weight on that side, which generalizes the classic binary stump
    to the multi-class SAMME setting.
    """

    def __init__(self, *, max_thresholds: int = 64) -> None:
        self.max_thresholds = max_thresholds
        self.feature_: int | None = None
        self.threshold_ = 0.0
        self.left_class_ = 0
        self.right_class_ = 0

    def fit(
        self, X: np.ndarray, y_idx: np.ndarray, weights: np.ndarray, n_classes: int
    ) -> "DecisionStump":
        best_error = np.inf
        total = weights.sum()
        for feature in range(X.shape[1]):
            column = X[:, feature]
            distinct = np.unique(column)
            if len(distinct) < 2:
                continue
            thresholds = (distinct[:-1] + distinct[1:]) / 2.0
            if len(thresholds) > self.max_thresholds:
                picks = np.linspace(0, len(thresholds) - 1, self.max_thresholds)
                thresholds = thresholds[picks.astype(int)]
            for threshold in thresholds:
                mask = column <= threshold
                left_w = np.bincount(y_idx[mask], weights=weights[mask], minlength=n_classes)
                right_w = np.bincount(
                    y_idx[~mask], weights=weights[~mask], minlength=n_classes
                )
                left_cls = int(np.argmax(left_w))
                right_cls = int(np.argmax(right_w))
                error = total - left_w[left_cls] - right_w[right_cls]
                if error < best_error - 1e-15:
                    best_error = error
                    self.feature_ = feature
                    self.threshold_ = float(threshold)
                    self.left_class_ = left_cls
                    self.right_class_ = right_cls
        if self.feature_ is None:
            # Degenerate data: constant features.  Predict the heaviest class.
            counts = np.bincount(y_idx, weights=weights, minlength=n_classes)
            self.feature_ = 0
            self.threshold_ = np.inf
            self.left_class_ = int(np.argmax(counts))
            self.right_class_ = self.left_class_
        return self

    def predict_idx(self, X: np.ndarray) -> np.ndarray:
        if self.feature_ is None:
            raise NotFittedError("DecisionStump.predict called before fit")
        mask = X[:, self.feature_] <= self.threshold_
        return np.where(mask, self.left_class_, self.right_class_)


class AdaBoostClassifier:
    """Multi-class AdaBoost with the SAMME weight update.

    Stops early when a stump achieves error <= (1 - 1/K) no better than
    chance or fits the weighted data perfectly.
    """

    def __init__(self, *, n_estimators: int = 50, learning_rate: float = 1.0) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.estimators_: list[DecisionStump] = []
        self.alphas_: list[float] = []
        self._encoder: LabelEncoder | None = None

    @property
    def classes_(self) -> list:
        if self._encoder is None:
            raise NotFittedError("AdaBoostClassifier has not been fitted")
        return self._encoder.classes_

    def fit(self, X: np.ndarray, y: Sequence) -> "AdaBoostClassifier":
        X = np.asarray(X, dtype=np.float64)
        encoder = LabelEncoder().fit(y)
        y_idx = encoder.transform(y)
        n_classes = len(encoder.classes_)
        n = len(y_idx)
        weights = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.alphas_ = []
        self._encoder = encoder
        for _ in range(self.n_estimators):
            stump = DecisionStump().fit(X, y_idx, weights, n_classes)
            pred = stump.predict_idx(X)
            wrong = pred != y_idx
            error = float(weights[wrong].sum() / weights.sum())
            if error <= 1e-12:
                # Perfect stump dominates the ensemble.
                self.estimators_ = [stump]
                self.alphas_ = [1.0]
                break
            if error >= 1.0 - 1.0 / n_classes:
                break  # no better than chance; stop boosting
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0)
            )
            weights *= np.exp(alpha * wrong)
            weights /= weights.sum()
            self.estimators_.append(stump)
            self.alphas_.append(float(alpha))
        if not self.estimators_:
            # Fall back to the single stump even if it is weak.
            stump = DecisionStump().fit(X, y_idx, weights, n_classes)
            self.estimators_ = [stump]
            self.alphas_ = [1.0]
        return self

    def predict(self, X: np.ndarray) -> list:
        """Weighted-vote predictions over the stump ensemble."""
        if self._encoder is None:
            raise NotFittedError("AdaBoostClassifier.predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        n_classes = len(self._encoder.classes_)
        votes = np.zeros((X.shape[0], n_classes))
        for stump, alpha in zip(self.estimators_, self.alphas_):
            pred = stump.predict_idx(X)
            votes[np.arange(X.shape[0]), pred] += alpha
        return self._encoder.inverse_transform(np.argmax(votes, axis=1))
