"""k-means clustering with k-means++ initialization."""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Used for exploratory clustering of bug-description embeddings (e.g. to
    sanity-check that taxonomy categories form separable clusters).
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        max_iter: int = 100,
        tol: float = 1e-6,
        n_init: int = 4,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self.seed = seed
        self.cluster_centers_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.labels_: np.ndarray | None = None

    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++: spread initial centers proportionally to squared distance."""
        n = X.shape[0]
        centers = [X[rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            d2 = np.min(
                ((X[:, None, :] - np.array(centers)[None, :, :]) ** 2).sum(axis=2),
                axis=1,
            )
            total = d2.sum()
            if total <= 0:
                centers.append(X[rng.integers(n)])
                continue
            probs = d2 / total
            centers.append(X[rng.choice(n, p=probs)])
        return np.array(centers)

    def fit(self, X: np.ndarray) -> "KMeans":
        X = np.asarray(X, dtype=np.float64)
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"n_samples={X.shape[0]} < n_clusters={self.n_clusters}"
            )
        rng = np.random.default_rng(self.seed)
        best_inertia = np.inf
        best_centers: np.ndarray | None = None
        best_labels: np.ndarray | None = None
        for _ in range(self.n_init):
            centers = self._init_centers(X, rng)
            labels = np.zeros(X.shape[0], dtype=np.int64)
            for _ in range(self.max_iter):
                distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
                labels = np.argmin(distances, axis=1)
                new_centers = centers.copy()
                for cluster in range(self.n_clusters):
                    members = X[labels == cluster]
                    if len(members):
                        new_centers[cluster] = members.mean(axis=0)
                shift = float(np.max(np.abs(new_centers - centers)))
                centers = new_centers
                if shift < self.tol:
                    break
            inertia = float(
                ((X - centers[labels]) ** 2).sum()
            )
            if inertia < best_inertia:
                best_inertia = inertia
                best_centers = centers
                best_labels = labels
        self.cluster_centers_ = best_centers
        self.inertia_ = best_inertia
        self.labels_ = best_labels
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-center assignment for each row of ``X``."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        distances = ((X[:, None, :] - self.cluster_centers_[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(distances, axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        self.fit(X)
        assert self.labels_ is not None
        return self.labels_
