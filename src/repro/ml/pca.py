"""Principal component analysis via singular value decomposition."""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


class PCA:
    """Project centered data onto its top principal components.

    Components are deterministic up to sign; we fix signs so that the
    largest-magnitude entry of each component is positive, making results
    reproducible across runs and platforms.
    """

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None  # (n_components, n_features)
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "PCA":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n_samples, n_features = X.shape
        k = min(self.n_components, n_features, n_samples)
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, s, vt = np.linalg.svd(centered, full_matrices=False)
        components = vt[:k]
        # Deterministic sign convention.
        signs = np.sign(components[np.arange(k), np.argmax(np.abs(components), axis=1)])
        signs[signs == 0.0] = 1.0
        self.components_ = components * signs[:, None]
        denominator = max(n_samples - 1, 1)
        variance = (s**2) / denominator
        self.explained_variance_ = variance[:k]
        total = variance.sum()
        self.explained_variance_ratio_ = (
            variance[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA.transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Map projected points back to the original feature space."""
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA.inverse_transform called before fit")
        return np.asarray(Z, dtype=np.float64) @ self.components_ + self.mean_
