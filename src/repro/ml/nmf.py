"""Non-negative matrix factorization with multiplicative updates.

Used for keyword/topic extraction from TF-IDF matrices (SS II-C: the paper
chooses NMF over LDA/HDP following prior bug-study work).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError

_EPS = 1e-10


class NMF:
    """Factor a non-negative matrix ``V ~= W @ H``.

    ``W`` is ``(n_docs, n_topics)`` (document-topic weights) and ``H`` is
    ``(n_topics, n_terms)`` (topic-term weights).  Lee & Seung multiplicative
    updates minimize the Frobenius reconstruction error.
    """

    def __init__(
        self,
        n_components: int,
        *,
        max_iter: int = 200,
        tol: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.components_: np.ndarray | None = None  # H
        self.reconstruction_err_: float | None = None
        self.n_iter_: int | None = None

    def fit_transform(self, V: np.ndarray) -> np.ndarray:
        """Fit the factorization and return ``W``."""
        V = np.asarray(V, dtype=np.float64)
        if V.ndim != 2:
            raise ValueError(f"V must be 2-D, got shape {V.shape}")
        if np.any(V < 0):
            raise ValueError("NMF requires a non-negative input matrix")
        n_docs, n_terms = V.shape
        k = min(self.n_components, n_docs, n_terms)
        rng = np.random.default_rng(self.seed)
        scale = np.sqrt(V.mean() / max(k, 1)) + _EPS
        W = rng.uniform(_EPS, scale * 2, size=(n_docs, k))
        H = rng.uniform(_EPS, scale * 2, size=(k, n_terms))
        previous_err = np.inf
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            # Multiplicative updates (Lee & Seung 2001).
            H *= (W.T @ V) / (W.T @ W @ H + _EPS)
            W *= (V @ H.T) / (W @ H @ H.T + _EPS)
            if n_iter % 10 == 0 or n_iter == self.max_iter:
                err = float(np.linalg.norm(V - W @ H))
                if previous_err - err < self.tol * max(previous_err, 1.0):
                    previous_err = err
                    break
                previous_err = err
        self.components_ = H
        self.reconstruction_err_ = float(np.linalg.norm(V - W @ H))
        self.n_iter_ = n_iter
        return W

    def fit(self, V: np.ndarray) -> "NMF":
        self.fit_transform(V)
        return self

    def transform(self, V: np.ndarray) -> np.ndarray:
        """Solve for W with H fixed (multiplicative updates on W only)."""
        if self.components_ is None:
            raise NotFittedError("NMF.transform called before fit")
        V = np.asarray(V, dtype=np.float64)
        H = self.components_
        rng = np.random.default_rng(self.seed)
        W = rng.uniform(_EPS, 1.0, size=(V.shape[0], H.shape[0]))
        for _ in range(self.max_iter):
            W_next = W * (V @ H.T) / (W @ H @ H.T + _EPS)
            if np.max(np.abs(W_next - W)) < self.tol:
                W = W_next
                break
            W = W_next
        return W

    def top_terms(self, feature_names: list[str], n_terms: int = 10) -> list[list[str]]:
        """For each topic, the ``n_terms`` highest-weight vocabulary terms."""
        if self.components_ is None:
            raise NotFittedError("NMF.top_terms called before fit")
        topics: list[list[str]] = []
        for row in self.components_:
            order = np.argsort(row)[::-1][:n_terms]
            topics.append([feature_names[i] for i in order])
        return topics
