"""Non-negative matrix factorization with multiplicative updates.

Used for keyword/topic extraction from TF-IDF matrices (SS II-C: the paper
chooses NMF over LDA/HDP following prior bug-study work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NotFittedError
from repro.parallel import WorkPool

_EPS = 1e-10


class NMF:
    """Factor a non-negative matrix ``V ~= W @ H``.

    ``W`` is ``(n_docs, n_topics)`` (document-topic weights) and ``H`` is
    ``(n_topics, n_terms)`` (topic-term weights).  Lee & Seung multiplicative
    updates minimize the Frobenius reconstruction error.
    """

    def __init__(
        self,
        n_components: int,
        *,
        max_iter: int = 200,
        tol: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.components_: np.ndarray | None = None  # H
        self.reconstruction_err_: float | None = None
        self.n_iter_: int | None = None

    def fit_transform(self, V: np.ndarray) -> np.ndarray:
        """Fit the factorization and return ``W``."""
        V = np.asarray(V, dtype=np.float64)
        if V.ndim != 2:
            raise ValueError(f"V must be 2-D, got shape {V.shape}")
        if np.any(V < 0):
            raise ValueError("NMF requires a non-negative input matrix")
        n_docs, n_terms = V.shape
        k = min(self.n_components, n_docs, n_terms)
        rng = np.random.default_rng(self.seed)
        scale = np.sqrt(V.mean() / max(k, 1)) + _EPS
        W = rng.uniform(_EPS, scale * 2, size=(n_docs, k))
        H = rng.uniform(_EPS, scale * 2, size=(k, n_terms))
        previous_err = np.inf
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            # Multiplicative updates (Lee & Seung 2001).
            H *= (W.T @ V) / (W.T @ W @ H + _EPS)
            W *= (V @ H.T) / (W @ H @ H.T + _EPS)
            if n_iter % 10 == 0 or n_iter == self.max_iter:
                err = float(np.linalg.norm(V - W @ H))
                if previous_err - err < self.tol * max(previous_err, 1.0):
                    previous_err = err
                    break
                previous_err = err
        self.components_ = H
        self.reconstruction_err_ = float(np.linalg.norm(V - W @ H))
        self.n_iter_ = n_iter
        return W

    def fit(self, V: np.ndarray) -> "NMF":
        self.fit_transform(V)
        return self

    def transform(self, V: np.ndarray) -> np.ndarray:
        """Solve for W with H fixed (multiplicative updates on W only)."""
        if self.components_ is None:
            raise NotFittedError("NMF.transform called before fit")
        V = np.asarray(V, dtype=np.float64)
        H = self.components_
        rng = np.random.default_rng(self.seed)
        W = rng.uniform(_EPS, 1.0, size=(V.shape[0], H.shape[0]))
        for _ in range(self.max_iter):
            W_next = W * (V @ H.T) / (W @ H @ H.T + _EPS)
            if np.max(np.abs(W_next - W)) < self.tol:
                W = W_next
                break
            W = W_next
        return W

    def top_terms(self, feature_names: list[str], n_terms: int = 10) -> list[list[str]]:
        """For each topic, the ``n_terms`` highest-weight vocabulary terms."""
        if self.components_ is None:
            raise NotFittedError("NMF.top_terms called before fit")
        topics: list[list[str]] = []
        for row in self.components_:
            order = np.argsort(row)[::-1][:n_terms]
            topics.append([feature_names[i] for i in order])
        return topics


def _restart_task(
    task: tuple[np.ndarray, int, int, float, int],
) -> tuple[int, float, np.ndarray, np.ndarray, int]:
    """One NMF restart; module-level for the process backend."""
    V, n_components, max_iter, tol, seed = task
    model = NMF(n_components, max_iter=max_iter, tol=tol, seed=seed)
    W = model.fit_transform(V)
    assert model.components_ is not None
    assert model.reconstruction_err_ is not None and model.n_iter_ is not None
    return seed, model.reconstruction_err_, W, model.components_, model.n_iter_


@dataclass
class MultiRestartResult:
    """Best-of-N NMF factorization plus the per-restart error trace."""

    model: NMF
    W: np.ndarray
    best_seed: int
    errors: dict[int, float] = field(default_factory=dict)


def nmf_multi_restart(
    V: np.ndarray,
    n_components: int,
    *,
    restarts: int = 4,
    base_seed: int = 0,
    max_iter: int = 200,
    tol: float = 1e-4,
    pool: WorkPool | None = None,
) -> MultiRestartResult:
    """Run ``restarts`` independent NMF fits, keep the best reconstruction.

    NMF's multiplicative updates only find a local optimum, so topic
    pipelines conventionally restart from several seeds.  Restarts are
    independent (``base_seed + i`` each), which makes this fan-out safe for
    any :class:`~repro.parallel.WorkPool` worker count; the winner is
    selected by ``(reconstruction error, seed)`` — a total order that does
    not depend on completion order.
    """
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    V = np.asarray(V, dtype=np.float64)
    tasks = [
        (V, n_components, max_iter, tol, base_seed + i) for i in range(restarts)
    ]
    pool = pool if pool is not None else WorkPool(1)
    results = pool.map(_restart_task, tasks)
    best = min(results, key=lambda r: (r[1], r[0]))
    seed, err, W, H, n_iter = best
    model = NMF(n_components, max_iter=max_iter, tol=tol, seed=seed)
    model.components_ = H
    model.reconstruction_err_ = err
    model.n_iter_ = n_iter
    return MultiRestartResult(
        model=model,
        W=W,
        best_seed=seed,
        errors={r[0]: r[1] for r in results},
    )
