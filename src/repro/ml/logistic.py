"""Binary logistic regression trained with full-batch gradient descent."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotFittedError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class LogisticRegression:
    """L2-regularized binary logistic regression.

    Labels may be any two hashable values; the positive class can be named
    explicitly (default: the lexicographically larger label).
    """

    def __init__(
        self,
        *,
        learning_rate: float = 0.1,
        regularization: float = 1e-3,
        n_iterations: int = 500,
        positive_label=None,
    ) -> None:
        if learning_rate <= 0 or n_iterations < 1:
            raise ValueError("learning_rate > 0 and n_iterations >= 1 required")
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.n_iterations = n_iterations
        self.positive_label = positive_label
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.classes_: tuple | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: Sequence) -> "LogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        labels = sorted(set(y), key=repr)
        if len(labels) != 2:
            raise ValueError(f"binary classifier needs exactly 2 classes, got {labels}")
        positive = self.positive_label if self.positive_label is not None else labels[1]
        if positive not in labels:
            raise ValueError(f"positive_label {positive!r} not among {labels}")
        negative = labels[0] if labels[1] == positive else labels[1]
        self.classes_ = (negative, positive)
        target = np.array([1.0 if label == positive else 0.0 for label in y])

        # Standardize internally for stable gradients.
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        Z = (X - self._mean) / self._scale

        n, d = Z.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iterations):
            p = _sigmoid(Z @ w + b)
            gradient_w = Z.T @ (p - target) / n + self.regularization * w
            gradient_b = float(np.mean(p - target))
            w -= self.learning_rate * gradient_w
            b -= self.learning_rate * gradient_b
        self.weights_ = w
        self.bias_ = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(positive class) per row."""
        if self.weights_ is None or self._mean is None or self._scale is None:
            raise NotFittedError("LogisticRegression.predict_proba before fit")
        Z = (np.asarray(X, dtype=np.float64) - self._mean) / self._scale
        return _sigmoid(Z @ self.weights_ + self.bias_)

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> list:
        if self.classes_ is None:
            raise NotFittedError("LogisticRegression.predict before fit")
        negative, positive = self.classes_
        return [
            positive if p >= threshold else negative for p in self.predict_proba(X)
        ]
