"""Feature scaling and label encoding."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotFittedError


class StandardScaler:
    """Zero-mean, unit-variance scaling per feature.

    The paper notes that "SVM with normalization provided the best accuracy";
    this scaler is that normalization step.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform called before fit")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class L2Normalizer:
    """Row-wise L2 normalization (stateless, fit is a no-op)."""

    def fit(self, X: np.ndarray) -> "L2Normalizer":
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return X / norms

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.transform(X)


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers 0..K-1."""

    def __init__(self) -> None:
        self.classes_: list = []
        self._index: dict = {}

    def fit(self, labels: Sequence) -> "LabelEncoder":
        self.classes_ = sorted(set(labels), key=repr)
        self._index = {c: i for i, c in enumerate(self.classes_)}
        return self

    def transform(self, labels: Sequence) -> np.ndarray:
        if not self._index:
            raise NotFittedError("LabelEncoder.transform called before fit")
        try:
            return np.array([self._index[lbl] for lbl in labels], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unseen label: {exc}") from exc

    def fit_transform(self, labels: Sequence) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, indices: Sequence[int]) -> list:
        if not self._index:
            raise NotFittedError("LabelEncoder.inverse_transform called before fit")
        return [self.classes_[int(i)] for i in indices]
