"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

SS II-C mentions LDA and HDP as the classic alternatives to the NMF/TF-IDF
keyword extraction the paper adopts.  This implementation exists for the
ablation that justifies that choice (see ``bench_topic_models.py``): on
short, keyword-dense bug reports, NMF topics are sharper and two orders of
magnitude faster to fit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


class LDA:
    """Collapsed-Gibbs LDA over bag-of-words count matrices.

    Parameters
    ----------
    n_topics:
        Number of latent topics.
    alpha, beta:
        Symmetric Dirichlet priors for document-topic and topic-word
        distributions.
    n_iterations:
        Gibbs sweeps over the corpus.
    seed:
        Sampling seed (deterministic given it).
    """

    def __init__(
        self,
        n_topics: int,
        *,
        alpha: float = 0.1,
        beta: float = 0.01,
        n_iterations: int = 100,
        seed: int = 0,
    ) -> None:
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        self.n_topics = n_topics
        self.alpha = alpha
        self.beta = beta
        self.n_iterations = n_iterations
        self.seed = seed
        self.topic_word_: np.ndarray | None = None  # (n_topics, n_terms)
        self.doc_topic_: np.ndarray | None = None  # (n_docs, n_topics)

    def fit(self, counts: np.ndarray) -> "LDA":
        """Fit on a ``(n_docs, n_terms)`` non-negative integer count matrix."""
        counts = np.asarray(counts)
        if counts.ndim != 2:
            raise ValueError("counts must be 2-D")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        n_docs, n_terms = counts.shape
        rng = np.random.default_rng(self.seed)

        # Unroll documents into (doc, term) token instances.
        doc_ids: list[int] = []
        term_ids: list[int] = []
        for d in range(n_docs):
            for t in np.nonzero(counts[d])[0]:
                repeat = int(counts[d, t])
                doc_ids.extend([d] * repeat)
                term_ids.extend([t] * repeat)
        doc_ids_arr = np.array(doc_ids, dtype=np.int64)
        term_ids_arr = np.array(term_ids, dtype=np.int64)
        n_tokens = len(doc_ids_arr)
        if n_tokens == 0:
            raise ValueError("empty corpus")

        assignments = rng.integers(0, self.n_topics, size=n_tokens)
        doc_topic = np.zeros((n_docs, self.n_topics), dtype=np.int64)
        topic_word = np.zeros((self.n_topics, n_terms), dtype=np.int64)
        topic_total = np.zeros(self.n_topics, dtype=np.int64)
        for i in range(n_tokens):
            z = assignments[i]
            doc_topic[doc_ids_arr[i], z] += 1
            topic_word[z, term_ids_arr[i]] += 1
            topic_total[z] += 1

        beta_sum = self.beta * n_terms
        for _ in range(self.n_iterations):
            for i in range(n_tokens):
                d, t, z = doc_ids_arr[i], term_ids_arr[i], assignments[i]
                doc_topic[d, z] -= 1
                topic_word[z, t] -= 1
                topic_total[z] -= 1
                weights = (
                    (doc_topic[d] + self.alpha)
                    * (topic_word[:, t] + self.beta)
                    / (topic_total + beta_sum)
                )
                weights = weights / weights.sum()
                z_new = rng.choice(self.n_topics, p=weights)
                assignments[i] = z_new
                doc_topic[d, z_new] += 1
                topic_word[z_new, t] += 1
                topic_total[z_new] += 1

        self.topic_word_ = (topic_word + self.beta) / (
            topic_total[:, None] + beta_sum
        )
        self.doc_topic_ = (doc_topic + self.alpha) / (
            doc_topic.sum(axis=1, keepdims=True) + self.alpha * self.n_topics
        )
        return self

    def top_terms(self, feature_names: list[str], n_terms: int = 10) -> list[list[str]]:
        """For each topic, the ``n_terms`` highest-probability terms."""
        if self.topic_word_ is None:
            raise NotFittedError("LDA.top_terms called before fit")
        topics = []
        for row in self.topic_word_:
            order = np.argsort(row)[::-1][:n_terms]
            topics.append([feature_names[i] for i in order])
        return topics
