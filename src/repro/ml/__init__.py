"""From-scratch machine-learning algorithms used by the pipeline (SS II-C).

The paper explores SVM, Decision Tree, PCA, and AdaBoost on TF-IDF /
Word2Vec features, plus NMF for keyword extraction.  The offline environment
has no scikit-learn, so each algorithm is implemented here on numpy.
"""

from repro.ml.boosting import AdaBoostClassifier, DecisionStump
from repro.ml.kmeans import KMeans
from repro.ml.lda import LDA
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
)
from repro.ml.model_selection import KFold, cross_val_score, train_test_split
from repro.ml.naive_bayes import GaussianNB, MultinomialNB
from repro.ml.nmf import NMF, MultiRestartResult, nmf_multi_restart
from repro.ml.pca import PCA
from repro.ml.preprocessing import L2Normalizer, LabelEncoder, StandardScaler
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "AdaBoostClassifier",
    "DecisionStump",
    "KMeans",
    "LDA",
    "LogisticRegression",
    "accuracy_score",
    "confusion_matrix",
    "f1_score",
    "precision_recall_f1",
    "KFold",
    "cross_val_score",
    "train_test_split",
    "GaussianNB",
    "MultinomialNB",
    "NMF",
    "MultiRestartResult",
    "nmf_multi_restart",
    "PCA",
    "L2Normalizer",
    "LabelEncoder",
    "StandardScaler",
    "LinearSVM",
    "DecisionTreeClassifier",
]
