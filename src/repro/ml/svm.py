"""Linear support vector machine trained with Pegasos-style SGD.

Multi-class is handled one-vs-rest; prediction takes the argmax of the
per-class decision values.  This is the classifier the paper found most
accurate for bug type (96%) and symptom (86%) prediction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.ml.preprocessing import LabelEncoder


class LinearSVM:
    """One-vs-rest linear SVM with hinge loss and L2 regularization.

    Parameters
    ----------
    regularization:
        The lambda of the Pegasos objective
        ``lambda/2 ||w||^2 + mean(hinge)``.  Smaller values fit harder.
    epochs:
        Full passes over the training data.
    seed:
        Shuffling seed; training is deterministic for a fixed seed.
    """

    def __init__(
        self,
        *,
        regularization: float = 1e-3,
        epochs: int = 40,
        seed: int = 0,
        class_weight: str | None = "balanced",
    ) -> None:
        if regularization <= 0:
            raise ValueError("regularization must be > 0")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self.class_weight = class_weight
        self._encoder: LabelEncoder | None = None
        self.weights_: np.ndarray | None = None  # (n_classes, n_features)
        self.bias_: np.ndarray | None = None  # (n_classes,)

    @property
    def classes_(self) -> list:
        if self._encoder is None:
            raise NotFittedError("LinearSVM has not been fitted")
        return self._encoder.classes_

    def fit(self, X: np.ndarray, y: Sequence) -> "LinearSVM":
        """Train one binary SVM per class."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        encoder = LabelEncoder().fit(y)
        y_idx = encoder.transform(y)
        n_classes = len(encoder.classes_)
        n_samples, n_features = X.shape
        if n_samples != len(y_idx):
            raise ValueError("X and y have different lengths")
        weights = np.zeros((n_classes, n_features))
        biases = np.zeros(n_classes)
        rng = np.random.default_rng(self.seed)
        for cls in range(n_classes):
            target = np.where(y_idx == cls, 1.0, -1.0)
            if self.class_weight == "balanced":
                # Up-weight the rarer side so one-vs-rest does not collapse
                # onto the majority class (symptom classes are imbalanced:
                # byzantine 61% vs performance 4%).  The weight is capped:
                # an uncapped near-empty class (1-5 samples) produces a
                # binary SVM whose scores dwarf every other class in the
                # argmax, flipping all predictions to the rarest label.
                cap = 3.0
                n_pos = max(int((target > 0).sum()), 1)
                n_neg = max(n_samples - n_pos, 1)
                sample_weight = np.where(
                    target > 0,
                    min(n_samples / (2.0 * n_pos), cap),
                    min(n_samples / (2.0 * n_neg), cap),
                )
            else:
                sample_weight = np.ones(n_samples)
            w, b = self._fit_binary(X, target, sample_weight, rng)
            weights[cls] = w
            biases[cls] = b
        self._encoder = encoder
        self.weights_ = weights
        self.bias_ = biases
        return self

    def _fit_binary(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float]:
        n_samples, n_features = X.shape
        w = np.zeros(n_features)
        b = 0.0
        lam = self.regularization
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for i in order:
                t += 1
                eta = 1.0 / (lam * t)
                margin = y[i] * (X[i] @ w + b)
                w *= 1.0 - eta * lam
                if margin < 1.0:
                    step = eta * sample_weight[i] * y[i]
                    w += step * X[i]
                    b += step
        return w, b

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class raw scores, shape ``(n_samples, n_classes)``."""
        if self.weights_ is None or self.bias_ is None:
            raise NotFittedError("LinearSVM.decision_function called before fit")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.weights_.T + self.bias_

    def predict(self, X: np.ndarray) -> list:
        """Predicted class labels (original label objects)."""
        scores = self.decision_function(X)
        assert self._encoder is not None
        return self._encoder.inverse_transform(np.argmax(scores, axis=1))
