"""Linear support vector machine trained with Pegasos-style SGD.

Multi-class is handled one-vs-rest; prediction takes the argmax of the
per-class decision values.  This is the classifier the paper found most
accurate for bug type (96%) and symptom (86%) prediction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.ml.preprocessing import LabelEncoder
from repro.parallel import WorkPool


def _fit_binary(
    X: np.ndarray,
    y: np.ndarray,
    sample_weight: np.ndarray,
    rng: np.random.Generator,
    *,
    epochs: int,
    regularization: float,
) -> tuple[np.ndarray, float]:
    """Pegasos SGD for one binary one-vs-rest problem."""
    n_samples, n_features = X.shape
    w = np.zeros(n_features)
    b = 0.0
    lam = regularization
    # Start the step counter one "virtual epoch" in: eta = 1/(lam*t) is
    # enormous for small t, and those first few steps otherwise dominate
    # the final iterate enough to misclassify cleanly separable points.
    t = n_samples
    for _ in range(epochs):
        order = rng.permutation(n_samples)
        for i in order:
            t += 1
            eta = 1.0 / (lam * t)
            margin = y[i] * (X[i] @ w + b)
            w *= 1.0 - eta * lam
            if margin < 1.0:
                step = eta * sample_weight[i] * y[i]
                w += step * X[i]
                b += step
    return w, b


def _train_class_task(
    task: tuple[np.ndarray, np.ndarray, np.ndarray, int, int, int, float],
) -> tuple[int, np.ndarray, float]:
    """One-vs-rest training task for :class:`~repro.parallel.WorkPool`.

    Module-level so the process backend can pickle it; each class draws
    from its own ``(seed, class_index)`` stream, which is what makes the
    result independent of scheduling.
    """
    X, target, sample_weight, seed, cls, epochs, regularization = task
    rng = np.random.default_rng((seed, cls))
    w, b = _fit_binary(
        X, target, sample_weight, rng, epochs=epochs, regularization=regularization
    )
    return cls, w, b


class LinearSVM:
    """One-vs-rest linear SVM with hinge loss and L2 regularization.

    Parameters
    ----------
    regularization:
        The lambda of the Pegasos objective
        ``lambda/2 ||w||^2 + mean(hinge)``.  Smaller values fit harder.
    epochs:
        Full passes over the training data.
    seed:
        Shuffling seed; training is deterministic for a fixed seed.
        Each one-vs-rest problem shuffles with an independent
        ``(seed, class_index)`` stream, so per-class training order —
        serial or parallel — cannot change the fitted weights.
    n_jobs:
        Workers for per-class one-vs-rest training.  ``fit`` is bit-for-bit
        identical for every value of ``n_jobs``.
    """

    def __init__(
        self,
        *,
        regularization: float = 1e-3,
        epochs: int = 40,
        seed: int = 0,
        class_weight: str | None = "balanced",
        n_jobs: int = 1,
    ) -> None:
        if regularization <= 0:
            raise ValueError("regularization must be > 0")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self.class_weight = class_weight
        self.n_jobs = n_jobs
        self._encoder: LabelEncoder | None = None
        self.weights_: np.ndarray | None = None  # (n_classes, n_features)
        self.bias_: np.ndarray | None = None  # (n_classes,)

    @property
    def classes_(self) -> list:
        if self._encoder is None:
            raise NotFittedError("LinearSVM has not been fitted")
        return self._encoder.classes_

    def fit(
        self, X: np.ndarray, y: Sequence, *, pool: WorkPool | None = None
    ) -> "LinearSVM":
        """Train one binary SVM per class (optionally in parallel).

        Per-class problems are independent — each has its own RNG stream —
        so training them through a :class:`~repro.parallel.WorkPool` with
        any worker count produces exactly the serial weights.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        encoder = LabelEncoder().fit(y)
        y_idx = encoder.transform(y)
        n_classes = len(encoder.classes_)
        n_samples, n_features = X.shape
        if n_samples != len(y_idx):
            raise ValueError("X and y have different lengths")
        tasks = []
        for cls in range(n_classes):
            target = np.where(y_idx == cls, 1.0, -1.0)
            if self.class_weight == "balanced":
                # Up-weight the rarer side so one-vs-rest does not collapse
                # onto the majority class (symptom classes are imbalanced:
                # byzantine 61% vs performance 4%).  The weight is capped:
                # an uncapped near-empty class (1-5 samples) produces a
                # binary SVM whose scores dwarf every other class in the
                # argmax, flipping all predictions to the rarest label.
                cap = 3.0
                n_pos = max(int((target > 0).sum()), 1)
                n_neg = max(n_samples - n_pos, 1)
                sample_weight = np.where(
                    target > 0,
                    min(n_samples / (2.0 * n_pos), cap),
                    min(n_samples / (2.0 * n_neg), cap),
                )
            else:
                sample_weight = np.ones(n_samples)
            tasks.append(
                (X, target, sample_weight, self.seed, cls,
                 self.epochs, self.regularization)
            )
        pool = pool if pool is not None else WorkPool(self.n_jobs)
        weights = np.zeros((n_classes, n_features))
        biases = np.zeros(n_classes)
        for cls, w, b in pool.map(_train_class_task, tasks):
            weights[cls] = w
            biases[cls] = b
        self._encoder = encoder
        self.weights_ = weights
        self.bias_ = biases
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class raw scores, shape ``(n_samples, n_classes)``."""
        if self.weights_ is None or self.bias_ is None:
            raise NotFittedError("LinearSVM.decision_function called before fit")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.weights_.T + self.bias_

    def predict(self, X: np.ndarray) -> list:
        """Predicted class labels (original label objects)."""
        scores = self.decision_function(X)
        assert self._encoder is not None
        return self._encoder.inverse_transform(np.argmax(scores, axis=1))
