"""Naive Bayes classifiers: multinomial (counts) and Gaussian (dense)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.ml.preprocessing import LabelEncoder


class MultinomialNB:
    """Multinomial naive Bayes with Laplace smoothing.

    Suited to raw term-count or TF-IDF features (non-negative).
    """

    def __init__(self, *, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be > 0")
        self.alpha = alpha
        self._encoder: LabelEncoder | None = None
        self.class_log_prior_: np.ndarray | None = None
        self.feature_log_prob_: np.ndarray | None = None

    @property
    def classes_(self) -> list:
        if self._encoder is None:
            raise NotFittedError("MultinomialNB has not been fitted")
        return self._encoder.classes_

    def fit(self, X: np.ndarray, y: Sequence) -> "MultinomialNB":
        X = np.asarray(X, dtype=np.float64)
        if np.any(X < 0):
            raise ValueError("MultinomialNB requires non-negative features")
        encoder = LabelEncoder().fit(y)
        y_idx = encoder.transform(y)
        n_classes = len(encoder.classes_)
        class_counts = np.bincount(y_idx, minlength=n_classes).astype(np.float64)
        self.class_log_prior_ = np.log(class_counts / class_counts.sum())
        feature_counts = np.zeros((n_classes, X.shape[1]))
        for cls in range(n_classes):
            feature_counts[cls] = X[y_idx == cls].sum(axis=0)
        smoothed = feature_counts + self.alpha
        self.feature_log_prob_ = np.log(smoothed / smoothed.sum(axis=1, keepdims=True))
        self._encoder = encoder
        return self

    def predict_log_proba(self, X: np.ndarray) -> np.ndarray:
        if self.class_log_prior_ is None or self.feature_log_prob_ is None:
            raise NotFittedError("MultinomialNB.predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        joint = X @ self.feature_log_prob_.T + self.class_log_prior_
        # Normalize with log-sum-exp for proper log-probabilities.
        m = joint.max(axis=1, keepdims=True)
        log_norm = m + np.log(np.exp(joint - m).sum(axis=1, keepdims=True))
        return joint - log_norm

    def predict(self, X: np.ndarray) -> list:
        log_proba = self.predict_log_proba(X)
        assert self._encoder is not None
        return self._encoder.inverse_transform(np.argmax(log_proba, axis=1))


class GaussianNB:
    """Gaussian naive Bayes for dense real-valued features (e.g. embeddings)."""

    def __init__(self, *, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self._encoder: LabelEncoder | None = None
        self.theta_: np.ndarray | None = None  # class means
        self.var_: np.ndarray | None = None  # class variances
        self.class_log_prior_: np.ndarray | None = None

    @property
    def classes_(self) -> list:
        if self._encoder is None:
            raise NotFittedError("GaussianNB has not been fitted")
        return self._encoder.classes_

    def fit(self, X: np.ndarray, y: Sequence) -> "GaussianNB":
        X = np.asarray(X, dtype=np.float64)
        encoder = LabelEncoder().fit(y)
        y_idx = encoder.transform(y)
        n_classes = len(encoder.classes_)
        theta = np.zeros((n_classes, X.shape[1]))
        var = np.zeros((n_classes, X.shape[1]))
        counts = np.zeros(n_classes)
        for cls in range(n_classes):
            rows = X[y_idx == cls]
            counts[cls] = len(rows)
            theta[cls] = rows.mean(axis=0)
            var[cls] = rows.var(axis=0)
        var += self.var_smoothing * max(X.var(), 1e-12)
        self.theta_ = theta
        self.var_ = var
        self.class_log_prior_ = np.log(counts / counts.sum())
        self._encoder = encoder
        return self

    def predict(self, X: np.ndarray) -> list:
        if self.theta_ is None or self.var_ is None or self.class_log_prior_ is None:
            raise NotFittedError("GaussianNB.predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        n_classes = self.theta_.shape[0]
        joint = np.zeros((X.shape[0], n_classes))
        for cls in range(n_classes):
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[cls])
                + (X - self.theta_[cls]) ** 2 / self.var_[cls],
                axis=1,
            )
            joint[:, cls] = self.class_log_prior_[cls] + log_likelihood
        assert self._encoder is not None
        return self._encoder.inverse_transform(np.argmax(joint, axis=1))
