"""Orchestration: cached, parallel, incremental interprocedural lint.

The pipeline is phase-shaped and every phase is deterministic:

1. **load** — discover source files (sorted), read bytes, hash them.
   The warm path never calls ``ast.parse``: a module whose digest hits
   the summary cache goes straight from bytes to summary.
2. **summarize** — cache lookups happen in the parent (one process owns
   the cache directory); only misses fan out over the PR-3
   :class:`~repro.parallel.executor.WorkPool`, whose ``map`` returns in
   input order, so the summary list is a pure function of the file set
   regardless of ``jobs``.
3. **link** — module summaries join into one call graph and the taint /
   escape / lock / handle fixpoints run (all sorted iteration).
4. **detect** — the ``dataflow.*`` detectors read the linked facts and
   emit findings, sorted by the canonical finding key.

Because 2–4 only ever consume sorted inputs, ``--jobs 1`` and
``--jobs 4`` produce byte-identical reports; the per-worker spans (for
the observability plane) use the Tracer's deterministic tick clock and
a deterministic round-robin shard, so span trees are reproducible too.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.observability.spans import Span, Tracer
from repro.parallel.cache import DEFAULT_CACHE_ROOT, ArtifactCache
from repro.parallel.executor import WorkPool
from repro.staticanalysis.dataflow.callgraph import (
    CallGraph,
    build_call_graph,
)
from repro.staticanalysis.dataflow.detectors import (
    DataflowContext,
    DataflowDetector,
    default_dataflow_detectors,
)
from repro.staticanalysis.dataflow.summaries import (
    SUMMARY_VERSION,
    ModuleSummary,
    source_digest,
    summarize_module,
)
from repro.staticanalysis.dataflow.taint import (
    DEFAULT_TAINT_SPEC,
    TaintAnalysis,
    TaintSpec,
)
from repro.staticanalysis.loader import iter_source_files
from repro.staticanalysis.model import AnalysisReport, Finding

#: ArtifactCache namespace for module summaries.  The cache key is
#: (module name, source digest, SUMMARY_VERSION): any edit, rename, or
#: summarizer change misses; everything else hits without parsing.
CACHE_NAMESPACE = "dataflow-summary"


def _summarize_task(path: str) -> ModuleSummary:
    """Module-level task function so the process backend can pickle it."""
    return summarize_module(path)


@dataclass
class InterproceduralResult:
    """Everything one interprocedural run produced."""

    report: AnalysisReport
    graph: CallGraph
    taint: TaintAnalysis
    spans: list[Span] = field(default_factory=list)
    stats: dict = field(default_factory=dict)


class InterproceduralAnalyzer:
    """Configured entry point for ``repro lint --interprocedural``."""

    def __init__(
        self,
        detectors: Sequence[DataflowDetector] | None = None,
        *,
        spec: TaintSpec | None = None,
        root: str | Path | None = None,
        cache_root: str | Path | None = DEFAULT_CACHE_ROOT,
        jobs: int = 1,
    ) -> None:
        self.detectors = (
            list(detectors)
            if detectors is not None
            else default_dataflow_detectors()
        )
        self.spec = spec if spec is not None else DEFAULT_TAINT_SPEC
        self.root = Path(root) if root is not None else Path.cwd()
        self.cache = (
            ArtifactCache(cache_root) if cache_root is not None else None
        )
        self.jobs = max(1, jobs)

    # -- phases ----------------------------------------------------------------
    def run(self, paths: Iterable[str | Path]) -> InterproceduralResult:
        tracer = Tracer("interprocedural-lint")
        root_span = tracer.start("interprocedural-lint", kind="run")

        load_span = tracer.start("load", parent_id=root_span.span_id)
        files = list(iter_source_files(paths))
        sources: dict[str, str] = {}
        digests: dict[str, str] = {}
        for file in files:
            posix = file.as_posix()
            sources[posix] = file.read_text(encoding="utf-8")
            digests[posix] = source_digest(sources[posix])
        tracer.end(load_span)

        summarize_span = tracer.start(
            "summarize",
            parent_id=root_span.span_id,
            attrs={"files": len(files)},
        )
        summaries, hits, misses = self._summaries(
            files, sources, digests, tracer, summarize_span
        )
        tracer.end(summarize_span)

        link_span = tracer.start("link", parent_id=root_span.span_id)
        graph = build_call_graph(summaries)
        taint = TaintAnalysis(
            graph, self.spec, root=self.root.resolve()
        ).run()
        tracer.end(link_span)

        detect_span = tracer.start("detect", parent_id=root_span.span_id)
        ctx = DataflowContext(
            graph=graph,
            taint=taint,
            root=self.root.resolve(),
            source_lines={
                path: tuple(text.splitlines())
                for path, text in sources.items()
            },
        )
        findings: list[Finding] = []
        for detector in self.detectors:
            span = tracer.start(
                f"detect:{detector.id}", parent_id=detect_span.span_id
            )
            emitted = list(detector.findings(ctx))
            findings.extend(emitted)
            tracer.end(span)
        tracer.end(detect_span)
        tracer.end(root_span)

        findings.sort(key=Finding.sort_key)
        report = AnalysisReport(
            root=str(self.root.resolve()),
            findings=findings,
            modules_scanned=len(files),
        )
        resolved_edges = sum(
            1
            for qualname in graph.edges
            for _, target in graph.edges[qualname]
            if target is not None
        )
        stats = {
            "modules": len(files),
            "functions": len(graph.functions),
            "resolved_edges": resolved_edges,
            "cache_hits": hits,
            "cache_misses": misses,
            "jobs": self.jobs,
        }
        return InterproceduralResult(
            report=report,
            graph=graph,
            taint=taint,
            spans=tracer.finished(),
            stats=stats,
        )

    def _summaries(
        self,
        files: list[Path],
        sources: dict[str, str],
        digests: dict[str, str],
        tracer: Tracer,
        parent: Span,
    ) -> tuple[list[ModuleSummary], int, int]:
        """Summaries for ``files`` in file order: cache hits from the
        parent process, misses fanned out over the WorkPool."""
        from repro.staticanalysis.loader import module_name_for

        slots: list[ModuleSummary | None] = [None] * len(files)
        miss_indices: list[int] = []
        hits = 0
        for index, file in enumerate(files):
            posix = file.as_posix()
            name, _ = module_name_for(file)
            params = self._cache_params(name, digests[posix])
            if self.cache is not None:
                cached, found = self.cache.lookup(CACHE_NAMESPACE, params)
                if found and isinstance(cached, ModuleSummary):
                    if cached.path != posix:
                        # Same content at a new location (checkout moved):
                        # the summary is valid, only its path label moved.
                        cached = replace(cached, path=posix)
                    slots[index] = cached
                    hits += 1
                    continue
            miss_indices.append(index)

        if miss_indices:
            miss_paths = [files[i].as_posix() for i in miss_indices]
            pool = WorkPool(self.jobs)
            computed = pool.map(_summarize_task, miss_paths)
            # Deterministic round-robin shard = per-worker attribution
            # for the spans (dispatch order, not completion order — the
            # only order that is a pure function of the input set).
            worker_spans: dict[int, Span] = {}
            for worker in range(min(self.jobs, len(miss_paths))):
                worker_spans[worker] = tracer.start(
                    f"worker-{worker}",
                    parent_id=parent.span_id,
                    attrs={
                        "modules": len(
                            range(worker, len(miss_paths), self.jobs)
                        )
                    },
                )
            for position, (index, summary) in enumerate(
                zip(miss_indices, computed)
            ):
                worker = position % self.jobs
                module_span = tracer.start(
                    summary.name,
                    parent_id=worker_spans[worker].span_id,
                    attrs={"digest": summary.digest[:12]},
                )
                tracer.end(module_span)
                slots[index] = summary
                if self.cache is not None:
                    params = self._cache_params(
                        summary.name, summary.digest
                    )
                    self.cache.put(CACHE_NAMESPACE, params, summary)
            for worker in sorted(worker_spans):
                tracer.end(worker_spans[worker])

        summaries = [slot for slot in slots if slot is not None]
        return summaries, hits, len(miss_indices)

    @staticmethod
    def _cache_params(module_name: str, digest: str) -> dict:
        return {
            "module": module_name,
            "digest": digest,
            "version": SUMMARY_VERSION,
        }


def run_interprocedural(
    paths: Iterable[str | Path],
    *,
    detectors: Sequence[DataflowDetector] | None = None,
    spec: TaintSpec | None = None,
    root: str | Path | None = None,
    cache_root: str | Path | None = DEFAULT_CACHE_ROOT,
    jobs: int = 1,
) -> InterproceduralResult:
    """One-shot convenience wrapper around :class:`InterproceduralAnalyzer`."""
    return InterproceduralAnalyzer(
        detectors,
        spec=spec,
        root=root,
        cache_root=cache_root,
        jobs=jobs,
    ).run(paths)
