"""Configurable taint lattice with interprocedural propagation.

The lattice element for one value is a mapping ``kind -> witness``: which
taint kinds may flow into the value and a human-readable witness of the
original source (kept lexicographically minimal so fixpoints are
deterministic).  Propagation is context-insensitive over the call graph:

* a **source** call site generates its kind,
* a resolved callee contributes its *return taint* (computed from its
  own summary, to a fixpoint),
* an unresolved callee (builtins, f-string helpers, third-party code)
  conservatively **passes through** its argument taint,
* a **sanitizer** call strips the kinds it sanitizes,
* taint entering a call's arguments flows into the callee's parameters
  (method calls shift positions past ``self``/``cls``).

The same fixpoint machinery also computes the three non-taint closures
the ``dataflow.*`` detectors need: escaped-exception sets (with
per-handler absorption attribution), transitively acquired lock sets,
and the handle-returning function set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.staticanalysis.dataflow.callgraph import CallGraph
from repro.staticanalysis.dataflow.summaries import (
    USE_DISCARDED,
    USE_RETURNED,
    USE_USED,
    CallSite,
    FunctionSummary,
)

#: Source pattern suffix requiring the call to have no arguments (an
#: RNG constructor with no seed falls back to OS entropy).
_NOARGS = "!noargs"

#: Safety bound on fixpoint iterations (the lattice is finite and the
#: transfer functions monotone, so this should never be reached).
_MAX_ITERATIONS = 64


@dataclass(frozen=True)
class TaintRule:
    """One taint kind: where it is born, where it must not arrive."""

    kind: str
    #: fully qualified source call names; append ``!noargs`` to match
    #: only zero-argument calls (unseeded constructors).
    sources: tuple[str, ...]
    #: sink patterns.  ``name`` or ``Class.method`` match as trailing
    #: dotted segments; a leading ``.`` (e.g. ``.write_bytes``) matches
    #: any receiver's method of that name.
    sinks: tuple[str, ...]
    #: why arriving is a bug — interpolated into the finding message.
    sink_description: str
    sanitizers: tuple[str, ...] = ("len", "bool", "type", "isinstance")

    def matches_source(self, site: CallSite) -> bool:
        for pattern in self.sources:
            if pattern.endswith(_NOARGS):
                if (
                    site.callee == pattern[: -len(_NOARGS)]
                    and not site.arg_feeds
                    and not site.kw_feeds
                    and not site.all_feeds()
                ):
                    return True
            elif site.callee == pattern:
                return True
        return False

    def matches_sink(self, callee: str) -> bool:
        return any(_pattern_matches(p, callee) for p in self.sinks)

    def sanitizes(self, callee: str) -> bool:
        return callee in self.sanitizers


def _pattern_matches(pattern: str, callee: str) -> bool:
    if pattern.startswith("."):
        return callee.endswith(pattern) or callee == pattern[1:]
    return callee == pattern or callee.endswith("." + pattern)


@dataclass(frozen=True)
class TaintSpec:
    """The full lattice configuration: one rule per taint kind."""

    rules: tuple[TaintRule, ...]

    def by_kind(self, kind: str) -> TaintRule:
        for rule in self.rules:
            if rule.kind == kind:
                return rule
        raise KeyError(kind)


#: Journaled / fingerprinted / persisted experiment state: the places a
#: nondeterministic value must never arrive without being an explicit
#: input (Table I: non-deterministic bugs are the hardest to reproduce).
_STATE_SINKS = (
    "RunJournal.append",
    "journal.append",
    "ArtifactCache.put",
    "cache.put",
    "hashlib.sha256",
    "hashlib.sha1",
    "hashlib.md5",
    "hashlib.blake2b",
    "hashlib.new",
)

_ARTIFACT_SINKS = _STATE_SINKS + (
    "pickle.dump",
    "pickle.dumps",
    "json.dump",
    ".write_text",
    ".write_bytes",
    ".writelines",
    "numpy.save",
    "numpy.savez",
)

DEFAULT_TAINT_SPEC = TaintSpec(
    rules=(
        TaintRule(
            kind="wall_clock",
            sources=(
                "time.time",
                "time.time_ns",
                "time.monotonic",
                "time.monotonic_ns",
                "time.perf_counter",
                "time.perf_counter_ns",
                "datetime.datetime.now",
                "datetime.datetime.utcnow",
                "datetime.datetime.today",
                "datetime.date.today",
            ),
            sinks=_STATE_SINKS,
            sink_description=(
                "journaled/fingerprinted state (results now depend on run "
                "time; take the timestamp as an explicit input)"
            ),
        ),
        TaintRule(
            kind="unseeded_rng",
            sources=(
                "random.random",
                "random.randint",
                "random.randrange",
                "random.uniform",
                "random.choice",
                "random.choices",
                "random.shuffle",
                "random.sample",
                "random.getrandbits",
                "random.randbytes",
                "numpy.random.rand",
                "numpy.random.randn",
                "numpy.random.randint",
                "numpy.random.random",
                "numpy.random.choice",
                "numpy.random.normal",
                "numpy.random.uniform",
                "random.Random" + _NOARGS,
                "random.SystemRandom",
                "numpy.random.default_rng" + _NOARGS,
                "numpy.random.RandomState" + _NOARGS,
                "os.urandom",
                "uuid.uuid4",
                "secrets.token_hex",
                "secrets.token_bytes",
            ),
            sinks=_ARTIFACT_SINKS,
            sink_description=(
                "a persisted artifact (two runs of the same configuration "
                "now persist different bytes; derive a seeded stream)"
            ),
        ),
    )
)


#: One taint lattice element: kind -> lexicographically minimal witness.
Taint = dict[str, str]


def _merge(into: Taint, other: Taint) -> bool:
    """Merge ``other`` into ``into``; True when ``into`` changed."""
    changed = False
    for kind, witness in other.items():
        current = into.get(kind)
        if current is None or witness < current:
            into[kind] = witness
            changed = True
    return changed


@dataclass
class TaintAnalysis:
    """All interprocedural facts, computed to a fixpoint over the graph."""

    graph: CallGraph
    spec: TaintSpec = field(default_factory=lambda: DEFAULT_TAINT_SPEC)
    #: function -> taint of its return value.
    ret_taint: dict[str, Taint] = field(default_factory=dict)
    #: function -> param index -> taint entering from any caller.
    param_taint: dict[str, dict[int, Taint]] = field(default_factory=dict)
    #: function -> exception names escaping it (raised, not locally caught).
    escapes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: (function, handler index) -> {exc name: witness} absorbed there.
    absorbed: dict[tuple[str, int], dict[str, str]] = field(
        default_factory=dict
    )
    #: function -> {lock identity: witness} acquired by it or callees.
    lock_closure: dict[str, dict[str, str]] = field(default_factory=dict)
    #: lock-order edges including interprocedural ones:
    #: (outer, inner) -> (function, line, witness description).
    lock_edges: dict[tuple[str, str], tuple[str, int, str]] = field(
        default_factory=dict
    )
    #: functions whose return value is an open file handle.
    handle_returners: dict[str, str] = field(default_factory=dict)
    #: witness paths are reported relative to this root when set, so
    #: reports are byte-identical across checkouts of the same tree.
    root: Path | None = None
    #: memo: converged per-function site taints (filled after run()).
    _final_sites: dict[str, dict[int, Taint]] = field(
        default_factory=dict, repr=False
    )
    _rel_cache: dict[str, str] = field(default_factory=dict, repr=False)

    def _rel(self, path: str) -> str:
        cached = self._rel_cache.get(path)
        if cached is not None:
            return cached
        if self.root is None:
            rel = path
        else:
            try:
                rel = Path(path).relative_to(self.root).as_posix()
            except ValueError:
                rel = path
        self._rel_cache[path] = rel
        return rel

    def run(self) -> "TaintAnalysis":
        order = self.graph.sorted_functions()
        for qualname in order:
            self.ret_taint[qualname] = {}
            self.param_taint[qualname] = {}
            self.escapes[qualname] = {}
            self.lock_closure[qualname] = {}
        self._fix_taint(order)
        self._fix_escapes(order)
        self._fix_locks(order)
        self._fix_handles(order)
        return self

    # -- taint fixpoint --------------------------------------------------------
    def _fix_taint(self, order: list[str]) -> None:
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for qualname in order:
                module, function = self.graph.functions[qualname]
                site_taints = self._site_taints(qualname, module, function)
                # Return taint from the function's own return feeds.
                ret: Taint = {}
                for token in function.ret_feeds:
                    _merge(ret, self._token_taint(
                        qualname, token, site_taints
                    ))
                changed |= _merge(self.ret_taint[qualname], ret)
                # Taint flowing into callee parameters.
                for site, target in self.graph.callsite_targets(qualname):
                    if target is None:
                        continue
                    _, callee = self.graph.functions[target]
                    offset = (
                        1
                        if callee.params[:1] in (("self",), ("cls",))
                        else 0
                    )
                    params = self.param_taint[target]
                    for pos, feeds in enumerate(site.arg_feeds):
                        taint: Taint = {}
                        for token in feeds:
                            _merge(taint, self._token_taint(
                                qualname, token, site_taints
                            ))
                        if taint:
                            slot = params.setdefault(pos + offset, {})
                            changed |= _merge(slot, taint)
                    for name, feeds in site.kw_feeds:
                        if name not in callee.params:
                            continue
                        taint = {}
                        for token in feeds:
                            _merge(taint, self._token_taint(
                                qualname, token, site_taints
                            ))
                        if taint:
                            index = callee.params.index(name)
                            slot = params.setdefault(index, {})
                            changed |= _merge(slot, taint)
                    if offset and site.recv_feeds:
                        # ``obj.method()``: receiver taint enters self/cls.
                        taint = {}
                        for token in site.recv_feeds:
                            _merge(taint, self._token_taint(
                                qualname, token, site_taints
                            ))
                        if taint:
                            slot = params.setdefault(0, {})
                            changed |= _merge(slot, taint)
            if not changed:
                return

    def _site_taints(
        self, qualname: str, module, function: FunctionSummary
    ) -> dict[int, Taint]:
        """Result taint of every call site in ``function`` (memoized)."""
        taints: dict[int, Taint] = {}
        relpath = self._rel(module.path)
        # graph.edges is aligned with function.callsites by construction.
        edges = self.graph.callsite_targets(qualname)

        def evaluate(index: int, trail: frozenset[int]) -> Taint:
            if index in taints:
                return taints[index]
            if index in trail:
                return {}
            site = function.callsites[index]
            out: Taint = {}
            for rule in self.spec.rules:
                if rule.matches_source(site):
                    out[rule.kind] = (
                        f"{site.callee}() at {relpath}:{site.line}"
                    )
            target = edges[index][1] if index < len(edges) else None
            if target is not None:
                _merge(out, self.ret_taint.get(target, {}))
            if target is None or site.is_constructor:
                # Unknown callee / constructor: argument pass-through.
                for token in site.all_feeds():
                    if token.startswith("call:"):
                        _merge(out, evaluate(
                            int(token.split(":")[1]), trail | {index}
                        ))
                    elif token.startswith("param:"):
                        _merge(out, self.param_taint[qualname].get(
                            int(token.split(":")[1]), {}
                        ))
            for rule in self.spec.rules:
                if rule.sanitizes(site.callee):
                    out.pop(rule.kind, None)
            taints[index] = out
            return out

        for index in range(len(function.callsites)):
            evaluate(index, frozenset())
        return taints

    def _token_taint(
        self, qualname: str, token: str, site_taints: dict[int, Taint]
    ) -> Taint:
        if token.startswith("param:"):
            return self.param_taint[qualname].get(
                int(token.split(":")[1]), {}
            )
        if token.startswith("call:"):
            return site_taints.get(int(token.split(":")[1]), {})
        return {}

    def site_taints_for(self, qualname: str) -> dict[int, Taint]:
        """Converged per-site result taints (memoized post-run)."""
        cached = self._final_sites.get(qualname)
        if cached is None:
            module, function = self.graph.functions[qualname]
            cached = self._site_taints(qualname, module, function)
            self._final_sites[qualname] = cached
        return cached

    def site_argument_taint(
        self, qualname: str, site: CallSite
    ) -> Taint:
        """Final taint arriving at any argument of ``site`` (post-run)."""
        site_taints = self.site_taints_for(qualname)
        out: Taint = {}
        for token in site.all_feeds():
            _merge(out, self._token_taint(qualname, token, site_taints))
        return out

    def sink_sites(self, kind: str):
        """Yield ``(function, site)`` pairs whose callee matches the
        kind's sink patterns (callee-name matches are memoized — the
        same dotted name repeats across the whole project)."""
        rule = self.spec.by_kind(kind)
        memo: dict[str, bool] = {}
        for qualname in self.graph.sorted_functions():
            for site, _ in self.graph.callsite_targets(qualname):
                hit = memo.get(site.callee)
                if hit is None:
                    hit = rule.matches_sink(site.callee)
                    memo[site.callee] = hit
                if hit:
                    yield qualname, site

    # -- escaped exceptions ----------------------------------------------------
    def _fix_escapes(self, order: list[str]) -> None:
        for qualname in order:
            _, function = self.graph.functions[qualname]
            for info in function.raises:
                if not info.exc:
                    continue
                if not self.graph.catches_any(info.caught, info.exc):
                    module, _ = self.graph.functions[qualname]
                    self.escapes[qualname].setdefault(
                        info.exc, f"raised at {self._rel(module.path)}:{info.line}"
                    )
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for qualname in order:
                _, function = self.graph.functions[qualname]
                for site, target in self.graph.callsite_targets(qualname):
                    if target is None:
                        continue
                    for exc, witness in sorted(
                        self.escapes.get(target, {}).items()
                    ):
                        handler = self._absorbing_handler(
                            function, site, exc
                        )
                        if handler is None:
                            if exc not in self.escapes[qualname]:
                                self.escapes[qualname][exc] = (
                                    f"{witness} via {target}()"
                                )
                                changed = True
                        elif handler.reraises:
                            if exc not in self.escapes[qualname]:
                                self.escapes[qualname][exc] = (
                                    f"{witness} via {target}() (re-raised)"
                                )
                                changed = True
                        else:
                            slot = self.absorbed.setdefault(
                                (qualname, handler.index), {}
                            )
                            if exc not in slot:
                                slot[exc] = f"{witness} via {target}()"
                                changed = True
            if not changed:
                return

    def _absorbing_handler(
        self, function: FunctionSummary, site: CallSite, exc: str
    ):
        """Innermost enclosing handler of ``site`` that catches ``exc``."""
        for handler_index in site.handler_scope[::-1]:
            handler = function.handlers[handler_index]
            types = handler.types or ("",)
            if any(
                self.graph.exception_matches(caught, exc)
                for caught in types
            ):
                return handler
        return None

    # -- lock closure + interprocedural lock order -----------------------------
    def _fix_locks(self, order: list[str]) -> None:
        for qualname in order:
            module, function = self.graph.functions[qualname]
            for identity, line in function.lock_acquires:
                self.lock_closure[qualname].setdefault(
                    identity, f"{self._rel(module.path)}:{line}"
                )
            for outer, inner in function.lock_edges:
                self.lock_edges.setdefault(
                    (outer, inner),
                    (qualname, function.line, "lexical nesting"),
                )
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for qualname in order:
                closure = self.lock_closure[qualname]
                for site, target in self.graph.callsite_targets(qualname):
                    if target is None:
                        continue
                    for identity, witness in sorted(
                        self.lock_closure.get(target, {}).items()
                    ):
                        if identity not in closure:
                            closure[identity] = witness
                            changed = True
                        for held in site.held_locks:
                            if held == identity:
                                continue
                            edge = (held, identity)
                            if edge not in self.lock_edges:
                                self.lock_edges[edge] = (
                                    qualname,
                                    site.line,
                                    f"call into {target}() while holding "
                                    f"{held}",
                                )
                                changed = True
            if not changed:
                return

    # -- handle returners ------------------------------------------------------
    def _fix_handles(self, order: list[str]) -> None:
        for qualname in order:
            module, function = self.graph.functions[qualname]
            if function.returns_open_handle:
                opens = [
                    o for o in function.opens
                    if o.result_use == USE_RETURNED
                ]
                line = opens[0].line if opens else function.line
                self.handle_returners[qualname] = (
                    f"open() at {self._rel(module.path)}:{line}"
                )
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for qualname in order:
                if qualname in self.handle_returners:
                    continue
                _, function = self.graph.functions[qualname]
                ret_calls = {
                    int(token.split(":")[1])
                    for token in function.ret_feeds
                    if token.startswith("call:")
                }
                for site, target in self.graph.callsite_targets(qualname):
                    if (
                        site.index in ret_calls
                        and target in self.handle_returners
                        and site.result_use == USE_RETURNED
                    ):
                        self.handle_returners[qualname] = (
                            f"{self.handle_returners[target]} "
                            f"via {target}()"
                        )
                        changed = True
                        break
            if not changed:
                return

    # -- queries used by detectors ---------------------------------------------
    def leaked_handle_sites(
        self,
    ) -> list[tuple[str, CallSite, str, str]]:
        """(caller, site, callee, witness) where a returned handle leaks."""
        out: list[tuple[str, CallSite, str, str]] = []
        for qualname in self.graph.sorted_functions():
            for site, target in self.graph.callsite_targets(qualname):
                if target is None or target not in self.handle_returners:
                    continue
                if target == qualname:
                    continue
                if site.result_use in (USE_USED, USE_DISCARDED):
                    out.append((
                        qualname, site, target,
                        self.handle_returners[target],
                    ))
        return out
