"""Project-wide call graph linked from per-module summaries.

Linking gives the symbolic callee names recorded at summary time their
project-level meaning:

* **alias chasing** — ``repro.parallel.ArtifactCache.put`` resolves
  through ``repro/parallel/__init__.py``'s import table to
  ``repro.parallel.cache.ArtifactCache.put``, iteratively, so package
  re-exports don't hide edges;
* **method resolution** — ``Class.method`` falls back through the
  class's resolved base chain when the method is inherited;
* **exception hierarchy** — the class index doubles as the subtype
  relation ``except`` clauses are checked against.

Everything iterates in sorted order: the graph is a deterministic
function of the summary set, independent of summarization order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.staticanalysis.dataflow.summaries import (
    CallSite,
    FunctionSummary,
    ModuleSummary,
)

#: Alias chains longer than this are cycles or pathological; stop.
_MAX_ALIAS_HOPS = 16

#: Exception names that catch everything under the sun.
_CATCH_ALL = {"BaseException", "Exception"}


@dataclass
class CallGraph:
    """Function index + resolved call edges over a set of summaries."""

    #: function qualname -> (summary of its module, its FunctionSummary).
    functions: dict[str, tuple[ModuleSummary, FunctionSummary]] = field(
        default_factory=dict
    )
    #: class qualname -> resolved base names.
    classes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: module name -> {local alias: fq target}.
    imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: caller qualname -> list of (callsite, resolved callee or None).
    edges: dict[str, list[tuple[CallSite, str | None]]] = field(
        default_factory=dict
    )
    #: callee qualname -> sorted caller qualnames.
    callers: dict[str, list[str]] = field(default_factory=dict)

    # -- name resolution -------------------------------------------------------
    def resolve(self, name: str) -> str | None:
        """Resolve a dotted callee name to a known function qualname."""
        seen: set[str] = set()
        for _ in range(_MAX_ALIAS_HOPS):
            if name in self.functions:
                return name
            method = self._resolve_method(name)
            if method is not None:
                return method
            chased = self._chase_alias(name)
            if chased is None or chased in seen:
                return None
            seen.add(chased)
            name = chased
        return None

    def _resolve_method(self, name: str) -> str | None:
        """``Class.method`` lookup, walking the base chain if inherited."""
        head, _, attr = name.rpartition(".")
        if not head or head not in self.classes:
            return None
        visited: set[str] = set()
        queue = [head]
        while queue:
            cls = queue.pop(0)
            if cls in visited:
                continue
            visited.add(cls)
            candidate = f"{cls}.{attr}"
            if candidate in self.functions:
                return candidate
            for base in self.classes.get(cls, ()):
                resolved_base = self._chase_to_class(base)
                if resolved_base is not None:
                    queue.append(resolved_base)
        return None

    def _chase_to_class(self, name: str) -> str | None:
        seen: set[str] = set()
        for _ in range(_MAX_ALIAS_HOPS):
            if name in self.classes:
                return name
            chased = self._chase_alias(name)
            if chased is None or chased in seen:
                return None
            seen.add(chased)
            name = chased
        return None

    def _chase_alias(self, name: str) -> str | None:
        """One re-export hop: find the longest module prefix of ``name``
        and map the next segment through that module's import table."""
        parts = name.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            table = self.imports.get(module)
            if table is None:
                continue
            target = table.get(parts[cut])
            if target is None:
                continue
            rest = parts[cut + 1:]
            return ".".join([target, *rest]) if rest else target
        return None

    # -- exception hierarchy ---------------------------------------------------
    def exception_matches(self, caught: str, raised: str) -> bool:
        """Would ``except <caught>`` trap an instance of ``raised``?"""
        if not caught:
            return True  # bare except
        if caught.split(".")[-1] in _CATCH_ALL:
            return True
        if caught == raised:
            return True
        # Walk the raised type's base chain through the class index.
        seen: set[str] = set()
        queue = [raised]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            if current == caught or _same_tail(current, caught):
                return True
            cls = self._chase_to_class(current)
            if cls is None:
                continue
            if cls == caught or _same_tail(cls, caught):
                return True
            queue.extend(self.classes.get(cls, ()))
        return False

    def catches_any(self, caught_types: tuple[str, ...], raised: str) -> bool:
        return any(
            self.exception_matches(caught, raised) for caught in caught_types
        )

    # -- traversal -------------------------------------------------------------
    def callsite_targets(
        self, qualname: str
    ) -> list[tuple[CallSite, str | None]]:
        return self.edges.get(qualname, [])

    def sorted_functions(self) -> list[str]:
        return sorted(self.functions)


def _same_tail(a: str, b: str) -> bool:
    """Fallback match on the class's own name, for unresolvable imports."""
    return a.split(".")[-1] == b.split(".")[-1] and bool(a) and bool(b)


def build_call_graph(summaries: list[ModuleSummary]) -> CallGraph:
    """Link module summaries into one deterministic call graph."""
    graph = CallGraph()
    for module in sorted(summaries, key=lambda m: m.name):
        graph.imports[module.name] = dict(module.imports)
        # A base defined in the same module is summarized under its bare
        # local name; qualify it so the inheritance walk finds it.
        prefix = module.name + "."
        local = {
            qualname[len(prefix):]: qualname
            for qualname, _ in module.classes
        }
        for qualname, bases in module.classes:
            graph.classes[qualname] = tuple(
                local.get(base, base) for base in bases
            )
        for function in module.functions:
            graph.functions[function.qualname] = (module, function)
    for qualname in graph.sorted_functions():
        _, function = graph.functions[qualname]
        resolved: list[tuple[CallSite, str | None]] = []
        for site in function.callsites:
            target = graph.resolve(site.callee)
            if target is None and site.is_constructor:
                ctor_class = graph._chase_to_class(site.callee)
                if ctor_class is not None:
                    target = graph.resolve(f"{ctor_class}.__init__")
            resolved.append((site, target))
            if target is not None:
                graph.callers.setdefault(target, []).append(qualname)
        graph.edges[qualname] = resolved
    for callee in graph.callers:
        graph.callers[callee] = sorted(set(graph.callers[callee]))
    return graph
