"""Interprocedural dataflow analysis for sdnlint.

PR-5's detectors are single-module and syntactic: a wall-clock read that
flows through three calls into a journaled fingerprint is invisible to
them.  This package adds the semantic, flow-aware program model the
paper's dominant root causes (nondeterminism, error-handling misuse,
concurrency misuse) actually require:

* :mod:`summaries` — per-function dataflow summaries: call sites with
  per-argument feed sets, return feeds, raised/caught exception sets,
  acquired-lock sets, and opened resource handles.  A summary is a pure
  function of one module's source bytes, so it is content-digest
  cacheable and computable in parallel.
* :mod:`callgraph` — a project-wide call graph that resolves aliases
  (package re-exports chased through ``__init__`` import tables) and
  method dispatch (``self.m()``, ``obj.m()`` with constructor-tracked
  receiver types).
* :mod:`taint` — a configurable taint lattice (sources, sanitizers,
  sinks per kind) with context-insensitive interprocedural propagation
  over the call graph to a fixpoint.
* :mod:`detectors` — the ``dataflow.*`` detector family keyed to
  Table-I root causes.
* :mod:`engine` — orchestration: digest-keyed summary caching in the
  PR-3 :class:`~repro.parallel.cache.ArtifactCache`, summary fan-out
  over the PR-3 :class:`~repro.parallel.executor.WorkPool` (bit-identical
  reports for any ``jobs``), and deterministic per-worker spans via
  :mod:`repro.observability`.

CLI: ``python -m repro lint --interprocedural --jobs N``.
"""

from repro.staticanalysis.dataflow.callgraph import CallGraph, build_call_graph
from repro.staticanalysis.dataflow.detectors import (
    DATAFLOW_DETECTOR_TYPES,
    dataflow_detector_ids,
    default_dataflow_detectors,
)
from repro.staticanalysis.dataflow.engine import (
    InterproceduralAnalyzer,
    InterproceduralResult,
    run_interprocedural,
)
from repro.staticanalysis.dataflow.summaries import (
    SUMMARY_VERSION,
    CallSite,
    FunctionSummary,
    ModuleSummary,
    summarize_module,
    summarize_source,
)
from repro.staticanalysis.dataflow.taint import (
    DEFAULT_TAINT_SPEC,
    TaintAnalysis,
    TaintRule,
    TaintSpec,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "DATAFLOW_DETECTOR_TYPES",
    "DEFAULT_TAINT_SPEC",
    "FunctionSummary",
    "InterproceduralAnalyzer",
    "InterproceduralResult",
    "ModuleSummary",
    "SUMMARY_VERSION",
    "TaintAnalysis",
    "TaintRule",
    "TaintSpec",
    "build_call_graph",
    "dataflow_detector_ids",
    "default_dataflow_detectors",
    "run_interprocedural",
    "summarize_module",
    "summarize_source",
]
