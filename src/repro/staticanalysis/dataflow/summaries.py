"""Per-function dataflow summaries: the unit of caching and parallelism.

A :class:`ModuleSummary` is a pure function of one module's source bytes:
it records, for every function (plus a ``<module>`` pseudo-function for
top-level statements), the facts the interprocedural passes need —

* **call sites** with per-argument *feed sets* (which parameters and
  which other call results flow into each argument),
* **return feeds** (what flows into the function's return values),
* **raised and caught exception types**, per raise site and handler,
* **acquired locks** (identity + what was lexically held at each call),
* **opened resource handles** and what happens to them (managed,
  closed, returned, stored, leaked).

Feeds are symbolic tokens, not values: ``param:2`` (the third parameter)
and ``call:5`` (the result of this function's sixth call site).  The
link phase (:mod:`repro.staticanalysis.dataflow.taint`) gives tokens
meaning by resolving call sites through the project call graph, so a
summary never needs to see any module but its own — which is exactly
what makes it content-digest cacheable and safely computable in a
process pool.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticanalysis.checks.concurrency import (
    _collect_lock_names,
    _lock_identity,
)
from repro.staticanalysis.loader import ModuleInfo, load_module

#: Bump when the summary shape or extraction logic changes: the version
#: is part of every cache key, so stale summaries can never be reused.
SUMMARY_VERSION = 1

#: ``result_use`` values, roughly ordered by how safe they are for a
#: resource handle: a managed/closed/returned handle has an owner, a
#: stored one moved ownership to an object, used/discarded ones leak.
USE_MANAGED = "managed"
USE_CLOSED = "closed"
USE_RETURNED = "returned"
USE_STORED = "stored"
USE_FED = "fed"  # nested inside another call's arguments
USE_USED = "used"
USE_DISCARDED = "discarded"

_MODULE_FUNC = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    index: int
    callee: str  # best-effort resolved dotted name (see _CalleeResolver)
    line: int
    col: int
    #: per positional argument: feed tokens ("param:i" / "call:j").
    arg_feeds: tuple[tuple[str, ...], ...] = ()
    #: (keyword name, feed tokens) pairs, in source order.
    kw_feeds: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: feed tokens of a method call's receiver expression —
    #: ``tainted.encode()`` carries its taint through the receiver, not
    #: an argument.
    recv_feeds: tuple[str, ...] = ()
    #: exception type names caught by handlers lexically enclosing this
    #: call within the function (what a callee's escape must pass).
    caught: tuple[str, ...] = ()
    #: indices (into FunctionSummary.handlers) of enclosing handlers,
    #: innermost first.
    handler_scope: tuple[int, ...] = ()
    #: lock identities lexically held at this call site.
    held_locks: tuple[str, ...] = ()
    #: what the caller does with the result (USE_* constants).
    result_use: str = USE_DISCARDED
    #: True when this call is a constructor of a resolved class (the
    #: callee is the class name, not a function).
    is_constructor: bool = False

    def all_feeds(self) -> tuple[str, ...]:
        tokens: list[str] = []
        for feeds in self.arg_feeds:
            tokens.extend(feeds)
        for _, feeds in self.kw_feeds:
            tokens.extend(feeds)
        tokens.extend(self.recv_feeds)
        return tuple(tokens)


@dataclass(frozen=True)
class HandlerInfo:
    """One ``except`` clause: what it catches and whether it pays for it."""

    index: int
    types: tuple[str, ...]  # resolved type names; empty = bare except
    line: int
    reraises: bool
    #: the handler body calls ``<ledger-ish>.record(...)``/``.price(...)``
    #: (or raises), i.e. the absorbed failure is accounted somewhere.
    prices: bool
    only_pass: bool


@dataclass(frozen=True)
class RaiseInfo:
    """One ``raise`` statement and what encloses it locally."""

    exc: str  # resolved type name; "" for a bare re-raise
    line: int
    caught: tuple[str, ...]  # types caught by enclosing local handlers


@dataclass(frozen=True)
class OpenInfo:
    """One ``open()``-family call and the fate of its handle."""

    line: int
    col: int
    result_use: str


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the link phase needs to know about one function."""

    qualname: str  # "pkg.mod.func" or "pkg.mod.Class.method"
    name: str
    line: int
    params: tuple[str, ...]
    callsites: tuple[CallSite, ...] = ()
    ret_feeds: tuple[str, ...] = ()
    raises: tuple[RaiseInfo, ...] = ()
    handlers: tuple[HandlerInfo, ...] = ()
    #: lock-order edges from lexical nesting inside this function.
    lock_edges: tuple[tuple[str, str], ...] = ()
    #: every lock identity this function acquires, with first line.
    lock_acquires: tuple[tuple[str, int], ...] = ()
    opens: tuple[OpenInfo, ...] = ()
    decorators: tuple[str, ...] = ()

    @property
    def returns_open_handle(self) -> bool:
        """Does a locally opened handle flow to a return value?"""
        return any(info.result_use == USE_RETURNED for info in self.opens)


@dataclass(frozen=True)
class ModuleSummary:
    """All function summaries for one module, plus resolution tables."""

    path: str  # absolute posix path
    name: str  # dotted module name
    digest: str  # sha256 of the source bytes
    version: int
    functions: tuple[FunctionSummary, ...] = ()
    #: class qualname -> resolved base names (for exception hierarchies).
    classes: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: local alias -> fully qualified import target (for re-export
    #: chasing: a package ``__init__`` maps exported names to their
    #: defining modules).
    imports: tuple[tuple[str, str], ...] = ()


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def summarize_module(path: str | Path) -> ModuleSummary:
    """Load and summarize one module from disk."""
    module = load_module(Path(path))
    return _summarize(module)


def summarize_source(module: ModuleInfo) -> ModuleSummary:
    """Summarize an already-loaded module."""
    return _summarize(module)


# -- extraction ----------------------------------------------------------------


class _CalleeResolver:
    """Best-effort dotted-name resolution for call targets.

    Layered: import-table resolution (PR-5 loader) for plain and dotted
    names, local-def qualification for bare names defined in this module,
    ``self.m()``/``cls.m()`` -> the enclosing class's method, and
    constructor-tracked locals (``x = ClassName(); x.m()``) -> the class's
    method.  Anything else keeps its raw dotted spelling so sink patterns
    can still match on attribute names.
    """

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.local_defs: set[str] = set()
        self.local_classes: set[str] = set()
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_defs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.local_classes.add(node.name)

    def resolve_class_name(self, node: ast.AST) -> str | None:
        """Fully qualified class name for a constructor reference."""
        if isinstance(node, ast.Name) and node.id in self.local_classes:
            return f"{self.module.name}.{node.id}"
        resolved = self.module.resolve(node)
        if resolved is None:
            return None
        head = resolved.split(".")[0]
        if head in self.module.imports or "." in resolved:
            # Heuristic: imported CapWord targets are classes.
            last = resolved.split(".")[-1]
            if last[:1].isupper():
                return resolved
        return None

    def resolve_call(
        self,
        func: ast.AST,
        class_name: str | None,
        var_types: dict[str, str],
    ) -> tuple[str, bool]:
        """(callee name, is_constructor) for a call's function expression."""
        if isinstance(func, ast.Name):
            if func.id in self.local_defs:
                return f"{self.module.name}.{func.id}", False
            if func.id in self.local_classes:
                return f"{self.module.name}.{func.id}", True
            resolved = self.module.resolve(func) or func.id
            is_ctor = (
                func.id in self.module.imports
                and resolved.split(".")[-1][:1].isupper()
            )
            return resolved, is_ctor
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and class_name is not None:
                    return (
                        f"{self.module.name}.{class_name}.{func.attr}",
                        False,
                    )
                typed = var_types.get(base.id)
                if typed is not None:
                    return f"{typed}.{func.attr}", False
            resolved = self.module.resolve(func)
            if resolved is not None:
                return resolved, False
            return f"<expr>.{func.attr}", False
        return "<dynamic>", False


def _summarize(module: ModuleInfo) -> ModuleSummary:
    resolver = _CalleeResolver(module)
    lock_names = _collect_lock_names(module)
    functions: list[FunctionSummary] = []

    # Top-level statements form a pseudo-function so module-level calls
    # (CLI glue, module initialization) participate in the call graph.
    top_level = [
        stmt
        for stmt in module.tree.body
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    functions.append(
        _summarize_function(
            qualname=f"{module.name}.{_MODULE_FUNC}",
            name=_MODULE_FUNC,
            line=1,
            params=(),
            body=top_level,
            decorators=(),
            module=module,
            resolver=resolver,
            lock_names=lock_names,
            class_name=None,
        )
    )

    classes: list[tuple[str, tuple[str, ...]]] = []
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(
                _summarize_def(node, module, resolver, lock_names, None)
            )
        elif isinstance(node, ast.ClassDef):
            bases = tuple(
                resolved
                for base in node.bases
                if (resolved := module.resolve(base)) is not None
            )
            classes.append((f"{module.name}.{node.name}", bases))
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(
                        _summarize_def(
                            item, module, resolver, lock_names, node.name
                        )
                    )
    return ModuleSummary(
        path=Path(module.path).resolve().as_posix(),
        name=module.name,
        digest=source_digest(module.source),
        version=SUMMARY_VERSION,
        functions=tuple(functions),
        classes=tuple(classes),
        imports=tuple(sorted(module.imports.items())),
    )


def _summarize_def(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleInfo,
    resolver: _CalleeResolver,
    lock_names,
    class_name: str | None,
) -> FunctionSummary:
    params = [arg.arg for arg in node.args.posonlyargs]
    params += [arg.arg for arg in node.args.args]
    if node.args.vararg is not None:
        params.append(node.args.vararg.arg)
    params += [arg.arg for arg in node.args.kwonlyargs]
    if node.args.kwarg is not None:
        params.append(node.args.kwarg.arg)
    qual = (
        f"{module.name}.{class_name}.{node.name}"
        if class_name
        else f"{module.name}.{node.name}"
    )
    decorators = tuple(
        resolved
        for dec in node.decorator_list
        if (
            resolved := module.resolve(
                dec.func if isinstance(dec, ast.Call) else dec
            )
        )
        is not None
    )
    return _summarize_function(
        qualname=qual,
        name=node.name,
        line=node.lineno,
        params=tuple(params),
        body=node.body,
        decorators=decorators,
        module=module,
        resolver=resolver,
        lock_names=lock_names,
        class_name=class_name,
    )


@dataclass
class _Scope:
    """Mutable state while walking one function body."""

    caught: list[str] = field(default_factory=list)
    handler_scope: list[int] = field(default_factory=list)
    held_locks: list[str] = field(default_factory=list)


def _summarize_function(
    *,
    qualname: str,
    name: str,
    line: int,
    params: tuple[str, ...],
    body: list[ast.stmt],
    decorators: tuple[str, ...],
    module: ModuleInfo,
    resolver: _CalleeResolver,
    lock_names,
    class_name: str | None,
) -> FunctionSummary:
    walker = _FunctionWalker(
        params, module, resolver, lock_names, class_name
    )
    walker.walk(body, _Scope())
    walker.finish()
    return FunctionSummary(
        qualname=qualname,
        name=name,
        line=line,
        params=params,
        callsites=tuple(walker.callsites),
        ret_feeds=tuple(walker.ret_feeds),
        raises=tuple(walker.raises),
        handlers=tuple(walker.handlers),
        lock_edges=tuple(dict.fromkeys(walker.lock_edges)),
        lock_acquires=tuple(walker.lock_acquires.items()),
        opens=tuple(walker.opens),
        decorators=decorators,
    )


_OPEN_NAMES = {"open", "io.open"}

_LEDGERISH = ("ledger", "account")


class _FunctionWalker:
    """Single pass over one function body, collecting summary facts.

    Variable flow is flow-insensitive: every assignment contributes its
    right-hand feed tokens to the target name, and var->var references
    are closed transitively in :meth:`finish`.  That over-approximates
    (a name reused for unrelated values merges their feeds) but never
    misses a flow, which is the right bias for bug detectors whose
    verdicts are then human-reviewed.
    """

    def __init__(
        self,
        params: tuple[str, ...],
        module: ModuleInfo,
        resolver: _CalleeResolver,
        lock_names,
        class_name: str | None,
    ) -> None:
        self.module = module
        self.resolver = resolver
        self.lock_names = lock_names
        self.class_name = class_name
        self.param_tokens = {p: f"param:{i}" for i, p in enumerate(params)}
        #: var name -> set of direct feed tokens + "var:<name>" references.
        self.var_feeds: dict[str, set[str]] = {}
        self.var_types: dict[str, str] = {}
        self.callsites: list[CallSite] = []
        self._pending_use: dict[int, str] = {}  # callsite index -> use
        self._call_vars: dict[str, list[int]] = {}  # var -> callsite idxs
        self.ret_feeds: list[str] = []
        self.raises: list[RaiseInfo] = []
        self.handlers: list[HandlerInfo] = []
        self.lock_edges: list[tuple[str, str]] = []
        self.lock_acquires: dict[str, int] = {}
        self.opens: list[OpenInfo] = []
        self._open_sites: dict[int, ast.Call] = {}  # callsite idx -> node
        self._closed_vars: set[str] = set()
        self._managed_vars: set[str] = set()
        self._returned_vars: set[str] = set()
        self._stored_vars: set[str] = set()

    # -- expression feeds ------------------------------------------------------
    def _roots(self, expr: ast.AST | None, scope: _Scope) -> list[str]:
        """Feed tokens for an expression, registering nested call sites."""
        if expr is None:
            return []
        tokens: list[str] = []
        for node in self._walk_expr(expr):
            if isinstance(node, ast.Name):
                token = self.param_tokens.get(node.id)
                if token is not None:
                    tokens.append(token)
                elif node.id in self.var_feeds or node.id in self._call_vars:
                    tokens.append(f"var:{node.id}")
            elif isinstance(node, ast.Call):
                index = self._record_call(node, scope, result_use=USE_FED)
                tokens.append(f"call:{index}")
        return list(dict.fromkeys(tokens))

    def _walk_expr(self, expr: ast.AST):
        """Walk an expression, not descending into nested Call nodes
        (each Call is summarized once by :meth:`_record_call`, which
        walks its own arguments)."""
        stack = [expr]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ast.Call):
                continue  # its args are the call site's business
            if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- call sites ------------------------------------------------------------
    def _record_call(
        self, call: ast.Call, scope: _Scope, *, result_use: str
    ) -> int:
        index = len(self.callsites)
        # Reserve the slot first: argument expressions may contain
        # further calls, and indices must be assignment-stable.
        self.callsites.append(None)  # type: ignore[arg-type]
        callee, is_ctor = self.resolver.resolve_call(
            call.func, self.class_name, self.var_types
        )
        arg_feeds = tuple(
            tuple(self._roots(arg, scope)) for arg in call.args
        )
        kw_feeds = tuple(
            (kw.arg or "**", tuple(self._roots(kw.value, scope)))
            for kw in call.keywords
        )
        recv_feeds: tuple[str, ...] = ()
        if isinstance(call.func, ast.Attribute):
            recv_feeds = tuple(self._roots(call.func.value, scope))
        self.callsites[index] = CallSite(
            index=index,
            callee=callee,
            line=call.lineno,
            col=call.col_offset,
            arg_feeds=arg_feeds,
            kw_feeds=kw_feeds,
            recv_feeds=recv_feeds,
            caught=tuple(dict.fromkeys(scope.caught)),
            handler_scope=tuple(scope.handler_scope),
            held_locks=tuple(dict.fromkeys(scope.held_locks)),
            result_use=result_use,
            is_constructor=is_ctor,
        )
        qualified = self.module.resolve(call.func)
        if qualified in _OPEN_NAMES:
            self._open_sites[index] = call
        return index

    def _retarget_use(self, tokens: list[str], use: str) -> None:
        """Upgrade ``result_use`` for call sites referenced by tokens."""
        for token in tokens:
            if token.startswith("call:"):
                self._pending_use[int(token.split(":")[1])] = use

    # -- statement walk --------------------------------------------------------
    def walk(self, body: list[ast.stmt], scope: _Scope) -> None:
        for stmt in body:
            self._walk_stmt(stmt, scope)

    def _walk_stmt(self, stmt: ast.stmt, scope: _Scope) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are summarized separately (or not at all)
        if isinstance(stmt, ast.Return):
            tokens = self._roots(stmt.value, scope)
            self.ret_feeds.extend(tokens)
            self._retarget_use(tokens, USE_RETURNED)
            for token in tokens:
                if token.startswith("var:"):
                    self._returned_vars.add(token[4:])
            return
        if isinstance(stmt, ast.Raise):
            self._record_raise(stmt, scope)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._record_assign(stmt, scope)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt, scope)
            return
        if isinstance(stmt, ast.Try):
            self._walk_try(stmt, scope)
            return
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Call):
                index = self._record_call(
                    value, scope, result_use=USE_DISCARDED
                )
                self._note_close(value)
                del index
            else:
                self._roots(value, scope)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            tokens = self._roots(stmt.iter, scope)
            target_names = [
                n.id
                for n in ast.walk(stmt.target)
                if isinstance(n, ast.Name)
            ]
            for name in target_names:
                self.var_feeds.setdefault(name, set()).update(tokens)
            self.walk(stmt.body, scope)
            self.walk(stmt.orelse, scope)
            return
        # Generic statements (If, While, Assert, Delete, ...): collect
        # expression feeds for side-effect call sites, then recurse into
        # every statement body.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._roots(child, scope)
        for attr in ("body", "orelse", "finalbody"):
            child_body = getattr(stmt, attr, None)
            if (
                isinstance(child_body, list)
                and child_body
                and isinstance(child_body[0], ast.stmt)
            ):
                self.walk(child_body, scope)

    def _record_assign(self, stmt: ast.stmt, scope: _Scope) -> None:
        value = getattr(stmt, "value", None)
        tokens = self._roots(value, scope) if value is not None else []
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        else:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                self.var_feeds.setdefault(target.id, set()).update(tokens)
                for token in tokens:
                    if token.startswith("call:"):
                        self._call_vars.setdefault(target.id, []).append(
                            int(token.split(":")[1])
                        )
                        self._pending_use.setdefault(
                            int(token.split(":")[1]), USE_USED
                        )
                # Constructor type tracking: x = ClassName(...).
                if (
                    isinstance(value, ast.Call)
                    and len(tokens) >= 1
                ):
                    ctor = self.resolver.resolve_class_name(value.func)
                    if ctor is not None:
                        self.var_types.setdefault(target.id, ctor)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                # Ownership moves to an object / container.
                self._retarget_use(tokens, USE_STORED)
                for token in tokens:
                    if token.startswith("var:"):
                        self._stored_vars.add(token[4:])
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            self.var_feeds.setdefault(stmt.target.id, set()).update(tokens)

    def _walk_with(self, stmt: ast.With | ast.AsyncWith, scope: _Scope) -> None:
        acquired: list[str] = []
        for item in stmt.items:
            expr = item.context_expr
            identity = _lock_identity(
                expr, self.module, self.lock_names, self.class_name
            )
            if identity is not None:
                for outer in scope.held_locks + acquired:
                    if outer != identity:
                        self.lock_edges.append((outer, identity))
                self.lock_acquires.setdefault(identity, stmt.lineno)
                acquired.append(identity)
                continue
            if isinstance(expr, ast.Call):
                index = self._record_call(expr, scope, result_use=USE_MANAGED)
                tokens = [f"call:{index}"]
            else:
                tokens = self._roots(expr, scope)
                self._retarget_use(tokens, USE_MANAGED)
                for token in tokens:
                    if token.startswith("var:"):
                        self._managed_vars.add(token[4:])
            if item.optional_vars is not None and isinstance(
                item.optional_vars, ast.Name
            ):
                self.var_feeds.setdefault(
                    item.optional_vars.id, set()
                ).update(tokens)
        scope.held_locks.extend(acquired)
        self.walk(stmt.body, scope)
        for _ in acquired:
            scope.held_locks.pop()

    def _walk_try(self, stmt: ast.Try, scope: _Scope) -> None:
        caught_here: list[str] = []
        handler_indices: list[int] = []
        for handler in stmt.handlers:
            types = _handler_types(handler, self.module)
            caught_here.extend(types if types else ("BaseException",))
            info = HandlerInfo(
                index=len(self.handlers),
                types=types,
                line=handler.lineno,
                reraises=_handler_reraises(handler),
                prices=_handler_prices(handler, self.module),
                only_pass=all(
                    isinstance(s, ast.Pass) for s in handler.body
                ),
            )
            handler_indices.append(info.index)
            self.handlers.append(info)
        scope.caught.extend(caught_here)
        scope.handler_scope.extend(handler_indices)
        self.walk(stmt.body, scope)
        for _ in caught_here:
            scope.caught.pop()
        for _ in handler_indices:
            scope.handler_scope.pop()
        for handler in stmt.handlers:
            self.walk(handler.body, scope)
        self.walk(stmt.orelse, scope)
        self.walk(stmt.finalbody, scope)

    def _record_raise(self, stmt: ast.Raise, scope: _Scope) -> None:
        exc = stmt.exc
        name = ""
        if exc is not None:
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = self.module.resolve(target) or ""
            if isinstance(exc, ast.Call):
                self._record_call(exc, scope, result_use=USE_FED)
        self.raises.append(
            RaiseInfo(
                exc=name,
                line=stmt.lineno,
                caught=tuple(dict.fromkeys(scope.caught)),
            )
        )

    def _note_close(self, call: ast.Call) -> None:
        """``v.close()`` marks ``v``'s handle as closed in this scope."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "close"
            and isinstance(func.value, ast.Name)
        ):
            self._closed_vars.add(func.value.id)

    # -- finalization ----------------------------------------------------------
    def finish(self) -> None:
        """Close var->var references and finalize call-site result uses."""
        # Transitive closure of variable feeds (small graphs; iterate).
        resolved: dict[str, set[str]] = {}

        def expand(name: str, trail: frozenset[str]) -> set[str]:
            if name in resolved:
                return resolved[name]
            if name in trail:
                return set()
            out: set[str] = set()
            for token in self.var_feeds.get(name, ()):
                if token.startswith("var:"):
                    out |= expand(token[4:], trail | {name})
                else:
                    out.add(token)
            resolved[name] = out
            return out

        for name in list(self.var_feeds):
            expand(name, frozenset())

        def flatten(tokens: list[str]) -> tuple[str, ...]:
            out: list[str] = []
            for token in tokens:
                if token.startswith("var:"):
                    out.extend(sorted(resolved.get(token[4:], ())))
                else:
                    out.append(token)
            return tuple(dict.fromkeys(out))

        self.ret_feeds = list(flatten(self.ret_feeds))
        # Var fates upgrade the result_use of the call sites they hold.
        for var, indices in self._call_vars.items():
            if var in self._closed_vars:
                use = USE_CLOSED
            elif var in self._managed_vars:
                use = USE_MANAGED
            elif var in self._returned_vars:
                use = USE_RETURNED
            elif var in self._stored_vars:
                use = USE_STORED
            else:
                use = USE_USED
            for idx in indices:
                current = self._pending_use.get(idx)
                if current in (None, USE_USED, USE_FED):
                    self._pending_use[idx] = use
        finalized: list[CallSite] = []
        for site in self.callsites:
            use = self._pending_use.get(site.index, site.result_use)
            site = CallSite(
                index=site.index,
                callee=site.callee,
                line=site.line,
                col=site.col,
                arg_feeds=tuple(flatten(list(f)) for f in site.arg_feeds),
                kw_feeds=tuple(
                    (k, flatten(list(f))) for k, f in site.kw_feeds
                ),
                recv_feeds=flatten(list(site.recv_feeds)),
                caught=site.caught,
                handler_scope=site.handler_scope,
                held_locks=site.held_locks,
                result_use=use,
                is_constructor=site.is_constructor,
            )
            finalized.append(site)
        self.callsites = finalized
        for index, call in self._open_sites.items():
            self.opens.append(
                OpenInfo(
                    line=call.lineno,
                    col=call.col_offset,
                    result_use=self.callsites[index].result_use,
                )
            )


def _handler_types(
    handler: ast.ExceptHandler, module: ModuleInfo
) -> tuple[str, ...]:
    if handler.type is None:
        return ()
    exprs: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        exprs = list(handler.type.elts)
    else:
        exprs = [handler.type]
    return tuple(
        resolved
        for expr in exprs
        if (resolved := module.resolve(expr)) is not None
    )


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


def _handler_prices(handler: ast.ExceptHandler, module: ModuleInfo) -> bool:
    """Does the handler record the absorbed failure somewhere durable?

    A handler *prices* a failure when it calls ``record``/``price`` on a
    ledger-ish receiver (name contains "ledger"/"account"), or calls a
    logging method — the minimum bar for the paper's "no-alert" symptom
    class not to apply.
    """
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            receiver = node.func.value
            receiver_name = ""
            if isinstance(receiver, ast.Name):
                receiver_name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                receiver_name = receiver.attr
            lowered = receiver_name.lower()
            if attr in ("record", "price") and any(
                tag in lowered for tag in _LEDGERISH
            ):
                return True
            if attr in (
                "warning", "error", "exception", "critical", "log",
            ) and ("log" in lowered or receiver_name == "logger"):
                return True
    return False
