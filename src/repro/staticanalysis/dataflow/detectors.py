"""The ``dataflow.*`` detector family: interprocedural findings.

Each detector reads the linked :class:`~repro.staticanalysis.dataflow
.callgraph.CallGraph` and the fixpoint facts in :class:`~repro
.staticanalysis.dataflow.taint.TaintAnalysis` — it never re-walks an
AST.  All five are keyed to Table-I root causes, extending the PR-5
single-module family across function boundaries:

============================================ ==================== =====================
detector                                      bug type             root cause
============================================ ==================== =====================
``dataflow.wall-clock-taint``                 non-deterministic    ecosystem/system call
``dataflow.unseeded-rng-taint``               non-deterministic    missing logic
``dataflow.unpriced-exception``               deterministic        missing logic
``dataflow.cross-function-lock-cycle``        non-deterministic    concurrency
``dataflow.escaping-handle``                  deterministic        ecosystem/system call
============================================ ==================== =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.staticanalysis.checks.base import _DISABLE_RE
from repro.staticanalysis.dataflow.callgraph import CallGraph
from repro.staticanalysis.dataflow.taint import TaintAnalysis
from repro.staticanalysis.model import Finding, Severity
from repro.taxonomy import BugType, RootCause


@dataclass
class DataflowContext:
    """Everything a dataflow detector may consult, plus source lines
    for inline-suppression checks (kept separately because the warm
    cache path never parses — but suppression must still honour the
    current text of the file)."""

    graph: CallGraph
    taint: TaintAnalysis
    root: Path
    #: absolute posix path -> source lines (1-based access via line_text).
    source_lines: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def line_text(self, path: str, line: int) -> str:
        lines = self.source_lines.get(path, ())
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""

    def relpath(self, path: str) -> str:
        try:
            return Path(path).relative_to(self.root).as_posix()
        except ValueError:
            return path

    def module_path(self, qualname: str) -> str:
        module, _ = self.graph.functions[qualname]
        return module.path


class DataflowDetector:
    """Base class mirroring the classic Detector protocol, but the unit
    of work is the whole linked program, not one module."""

    id: str = ""
    family: str = ""
    description: str = ""
    severity: Severity = Severity.WARNING
    bug_type: BugType = BugType.DETERMINISTIC
    root_cause: RootCause = RootCause.MISSING_LOGIC

    def findings(self, ctx: DataflowContext) -> Iterator[Finding]:
        return iter(())

    def finding(
        self,
        ctx: DataflowContext,
        path: str,
        line: int,
        col: int,
        message: str,
    ) -> Finding | None:
        if _inline_suppressed(ctx, path, line, self.id):
            return None
        return Finding(
            detector=self.id,
            message=message,
            path=ctx.relpath(path),
            line=line,
            col=col,
            severity=self.severity,
            bug_type=self.bug_type,
            root_cause=self.root_cause,
        )


def _inline_suppressed(
    ctx: DataflowContext, path: str, line: int, detector_id: str
) -> bool:
    match = _DISABLE_RE.search(ctx.line_text(path, line))
    if match is None:
        return False
    ids = match.group(1)
    if ids is None:  # disable-all
        return True
    return detector_id in {part.strip() for part in ids.split(",")}


class WallClockTaintDetector(DataflowDetector):
    """A wall-clock read flows (possibly through calls) into journaled
    or fingerprinted state: the run's identity now depends on when it
    ran, the paper's canonical non-deterministic-bug shape."""

    id = "dataflow.wall-clock-taint"
    family = "nondeterminism"
    description = "wall-clock value reaches journaled/fingerprinted state"
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.ECOSYSTEM_SYSTEM_CALL
    kind = "wall_clock"

    def findings(self, ctx: DataflowContext) -> Iterator[Finding]:
        rule = ctx.taint.spec.by_kind(self.kind)
        for qualname, site in ctx.taint.sink_sites(self.kind):
            taint = ctx.taint.site_argument_taint(qualname, site)
            witness = taint.get(self.kind)
            if witness is None:
                continue
            found = self.finding(
                ctx,
                ctx.module_path(qualname),
                site.line,
                site.col,
                f"{self.kind.replace('_', '-')} value from "
                f"{witness} reaches {site.callee}() — "
                f"{rule.sink_description}",
            )
            if found is not None:
                yield found


class UnseededRngTaintDetector(WallClockTaintDetector):
    """An unseeded random stream flows into a persisted artifact: two
    runs of the same configuration persist different bytes."""

    id = "dataflow.unseeded-rng-taint"
    family = "nondeterminism"
    description = "unseeded-RNG value reaches a persisted artifact"
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.MISSING_LOGIC
    kind = "unseeded_rng"


class UnpricedExceptionDetector(DataflowDetector):
    """A handler absorbs exceptions escaping its callees without
    re-raising, pricing them into a ResilienceLedger, or logging: the
    fault boundary silently eats failures (the paper's "no alert raised"
    symptom, root-caused as missing logic in error handling)."""

    id = "dataflow.unpriced-exception"
    family = "error_handling"
    description = (
        "callee exceptions absorbed at a fault boundary without "
        "ledger pricing or logging"
    )
    severity = Severity.WARNING
    bug_type = BugType.DETERMINISTIC
    root_cause = RootCause.MISSING_LOGIC

    def findings(self, ctx: DataflowContext) -> Iterator[Finding]:
        for (qualname, handler_index), absorbed in sorted(
            ctx.taint.absorbed.items()
        ):
            _, function = ctx.graph.functions[qualname]
            handler = function.handlers[handler_index]
            if handler.reraises or handler.prices or not absorbed:
                continue
            path = ctx.module_path(qualname)
            names = ", ".join(
                exc.split(".")[-1] for exc in sorted(absorbed)
            )
            sample = absorbed[min(absorbed)]
            found = self.finding(
                ctx,
                path,
                handler.line,
                0,
                f"handler absorbs {names} escaping its callees "
                f"({sample}) without re-raising, pricing into a "
                "ResilienceLedger, or logging",
            )
            if found is not None:
                yield found


class CrossFunctionLockCycleDetector(DataflowDetector):
    """ABBA deadlock potential where at least one edge crosses a
    function boundary — invisible to the PR-5 lexical detector, which
    only sees nesting inside a single function."""

    id = "dataflow.cross-function-lock-cycle"
    family = "concurrency"
    description = "lock-order cycle with an interprocedural edge"
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.CONCURRENCY

    def findings(self, ctx: DataflowContext) -> Iterator[Finding]:
        edges = ctx.taint.lock_edges
        graph: dict[str, set[str]] = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())
        for component in _strongly_connected(graph):
            members = set(component)
            cycle_edges = sorted(
                (outer, inner)
                for (outer, inner) in edges
                if outer in members and inner in members
            )
            if len(component) < 2 and not any(
                outer == inner for outer, inner in cycle_edges
            ):
                continue
            inter = [
                (edge, edges[edge])
                for edge in cycle_edges
                if edges[edge][2] != "lexical nesting"
            ]
            if not inter:
                continue  # PR-5's lexical detector already owns it
            # Anchor the finding at the first interprocedural edge.
            (outer, inner), (qualname, line, how) = inter[0]
            path = ctx.module_path(qualname)
            order = " -> ".join(sorted(members))
            found = self.finding(
                ctx,
                path,
                line,
                0,
                f"cross-function lock-order cycle [{order}]: "
                f"{outer} is held while {inner} is acquired via {how} "
                "— another thread taking the opposite order deadlocks",
            )
            if found is not None:
                yield found


class EscapingHandleDetector(DataflowDetector):
    """A function returns an open file handle and a caller neither
    closes, returns, stores, nor context-manages it: the descriptor
    leaks when the paper's ecosystem-interaction bugs bite (fd
    exhaustion, unflushed buffers on crash)."""

    id = "dataflow.escaping-handle"
    family = "resources"
    description = "returned open handle leaks at a call site"
    severity = Severity.WARNING
    bug_type = BugType.DETERMINISTIC
    root_cause = RootCause.ECOSYSTEM_SYSTEM_CALL

    def findings(self, ctx: DataflowContext) -> Iterator[Finding]:
        for qualname, site, target, witness in (
            ctx.taint.leaked_handle_sites()
        ):
            path = ctx.module_path(qualname)
            found = self.finding(
                ctx,
                path,
                site.line,
                site.col,
                f"open handle returned by {target}() ({witness}) is "
                f"never closed in {qualname} — close it or wrap the "
                "call in a with block",
            )
            if found is not None:
                yield found


def _strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan over the lock-order graph, deterministic order."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for start in sorted(graph):
        if start in index_of:
            continue
        work: list[tuple[str, iter]] = [(start, iter(sorted(graph[start])))]
        index_of[start] = low[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in index_of:
                    index_of[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return sorted(components)


#: Canonical detector order (and therefore canonical report order ties).
DATAFLOW_DETECTOR_TYPES: tuple[type[DataflowDetector], ...] = (
    WallClockTaintDetector,
    UnseededRngTaintDetector,
    UnpricedExceptionDetector,
    CrossFunctionLockCycleDetector,
    EscapingHandleDetector,
)


def default_dataflow_detectors() -> list[DataflowDetector]:
    return [cls() for cls in DATAFLOW_DETECTOR_TYPES]


def dataflow_detector_ids() -> list[str]:
    return [cls.id for cls in DATAFLOW_DETECTOR_TYPES]
