"""Baseline (known-debt) file: accept existing findings, gate new ones.

A baseline entry pins ``(detector, path, line)``.  Matching findings are
*suppressed* — still reported, still counted separately — so the CI gate
can fail on new debt while the committed debt is paid down incrementally.
The file is versioned JSON with sorted keys so diffs review cleanly.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import StaticAnalysisError
from repro.staticanalysis.model import AnalysisReport, Finding

_VERSION = 1


def baseline_key(finding: Finding) -> tuple[str, str, int]:
    return (finding.detector, finding.path, finding.line)


def write_baseline(report: AnalysisReport, path: str | Path) -> int:
    """Write every *active* finding in ``report`` as accepted debt.

    Returns the number of entries written.  The write is atomic
    (tmp sibling + fsync + rename): the baseline gates CI, so a torn
    baseline must not be observable.
    """
    entries = [
        {"detector": f.detector, "path": f.path, "line": f.line}
        for f in sorted(report.active, key=Finding.sort_key)
    ]
    payload = json.dumps(
        {"version": _VERSION, "entries": entries}, indent=2, sort_keys=True
    )
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    return len(entries)


def load_baseline(path: str | Path) -> set[tuple[str, str, int]]:
    """Load baseline keys; a missing file is an empty baseline."""
    target = Path(path)
    if not target.exists():
        return set()
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StaticAnalysisError(f"unreadable baseline {target}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise StaticAnalysisError(
            f"baseline {target}: unsupported format "
            f"(expected version {_VERSION})"
        )
    keys: set[tuple[str, str, int]] = set()
    for entry in payload.get("entries", ()):
        try:
            keys.add((entry["detector"], entry["path"], int(entry["line"])))
        except (KeyError, TypeError, ValueError) as exc:
            raise StaticAnalysisError(
                f"baseline {target}: malformed entry {entry!r}"
            ) from exc
    return keys


def apply_baseline(
    report: AnalysisReport, baseline: set[tuple[str, str, int]]
) -> AnalysisReport:
    """Mark findings matching ``baseline`` as suppressed (new report)."""
    findings = [
        f.suppress() if baseline_key(f) in baseline else f
        for f in report.findings
    ]
    return AnalysisReport(
        root=report.root,
        findings=findings,
        modules_scanned=report.modules_scanned,
    )
