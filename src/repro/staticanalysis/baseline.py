"""Baseline (known-debt) file: accept existing findings, gate new ones.

A baseline entry pins ``(detector, path, line)``.  Matching findings are
*suppressed* — still reported, still counted separately — so the CI gate
can fail on new debt while the committed debt is paid down incrementally.
The file is versioned JSON with sorted keys so diffs review cleanly.

Schema history:

* **(unversioned)** — the pre-versioning shape: a bare ``entries`` list
  with no ``version`` field.  Still loadable.
* **v1** — added the ``version`` field.
* **v2** — detector-ID namespacing: detector ids may carry a dotted
  family prefix (the interprocedural family is ``dataflow.*``), and the
  file records which families it covers under ``families`` so a v2
  baseline written before a family existed never silently blesses that
  family's findings.  v1 files (and unversioned files) load as covering
  only the classic un-namespaced detectors.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import StaticAnalysisError
from repro.staticanalysis.model import AnalysisReport, Finding

_VERSION = 2

#: Versions :func:`load_baseline` accepts.  ``None`` stands for the
#: original unversioned shape.
_LOADABLE_VERSIONS = (None, 1, 2)


def baseline_key(finding: Finding) -> tuple[str, str, int]:
    return (finding.detector, finding.path, finding.line)


def _family_of(detector_id: str) -> str:
    """Namespace prefix of a detector id ("" for classic detectors)."""
    head, dot, _ = detector_id.rpartition(".")
    return head if dot else ""


def write_baseline(report: AnalysisReport, path: str | Path) -> int:
    """Write every *active* finding in ``report`` as accepted debt.

    Returns the number of entries written.  The write is atomic
    (tmp sibling + fsync + rename): the baseline gates CI, so a torn
    baseline must not be observable.
    """
    entries = [
        {"detector": f.detector, "path": f.path, "line": f.line}
        for f in sorted(report.active, key=Finding.sort_key)
    ]
    families = sorted(
        {_family_of(entry["detector"]) for entry in entries}
    )
    payload = json.dumps(
        {"version": _VERSION, "families": families, "entries": entries},
        indent=2,
        sort_keys=True,
    )
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    return len(entries)


def load_baseline(path: str | Path) -> set[tuple[str, str, int]]:
    """Load baseline keys; a missing file is an empty baseline.

    Accepts the current v2 schema plus both legacy shapes (v1 and the
    original unversioned file), so an existing committed baseline keeps
    working across the upgrade; rewriting it with ``--write-baseline``
    migrates it to v2.
    """
    target = Path(path)
    if not target.exists():
        return set()
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StaticAnalysisError(f"unreadable baseline {target}: {exc}") from exc
    if not isinstance(payload, dict):
        raise StaticAnalysisError(
            f"baseline {target}: unsupported format (not an object)"
        )
    version = payload.get("version")
    if version not in _LOADABLE_VERSIONS:
        raise StaticAnalysisError(
            f"baseline {target}: unsupported version {version!r} "
            f"(this build reads {sorted(v for v in _LOADABLE_VERSIONS if v)} "
            "and unversioned files)"
        )
    keys: set[tuple[str, str, int]] = set()
    for entry in payload.get("entries", ()):
        try:
            detector = str(entry["detector"])
            if version in (None, 1) and _family_of(detector):
                # Pre-namespacing files cannot have blessed namespaced
                # findings; a dotted id there is a corrupted entry, not
                # debt to honour.
                raise StaticAnalysisError(
                    f"baseline {target}: namespaced detector id "
                    f"{detector!r} in a v{version or 0} file"
                )
            keys.add((detector, entry["path"], int(entry["line"])))
        except (KeyError, TypeError, ValueError) as exc:
            raise StaticAnalysisError(
                f"baseline {target}: malformed entry {entry!r}"
            ) from exc
    return keys


def apply_baseline(
    report: AnalysisReport, baseline: set[tuple[str, str, int]]
) -> AnalysisReport:
    """Mark findings matching ``baseline`` as suppressed (new report)."""
    findings = [
        f.suppress() if baseline_key(f) in baseline else f
        for f in report.findings
    ]
    return AnalysisReport(
        root=report.root,
        findings=findings,
        modules_scanned=report.modules_scanned,
    )
