"""Source loading for sdnlint: discovery, parsing, and name resolution.

The loader turns a set of files/directories into :class:`ModuleInfo`
records: parsed AST (with parent back-links annotated on every node), the
module's dotted name inferred from its package layout, and an import table
mapping every local alias to the fully qualified name it stands for.  The
import table is what lets detectors ask *semantic* questions ("is this
call ``numpy.random.default_rng``?") instead of string-matching on
whatever alias the file happens to use.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import StaticAnalysisError


@dataclass
class ModuleInfo:
    """One parsed source module plus its resolution tables."""

    path: Path  # absolute
    name: str  # dotted module name, e.g. "repro.recovery.journal"
    package: str  # dotted package, e.g. "repro.recovery"
    tree: ast.Module
    source: str
    #: alias visible in this module -> fully qualified dotted name.
    imports: dict[str, str] = field(default_factory=dict)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def line_text(self, lineno: int) -> str:
        lines = self.lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""

    def resolve(self, node: ast.AST) -> str | None:
        """Fully qualified dotted name for a Name/Attribute chain, or None.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``"numpy.random.default_rng"``; a bare builtin like ``open`` (no
        import shadowing it) resolves to ``"open"``.
        """
        parts: list[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.append(cursor.id)
        parts.reverse()
        head = parts[0]
        mapped = self.imports.get(head)
        if mapped is not None:
            parts[0:1] = mapped.split(".")
        return ".".join(parts)


def annotate_parents(tree: ast.AST) -> None:
    """Attach a ``sdnlint_parent`` back-link to every node in ``tree``."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.sdnlint_parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    return getattr(node, "sdnlint_parent", None)


def build_import_table(tree: ast.Module) -> dict[str, str]:
    """Map each locally bound import alias to its fully qualified target."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    # ``import os.path`` binds the *top-level* name ``os``.
                    top = alias.name.split(".")[0]
                    table[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports: module name is ambiguous here
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                table[bound] = f"{node.module}.{alias.name}"
    return table


def module_name_for(path: Path) -> tuple[str, str]:
    """Infer (dotted module name, dotted package) from the package layout.

    Walks up while ``__init__.py`` siblings exist, so
    ``src/repro/recovery/journal.py`` becomes ``repro.recovery.journal``
    in package ``repro.recovery``.  A file outside any package is its own
    single-segment module.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    cursor = path.parent
    while (cursor / "__init__.py").exists():
        parts.insert(0, cursor.name)
        parent = cursor.parent
        if parent == cursor:
            break
        cursor = parent
    if not parts:
        parts = [path.stem]
    name = ".".join(parts)
    if path.name == "__init__.py":
        package = name
    else:
        package = ".".join(parts[:-1]) or name
    return name, package


def iter_source_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, deterministically ordered."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise StaticAnalysisError(f"no such path: {path}")
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise StaticAnalysisError(f"not a Python source path: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield resolved


def load_module(path: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises on syntax errors)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise StaticAnalysisError(
            f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}"
        ) from exc
    annotate_parents(tree)
    name, package = module_name_for(path)
    return ModuleInfo(
        path=path,
        name=name,
        package=package,
        tree=tree,
        source=source,
        imports=build_import_table(tree),
    )


def load_paths(paths: Iterable[str | Path]) -> list[ModuleInfo]:
    """Load every module under ``paths``, in deterministic path order."""
    return [load_module(path) for path in iter_source_files(paths)]
