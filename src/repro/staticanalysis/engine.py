"""The sdnlint analyzer: load -> per-module walks -> cross-module passes.

The engine itself is stdlib-``ast`` only: scanning never imports or
executes the code under analysis, so syntactically valid modules with
missing dependencies still lint.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import StaticAnalysisError
from repro.staticanalysis.checks import AnalysisContext, Detector, default_detectors
from repro.staticanalysis.loader import load_paths
from repro.staticanalysis.model import AnalysisReport, Finding


class Analyzer:
    """Run a set of detectors over Python source trees.

    Parameters
    ----------
    detectors:
        Detector instances to run; defaults to the full registry.
    root:
        Paths in findings are reported relative to this directory
        (default: the current working directory).
    """

    def __init__(
        self,
        detectors: Sequence[Detector] | None = None,
        *,
        root: str | Path | None = None,
    ) -> None:
        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        seen: set[str] = set()
        for detector in self.detectors:
            if not detector.id:
                raise StaticAnalysisError(
                    f"detector {type(detector).__name__} has no id"
                )
            if detector.id in seen:
                raise StaticAnalysisError(f"duplicate detector id {detector.id!r}")
            seen.add(detector.id)
        self.root = Path(root) if root is not None else Path.cwd()

    def run(self, paths: Iterable[str | Path]) -> AnalysisReport:
        """Analyze every ``.py`` file under ``paths``."""
        modules = load_paths(paths)
        ctx = AnalysisContext(modules=modules, root=self.root.resolve())
        ctx.index()
        findings: list[Finding] = []
        for module in modules:
            for detector in self.detectors:
                findings.extend(detector.check_module(module, ctx))
        for detector in self.detectors:
            findings.extend(detector.finalize(ctx))
        findings.sort(key=Finding.sort_key)
        return AnalysisReport(
            root=str(ctx.root),
            findings=findings,
            modules_scanned=len(modules),
        )


def run_lint(
    paths: Iterable[str | Path],
    *,
    detectors: Sequence[Detector] | None = None,
    root: str | Path | None = None,
) -> AnalysisReport:
    """One-shot convenience wrapper around :class:`Analyzer`."""
    return Analyzer(detectors, root=root).run(paths)
