"""sdnlint: AST bug-pattern analysis mapped to the paper's Table I taxonomy.

Two halves, both feeding the same study vocabulary:

* **Taxonomy detectors** (:mod:`repro.staticanalysis.checks`) — concrete
  Python patterns for the root-cause classes the paper measured:
  nondeterminism (unseeded RNG, wall clocks, hash-order leaks), missing
  error-handling logic, concurrency (lock-order cycles, unlocked shared
  writes from pool tasks), and resource/durability handling.
* **CodeModel extraction** (:mod:`repro.staticanalysis.extract`) — lowers
  real Python packages into :class:`repro.smells.CodeModel`, so the Fig-8
  architecture/design smell detectors run over this repo's own source.
* **Interprocedural dataflow** (:mod:`repro.staticanalysis.dataflow`) —
  a project-wide call graph, cached per-module summaries, and a taint
  lattice powering the ``dataflow.*`` detector family
  (``--interprocedural --jobs N``).

CLI: ``python -m repro lint [paths] [--format json] [--fail-on error]``.
"""

from repro.staticanalysis.baseline import (
    apply_baseline,
    baseline_key,
    load_baseline,
    write_baseline,
)
from repro.staticanalysis.checks import (
    DETECTOR_TYPES,
    AnalysisContext,
    Detector,
    default_detectors,
    detector_ids,
)
from repro.staticanalysis.dataflow import (
    InterproceduralAnalyzer,
    dataflow_detector_ids,
    run_interprocedural,
)
from repro.staticanalysis.engine import Analyzer, run_lint
from repro.staticanalysis.extract import extract_code_model
from repro.staticanalysis.loader import ModuleInfo, load_module, load_paths
from repro.staticanalysis.model import AnalysisReport, Finding, Severity
from repro.staticanalysis.reporters import to_json, to_text

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Analyzer",
    "DETECTOR_TYPES",
    "Detector",
    "Finding",
    "InterproceduralAnalyzer",
    "ModuleInfo",
    "Severity",
    "apply_baseline",
    "baseline_key",
    "dataflow_detector_ids",
    "default_detectors",
    "detector_ids",
    "extract_code_model",
    "load_baseline",
    "load_module",
    "load_paths",
    "run_interprocedural",
    "run_lint",
    "to_json",
    "to_text",
    "write_baseline",
]
