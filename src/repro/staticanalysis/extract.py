"""Lower real Python packages into the :class:`repro.smells.CodeModel`.

This is the front-end the smells analyzer was designed to accept one day
(see the note in :mod:`repro.smells.model` about lifting the paper's
Java-only limitation): it walks actual source, builds the same
package -> class -> method graph Designite extracts from Java, and hands
it to :func:`repro.smells.detectors.analyze` *unchanged* — so the Fig-8
detectors finally run over this repo's own code instead of only the
synthetic ONOS release models.

Mapping decisions (documented because every one shapes the metrics):

* a *package* is the dotted Python package (``repro.recovery``); modules
  directly under the top package map to that package itself;
* a *class* is a top-level ``class`` statement, fully qualified as
  ``<module>.<ClassName>``; nested classes fold into their host's LOC;
* *methods* are the defs in the class body; ``_underscore`` names are
  non-public; complexity is classic cyclomatic (1 + branch points);
* *type switches* count ``if`` tests probing concrete types
  (``isinstance``/``type() is``) — the Missing Hierarchy signal;
* *dependencies* are references from a class body to other extracted
  classes, resolved through each module's import table;
* *inherited members used* are methods the subtype overrides or calls
  via ``super()`` — what Broken Hierarchy checks for IS-A behaviour.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from repro.smells.model import ClassModel, CodeModel, Method
from repro.staticanalysis.loader import ModuleInfo, load_paths


def extract_code_model(
    paths: Iterable[str | Path] | str | Path,
    *,
    name: str = "repro",
    version: str = "worktree",
) -> CodeModel:
    """Extract a :class:`CodeModel` from real Python source under ``paths``."""
    if isinstance(paths, (str, Path)):
        paths = [paths]
    modules = load_paths(paths)

    # Pass 1: collect raw class records and a global name index.
    raw: list[_RawClass] = []
    by_qualified: dict[str, _RawClass] = {}
    #: simple class name -> fully qualified candidates (for same-module refs).
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                record = _RawClass(module, node)
                raw.append(record)
                by_qualified[record.fq_name] = record

    # Pass 2: resolve supertypes and dependency edges against the index.
    model = CodeModel(name=name, version=version)
    for record in raw:
        model.add_class(record.to_class_model(by_qualified))
    model.validate()
    return model


class _RawClass:
    """One extracted class before cross-class resolution."""

    def __init__(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.fq_name = f"{module.name}.{node.name}"
        self.package = module.package

    # -- resolution helpers ----------------------------------------------------
    def _resolve_class_ref(
        self, ref: ast.AST, index: dict[str, "_RawClass"]
    ) -> str | None:
        """Fully qualified extracted-class name for a reference, if any."""
        qualified = self.module.resolve(ref)
        if qualified is None:
            return None
        if qualified in index:
            return qualified
        # A bare name may be a sibling class in the same module.
        if "." not in qualified:
            local = f"{self.module.name}.{qualified}"
            if local in index:
                return local
        return None

    def to_class_model(self, index: dict[str, "_RawClass"]) -> ClassModel:
        node = self.node
        methods = [
            _extract_method(item)
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        supertype = None
        for base in node.bases:
            resolved = self._resolve_class_ref(base, index)
            if resolved is not None:
                supertype = resolved
                break

        dependencies = self._dependencies(index)
        inherited = self._inherited_members_used(supertype, index)
        loc = (node.end_lineno or node.lineno) - node.lineno + 1
        return ClassModel(
            name=self.fq_name,
            package=self.package,
            methods=methods,
            fields=self._field_count(),
            loc=loc,
            supertype=supertype,
            inherited_members_used=inherited,
            dependencies=dependencies,
        )

    def _dependencies(self, index: dict[str, "_RawClass"]) -> frozenset[str]:
        deps: set[str] = set()
        for ref in ast.walk(self.node):
            if not isinstance(ref, (ast.Name, ast.Attribute)):
                continue
            resolved = self._resolve_class_ref(ref, index)
            if resolved is not None and resolved != self.fq_name:
                deps.add(resolved)
        return frozenset(deps)

    def _inherited_members_used(
        self, supertype: str | None, index: dict[str, "_RawClass"]
    ) -> frozenset[str]:
        if supertype is None or supertype not in index:
            return frozenset()
        super_methods = {
            item.name
            for item in index[supertype].node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        used: set[str] = set()
        # Overrides: same method name defined here and on the supertype.
        for item in self.node.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in super_methods
            ):
                used.add(item.name)
        # Explicit super().method(...) calls.
        for ref in ast.walk(self.node):
            if (
                isinstance(ref, ast.Attribute)
                and isinstance(ref.value, ast.Call)
                and isinstance(ref.value.func, ast.Name)
                and ref.value.func.id == "super"
                and ref.attr in super_methods
            ):
                used.add(ref.attr)
        return frozenset(used)

    def _field_count(self) -> int:
        fields: set[str] = set()
        for item in self.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                fields.add(item.target.id)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        fields.add(target.id)
        for ref in ast.walk(self.node):
            if (
                isinstance(ref, (ast.Assign, ast.AnnAssign))
                and (targets := _assign_targets(ref))
            ):
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        fields.add(target.attr)
        return len(fields)


def _assign_targets(node: ast.Assign | ast.AnnAssign) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return node.targets
    return [node.target]


def _extract_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Method:
    return Method(
        name=node.name,
        complexity=_cyclomatic_complexity(node),
        is_public=not node.name.startswith("_"),
        type_switches=_count_type_switches(node),
    )


def _cyclomatic_complexity(func: ast.AST) -> int:
    """Classic cyclomatic complexity: 1 + decision points."""
    complexity = 1
    for node in ast.walk(func):
        if isinstance(
            node, (ast.If, ast.For, ast.While, ast.AsyncFor, ast.IfExp, ast.Assert)
        ):
            complexity += 1
        elif isinstance(node, ast.ExceptHandler):
            complexity += 1
        elif isinstance(node, ast.BoolOp):
            complexity += len(node.values) - 1
        elif isinstance(node, ast.comprehension):
            complexity += 1 + len(node.ifs)
        elif isinstance(node, ast.match_case):
            complexity += 1
    return complexity


def _count_type_switches(func: ast.AST) -> int:
    """``if`` tests that branch on an object's concrete type."""
    count = 0
    for node in ast.walk(func):
        if isinstance(node, (ast.If, ast.IfExp)) and _probes_type(node.test):
            count += 1
    return count


def _probes_type(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
        ):
            return True
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for operand in operands:
                if (
                    isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Name)
                    and operand.func.id == "type"
                ):
                    return True
    return False
