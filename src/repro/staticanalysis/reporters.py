"""Text and JSON rendering for sdnlint reports."""

from __future__ import annotations

import json

from repro.staticanalysis.model import AnalysisReport, Severity

_SEVERITY_TAG = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "info",
}


def to_text(report: AnalysisReport, *, show_suppressed: bool = False) -> str:
    """GCC-style one-line-per-finding rendering plus a summary block."""
    lines: list[str] = []
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        marker = " [baseline]" if finding.suppressed else ""
        lines.append(
            f"{finding.location}: {_SEVERITY_TAG[finding.severity]}: "
            f"{finding.message} "
            f"[{finding.detector}; root_cause={finding.root_cause.value}, "
            f"bug_type={finding.bug_type.value}]{marker}"
        )
    counts = report.counts_by_severity()
    lines.append(
        f"sdnlint: {report.modules_scanned} module(s) scanned, "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info, {len(report.suppressed)} baselined"
    )
    by_detector = report.counts_by_detector()
    if by_detector:
        parts = ", ".join(f"{det}={n}" for det, n in by_detector.items())
        lines.append(f"by detector: {parts}")
    by_cause = report.counts_by_root_cause()
    if by_cause:
        parts = ", ".join(f"{cause}={n}" for cause, n in by_cause.items())
        lines.append(f"by Table-I root cause: {parts}")
    return "\n".join(lines)


def to_json(report: AnalysisReport, *, indent: int = 2) -> str:
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)
