"""Error-handling detectors (paper: missing-logic root cause, Table I).

The study's largest controller-logic root-cause class is *missing logic*,
and a recurring concrete form is error paths that exist but do nothing:
exceptions caught too broadly, swallowed silently, or — worst for this
repo — masked around the fsync/rename durability sequences the crash-safe
runtime depends on.

* ``bare-except`` — ``except:`` / ``except BaseException:`` without
  re-raise also traps SystemExit and KeyboardInterrupt.
* ``overbroad-except`` — ``except Exception`` that never re-raises;
  legitimate fault boundaries should name what they absorb or carry an
  explicit suppression/baseline entry.
* ``swallowed-exception`` — a handler whose entire body is ``pass``.
* ``durability-except`` — a handler that masks failures of a try-block
  containing ``os.fsync``/``os.replace``: a swallowed durability error
  publishes state that may not survive a crash.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticanalysis.checks.base import (
    AnalysisContext,
    Detector,
    has_bare_raise,
)
from repro.staticanalysis.loader import ModuleInfo
from repro.staticanalysis.model import Finding, Severity
from repro.taxonomy import BugType, RootCause

_DURABILITY_CALLS = {"os.fsync", "os.replace", "os.rename", "os.fdatasync"}


def _handler_only_passes(handler: ast.ExceptHandler) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in handler.body
    )


class BareExceptDetector(Detector):
    id = "bare-except"
    family = "error_handling"
    description = "bare except / except BaseException without re-raise"
    severity = Severity.ERROR
    bug_type = BugType.DETERMINISTIC
    root_cause = RootCause.MISSING_LOGIC

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                message = (
                    "bare except traps SystemExit/KeyboardInterrupt; catch a "
                    "concrete exception type"
                )
            elif (
                module.resolve(node.type) == "BaseException"
                and not has_bare_raise(node.body)
            ):
                message = (
                    "except BaseException without re-raise traps interpreter "
                    "shutdown signals"
                )
            else:
                continue
            found = self.finding(module, ctx, node, message)
            if found is not None:
                yield found


class OverbroadExceptDetector(Detector):
    id = "overbroad-except"
    family = "error_handling"
    description = "except Exception that never re-raises"
    severity = Severity.WARNING
    bug_type = BugType.DETERMINISTIC
    root_cause = RootCause.MISSING_LOGIC

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            if module.resolve(node.type) != "Exception":
                continue
            if has_bare_raise(node.body):
                continue
            found = self.finding(
                module, ctx, node,
                "except Exception without re-raise absorbs unrelated "
                "failures; narrow the type or re-raise after recording",
            )
            if found is not None:
                yield found


class SwallowedExceptionDetector(Detector):
    id = "swallowed-exception"
    family = "error_handling"
    description = "exception handler whose whole body is pass"
    severity = Severity.WARNING
    bug_type = BugType.DETERMINISTIC
    root_cause = RootCause.MISSING_LOGIC

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                continue  # bare-except already files an error here
            if not _handler_only_passes(node):
                continue
            shown = module.resolve(node.type) or "…"
            found = self.finding(
                module, ctx, node,
                f"except {shown}: pass silently discards the failure; at "
                "minimum record it (symptom class: byzantine/no-alert)",
            )
            if found is not None:
                yield found


class DurabilityExceptDetector(Detector):
    id = "durability-except"
    family = "error_handling"
    description = "exceptions masked around fsync/replace durability sequences"
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.ECOSYSTEM_SYSTEM_CALL

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            if not self._try_body_is_durability(node, module):
                continue
            for handler in node.handlers:
                if has_bare_raise(handler.body):
                    continue
                found = self.finding(
                    module, ctx, handler,
                    "handler masks a failed fsync/replace: the publish is "
                    "not durable but callers proceed as if it were; re-raise",
                )
                if found is not None:
                    yield found

    @staticmethod
    def _try_body_is_durability(node: ast.Try, module: ModuleInfo) -> bool:
        for stmt in node.body:
            for child in ast.walk(stmt):
                if (
                    isinstance(child, ast.Call)
                    and module.resolve(child.func) in _DURABILITY_CALLS
                ):
                    return True
        return False
