"""Detector protocol and shared AST helpers for sdnlint checks."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.staticanalysis.loader import ModuleInfo, parent_of
from repro.staticanalysis.model import Finding, Severity
from repro.taxonomy import BugType, RootCause

#: Inline suppression marker: ``# sdnlint: disable=<id>[,<id>...]`` or
#: ``# sdnlint: disable-all`` on the flagged line.
_DISABLE_RE = re.compile(r"#\s*sdnlint:\s*disable(?:=([\w.,\- ]+)|-all)")


@dataclass
class AnalysisContext:
    """Cross-module state shared by every detector in one run."""

    modules: list[ModuleInfo]
    root: Path
    #: fully qualified function/method name -> (module, def node).
    functions: dict[str, tuple[ModuleInfo, ast.AST]] = field(default_factory=dict)
    #: fully qualified class name -> (module, ClassDef).
    classes: dict[str, tuple[ModuleInfo, ast.ClassDef]] = field(default_factory=dict)

    def index(self) -> None:
        """Build the cross-module symbol table (idempotent)."""
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.functions[f"{module.name}.{node.name}"] = (module, node)
                elif isinstance(node, ast.ClassDef):
                    self.classes[f"{module.name}.{node.name}"] = (module, node)
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            key = f"{module.name}.{node.name}.{item.name}"
                            self.functions[key] = (module, item)

    def resolve_function(
        self, module: ModuleInfo, node: ast.AST
    ) -> tuple[ModuleInfo, ast.AST] | None:
        """Resolve a Name/Attribute reference to a known def, across imports."""
        qualified = module.resolve(node)
        if qualified is None:
            return None
        hit = self.functions.get(qualified)
        if hit is not None:
            return hit
        # A bare local name: try this module's own namespace.
        if "." not in qualified:
            return self.functions.get(f"{module.name}.{qualified}")
        return None

    def relpath(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()


class Detector:
    """One bug-pattern check.

    Subclasses set the class attributes and implement :meth:`check_module`
    (per-file findings) and/or :meth:`finalize` (cross-module findings,
    e.g. the lock-order graph).
    """

    id: str = ""
    family: str = ""  # nondeterminism | error_handling | concurrency | resources
    description: str = ""
    severity: Severity = Severity.WARNING
    bug_type: BugType = BugType.DETERMINISTIC
    root_cause: RootCause = RootCause.MISSING_LOGIC

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        return iter(())

    def finalize(self, ctx: AnalysisContext) -> Iterator[Finding]:
        return iter(())

    # -- helpers ---------------------------------------------------------------
    def finding(
        self,
        module: ModuleInfo,
        ctx: AnalysisContext,
        node: ast.AST,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> Finding | None:
        """Build a finding at ``node``, honouring inline suppressions."""
        line = getattr(node, "lineno", 0)
        if _suppressed(module, line, self.id):
            return None
        return Finding(
            detector=self.id,
            message=message,
            path=ctx.relpath(module.path),
            line=line,
            col=getattr(node, "col_offset", 0),
            severity=severity or self.severity,
            bug_type=self.bug_type,
            root_cause=self.root_cause,
        )


def _suppressed(module: ModuleInfo, line: int, detector_id: str) -> bool:
    match = _DISABLE_RE.search(module.line_text(line))
    if match is None:
        return False
    ids = match.group(1)
    if ids is None:  # disable-all
        return True
    return detector_id in {part.strip() for part in ids.split(",")}


# -- AST utilities shared by several detectors --------------------------------

def enclosing_function(node: ast.AST) -> ast.AST | None:
    """Nearest enclosing FunctionDef/AsyncFunctionDef, or None at module level."""
    cursor = parent_of(node)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cursor
        cursor = parent_of(cursor)
    return None


def iter_own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes.

    A ``with lock:`` inside a nested ``def`` is *not* held by the outer
    function at runtime, so lexical analyses must stop at scope boundaries.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def has_bare_raise(body: list[ast.stmt]) -> bool:
    """True if the handler body re-raises (bare ``raise`` or raise-from)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


def is_set_expr(node: ast.AST, module: ModuleInfo) -> bool:
    """Syntactically set-typed: a set literal/comprehension or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return module.resolve(node.func) in ("set", "frozenset")
    return False


def set_typed_names(scope: ast.AST, module: ModuleInfo) -> set[str]:
    """Names bound to set-typed values in ``scope`` and never rebound otherwise.

    Conservative local inference: a name qualifies only when *every*
    assignment to it in the scope is set-typed (including ``x: set[...]``
    annotations), so reuse of a name for other types disqualifies it.
    """
    set_bound: set[str] = set()
    other_bound: set[str] = set()
    for node in iter_own_nodes(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                bucket = set_bound if is_set_expr(node.value, module) else other_bound
                bucket.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = node.annotation
            base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
            named = module.resolve(base)
            if named in ("set", "frozenset", "typing.Set", "typing.FrozenSet"):
                set_bound.add(node.target.id)
            elif node.value is not None and is_set_expr(node.value, module):
                set_bound.add(node.target.id)
            else:
                other_bound.add(node.target.id)
    return set_bound - other_bound
