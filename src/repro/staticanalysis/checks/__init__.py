"""sdnlint detector families, keyed to the paper's Table I root causes.

====================  ==============  ========  =================  =====================
detector id           family          severity  bug type           root cause
====================  ==============  ========  =================  =====================
unseeded-random       nondeterminism  error     non_deterministic  missing_logic
wall-clock            nondeterminism  error     non_deterministic  ecosystem_system_call
hash-seed             nondeterminism  error     non_deterministic  memory
unordered-iteration   nondeterminism  error     non_deterministic  memory
bare-except           error_handling  error     deterministic      missing_logic
overbroad-except      error_handling  warning   deterministic      missing_logic
swallowed-exception   error_handling  warning   deterministic      missing_logic
durability-except     error_handling  error     non_deterministic  ecosystem_system_call
lock-order-cycle      concurrency     error     non_deterministic  concurrency
unlocked-shared-write concurrency     warning   non_deterministic  concurrency
open-no-with          resources       warning   deterministic      ecosystem_system_call
replace-no-fsync      resources       error     non_deterministic  ecosystem_system_call
====================  ==============  ========  =================  =====================

(Hash-randomization effects are filed under the *memory* root cause: the
observable order is a function of object hashing / memory layout, the
closest Table I class for layout-dependent behaviour.)
"""

from __future__ import annotations

from repro.staticanalysis.checks.base import AnalysisContext, Detector
from repro.staticanalysis.checks.concurrency import (
    LockOrderCycleDetector,
    UnlockedSharedWriteDetector,
)
from repro.staticanalysis.checks.errorhandling import (
    BareExceptDetector,
    DurabilityExceptDetector,
    OverbroadExceptDetector,
    SwallowedExceptionDetector,
)
from repro.staticanalysis.checks.nondeterminism import (
    HashSeedDetector,
    UnorderedIterationDetector,
    UnseededRandomDetector,
    WallClockDetector,
)
from repro.staticanalysis.checks.resources import (
    OpenNoWithDetector,
    ReplaceNoFsyncDetector,
)

#: Canonical detector order (stable across runs and reports).
DETECTOR_TYPES: tuple[type[Detector], ...] = (
    UnseededRandomDetector,
    WallClockDetector,
    HashSeedDetector,
    UnorderedIterationDetector,
    BareExceptDetector,
    OverbroadExceptDetector,
    SwallowedExceptionDetector,
    DurabilityExceptDetector,
    LockOrderCycleDetector,
    UnlockedSharedWriteDetector,
    OpenNoWithDetector,
    ReplaceNoFsyncDetector,
)


def default_detectors() -> list[Detector]:
    """Fresh instances of every registered detector, in canonical order."""
    return [cls() for cls in DETECTOR_TYPES]


def detector_ids() -> list[str]:
    return [cls.id for cls in DETECTOR_TYPES]


__all__ = [
    "AnalysisContext",
    "Detector",
    "DETECTOR_TYPES",
    "default_detectors",
    "detector_ids",
]
