"""Nondeterminism detectors (paper: non-deterministic bugs, SS III).

The study found ~5% of critical SDN bugs non-deterministic, and those the
hardest to reproduce and fix.  In this repo the whole experimental
contract is "same seed, same bytes", so *any* dependence on process-global
RNG state, wall clocks, or hash randomization is a reproducibility bug:

* ``unseeded-random`` — draws from the process-global ``random`` /
  ``numpy.random`` state, or constructs an RNG with no seed.
* ``wall-clock`` — reads real time (``time.time``, ``datetime.now``, ...)
  where the simulated clock (:mod:`repro.sdnsim.clock`) should be used.
* ``hash-seed`` — feeds builtin ``hash()`` (salted per process by
  ``PYTHONHASHSEED``) into an RNG seed.
* ``unordered-iteration`` — materializes hash-ordered ``set`` iteration
  into ordered output (lists, joins, digests) — the exact leak class that
  once made checkpoint digests differ across interpreters here.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticanalysis.checks.base import (
    AnalysisContext,
    Detector,
    is_set_expr,
    iter_own_nodes,
    set_typed_names,
)
from repro.staticanalysis.loader import ModuleInfo
from repro.staticanalysis.model import Finding, Severity
from repro.taxonomy import BugType, RootCause

#: The process-global ``random`` module API (drawing functions).
_GLOBAL_RANDOM = {
    "random.random", "random.randint", "random.randrange", "random.uniform",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.gauss", "random.normalvariate", "random.lognormvariate",
    "random.expovariate", "random.betavariate", "random.gammavariate",
    "random.triangular", "random.vonmisesvariate", "random.paretovariate",
    "random.weibullvariate", "random.getrandbits", "random.randbytes",
}

#: Legacy numpy global-state API.
_GLOBAL_NUMPY = {
    "numpy.random.rand", "numpy.random.randn", "numpy.random.randint",
    "numpy.random.random", "numpy.random.random_sample", "numpy.random.choice",
    "numpy.random.shuffle", "numpy.random.permutation", "numpy.random.normal",
    "numpy.random.uniform", "numpy.random.standard_normal", "numpy.random.binomial",
    "numpy.random.poisson", "numpy.random.exponential",
}

#: Constructors that must receive an explicit seed.
_RNG_CONSTRUCTORS = {
    "random.Random", "random.SystemRandom", "numpy.random.default_rng",
    "numpy.random.RandomState", "numpy.random.Generator",
}

#: Global seeding: deterministic if called early, but mutates state shared
#: across every caller — flagged as a warning, not an error.
_GLOBAL_SEEDERS = {"random.seed", "numpy.random.seed"}

_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.monotonic": "time.monotonic()",
    "time.monotonic_ns": "time.monotonic_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}

#: Order-sensitive single-argument consumers of an iterable.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "next"}

#: Loop-body mutations that materialize iteration order.
_ACCUMULATORS = {"append", "extend", "insert", "write", "writelines"}


class UnseededRandomDetector(Detector):
    id = "unseeded-random"
    family = "nondeterminism"
    description = (
        "process-global or unseeded RNG use; derive a seeded stream instead"
    )
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.MISSING_LOGIC

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.resolve(node.func)
            if qualified is None:
                continue
            if qualified in _GLOBAL_RANDOM or qualified in _GLOBAL_NUMPY:
                found = self.finding(
                    module, ctx, node,
                    f"{qualified}() draws from the process-global RNG; "
                    "use a seeded random.Random/default_rng stream",
                )
            elif qualified in _RNG_CONSTRUCTORS and not node.args:
                found = self.finding(
                    module, ctx, node,
                    f"{qualified}() constructed without a seed falls back to "
                    "OS entropy; pass an explicit seed",
                )
            elif qualified in _GLOBAL_SEEDERS:
                found = self.finding(
                    module, ctx, node,
                    f"{qualified}() mutates RNG state shared by every caller; "
                    "prefer a local seeded generator",
                    severity=Severity.WARNING,
                )
            else:
                continue
            if found is not None:
                yield found


class WallClockDetector(Detector):
    id = "wall-clock"
    family = "nondeterminism"
    description = "real-time reads in simulated/pipeline code paths"
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.ECOSYSTEM_SYSTEM_CALL

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.resolve(node.func)
            label = _WALL_CLOCK.get(qualified or "")
            if label is None:
                continue
            found = self.finding(
                module, ctx, node,
                f"{label} reads the wall clock; results depend on run time — "
                "use the simulated clock or take the timestamp as input",
            )
            if found is not None:
                yield found


class HashSeedDetector(Detector):
    id = "hash-seed"
    family = "nondeterminism"
    description = "builtin hash() (PYTHONHASHSEED-salted) feeding an RNG seed"
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.MEMORY

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            hash_call = None
            if isinstance(node, ast.Call):
                qualified = module.resolve(node.func)
                if qualified in _RNG_CONSTRUCTORS or qualified in _GLOBAL_SEEDERS:
                    hash_call = _find_hash_call(node.args, module)
                else:
                    for keyword in node.keywords:
                        if keyword.arg == "seed":
                            hash_call = _find_hash_call([keyword.value], module)
                            break
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and "seed" in t.id.lower()
                    for t in node.targets
                ):
                    hash_call = _find_hash_call([node.value], module)
            if hash_call is None:
                continue
            found = self.finding(
                module, ctx, hash_call,
                "hash() is salted per process by PYTHONHASHSEED; seed from "
                'stable bytes instead (e.g. random.Random(f"{seed}:{name}"))',
            )
            if found is not None:
                yield found


def _find_hash_call(exprs: list[ast.expr], module: ModuleInfo) -> ast.Call | None:
    for expr in exprs:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and module.resolve(node.func) == "hash"
                and node.args
            ):
                return node
    return None


class UnorderedIterationDetector(Detector):
    id = "unordered-iteration"
    family = "nondeterminism"
    description = "hash-ordered set iteration materialized into ordered output"
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.MEMORY

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        # Per-scope set-name inference: module scope plus each function.
        scopes: list[ast.AST] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            set_names = set_typed_names(scope, module)
            for node in iter_own_nodes(scope):
                finding = self._check_node(node, set_names, module, ctx)
                if finding is not None:
                    yield finding

    def _check_node(
        self,
        node: ast.AST,
        set_names: set[str],
        module: ModuleInfo,
        ctx: AnalysisContext,
    ) -> Finding | None:
        def is_set(expr: ast.AST) -> bool:
            if is_set_expr(expr, module):
                return True
            return isinstance(expr, ast.Name) and expr.id in set_names

        if isinstance(node, ast.Call):
            qualified = module.resolve(node.func)
            # list(s) / tuple(s) / enumerate(s) over a set.
            if (
                qualified in _ORDER_SENSITIVE_CALLS
                and len(node.args) >= 1
                and is_set(node.args[0])
            ):
                return self.finding(
                    module, ctx, node,
                    f"{qualified}() over a set materializes hash order "
                    "(PYTHONHASHSEED-dependent); wrap in sorted()",
                )
            # "sep".join(s) over a set.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and is_set(node.args[0])
            ):
                return self.finding(
                    module, ctx, node,
                    "str.join over a set emits elements in hash order; "
                    "wrap in sorted()",
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)) and is_set(node.iter):
            if _loop_accumulates(node):
                return self.finding(
                    module, ctx, node,
                    "iterating a set while appending/yielding leaks hash "
                    "order into ordered output; iterate sorted(...) instead",
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for comp in node.generators:
                if is_set(comp.iter):
                    return self.finding(
                        module, ctx, node,
                        "comprehension over a set produces hash-ordered "
                        "elements; iterate sorted(...) instead",
                    )
        return None


def _loop_accumulates(loop: ast.For | ast.AsyncFor) -> bool:
    """Does the loop body make iteration order observable?"""
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ACCUMULATORS
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "update"
                and _is_digest_receiver(node.func.value)
            ):
                return True
    return False


def _is_digest_receiver(node: ast.AST) -> bool:
    name = ""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    name = name.lower()
    return any(tag in name for tag in ("digest", "hash", "sha", "hmac"))
