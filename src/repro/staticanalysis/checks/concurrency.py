"""Concurrency detectors (paper: concurrency root cause, Table I).

The study files concurrency under controller-logic root causes and notes
its bugs are disproportionately non-deterministic — which is why they are
the right target for *static* analysis: the schedule that triggers them
may never appear in tests.

* ``lock-order-cycle`` — builds a lock-order graph from lexically nested
  ``with <lock>:`` acquisitions across every scanned module and reports
  each strongly connected component (a potential ABBA deadlock).
* ``unlocked-shared-write`` — a function submitted to a ``WorkPool`` /
  executor / ``threading.Thread`` that mutates module-global or
  ``global``-declared state outside any ``with <lock>:`` block.  WorkPool
  tasks are contractually pure (see :mod:`repro.parallel.executor`); a
  shared-state write is how that contract silently regresses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.staticanalysis.checks.base import AnalysisContext, Detector
from repro.staticanalysis.loader import ModuleInfo
from repro.staticanalysis.model import Finding, Severity
from repro.taxonomy import BugType, RootCause

_LOCK_CONSTRUCTORS = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
}

_LOCKISH_SEGMENTS = ("lock", "mutex", "semaphore", "cond")

_POOL_CONSTRUCTORS = (
    "WorkPool", "ThreadPoolExecutor", "ProcessPoolExecutor", "Pool",
)

_SUBMIT_METHODS = {"map", "starmap", "submit", "apply_async", "imap"}

_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft",
}


def _segment_is_lockish(name: str) -> bool:
    lowered = name.lower()
    return any(tag in lowered for tag in _LOCKISH_SEGMENTS)


@dataclass
class _Acquisition:
    """One ``with <lock>`` site."""

    identity: str  # canonical lock identity, e.g. "mod.Class._lock"
    module: ModuleInfo
    node: ast.AST


@dataclass
class _LockNames:
    """Per-module registry of names known to be bound to lock objects."""

    module_level: set[str] = field(default_factory=set)
    #: class name -> attribute names assigned a Lock() in any method.
    class_attrs: dict[str, set[str]] = field(default_factory=dict)


def _collect_lock_names(module: ModuleInfo) -> _LockNames:
    names = _LockNames()
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and _is_lock_ctor(node.value, module):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.module_level.add(target.id)
        elif isinstance(node, ast.ClassDef):
            attrs: set[str] = set()
            for item in ast.walk(node):
                if isinstance(item, ast.Assign) and _is_lock_ctor(item.value, module):
                    for target in item.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.add(target.attr)
                        elif isinstance(target, ast.Name):
                            attrs.add(target.id)
            if attrs:
                names.class_attrs[node.name] = attrs
    return names


def _is_lock_ctor(value: ast.AST, module: ModuleInfo) -> bool:
    return (
        isinstance(value, ast.Call)
        and module.resolve(value.func) in _LOCK_CONSTRUCTORS
    )


def _lock_identity(
    expr: ast.AST,
    module: ModuleInfo,
    lock_names: _LockNames,
    class_name: str | None,
) -> str | None:
    """Canonical identity if ``expr`` looks like a lock acquisition."""
    if isinstance(expr, ast.Name):
        known = expr.id in lock_names.module_level
        if known or _segment_is_lockish(expr.id):
            resolved = module.resolve(expr)
            if resolved and "." in resolved:  # imported lock: fq already
                return resolved
            return f"{module.name}.{expr.id}"
        return None
    if isinstance(expr, ast.Attribute):
        base = expr.value
        if isinstance(base, ast.Name) and base.id == "self" and class_name:
            attrs = lock_names.class_attrs.get(class_name, set())
            if expr.attr in attrs or _segment_is_lockish(expr.attr):
                return f"{module.name}.{class_name}.{expr.attr}"
            return None
        if _segment_is_lockish(expr.attr):
            resolved = module.resolve(expr)
            return resolved or f"{module.name}.<expr>.{expr.attr}"
    return None


class LockOrderCycleDetector(Detector):
    id = "lock-order-cycle"
    family = "concurrency"
    description = "cyclic lock-acquisition order across with-blocks (ABBA)"
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.CONCURRENCY

    def __init__(self) -> None:
        #: (outer, inner) -> first acquisition site for the edge.
        self._edges: dict[tuple[str, str], _Acquisition] = {}

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        lock_names = _collect_lock_names(module)
        self._walk(module.tree.body, module, lock_names, None, [])
        return iter(())

    def _walk(
        self,
        body: list[ast.stmt],
        module: ModuleInfo,
        lock_names: _LockNames,
        class_name: str | None,
        held: list[str],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._walk(stmt.body, module, lock_names, stmt.name, [])
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def does not run under the enclosing with.
                self._walk(stmt.body, module, lock_names, class_name, [])
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[str] = []
                for item in stmt.items:
                    identity = _lock_identity(
                        item.context_expr, module, lock_names, class_name
                    )
                    if identity is None:
                        continue
                    for outer in held + acquired:
                        if outer != identity:
                            edge = (outer, identity)
                            self._edges.setdefault(
                                edge, _Acquisition(identity, module, stmt)
                            )
                    acquired.append(identity)
                self._walk(
                    stmt.body, module, lock_names, class_name, held + acquired
                )
            else:
                for child_body in _stmt_bodies(stmt):
                    self._walk(child_body, module, lock_names, class_name, held)

    def finalize(self, ctx: AnalysisContext) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {}
        for outer, inner in self._edges:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())
        for cycle in _find_cycles(graph):
            # Anchor at the first edge of the cycle, in deterministic order.
            first_edge = (cycle[0], cycle[1 % len(cycle)])
            site = self._edges.get(first_edge)
            if site is None:  # pragma: no cover - defensive
                continue
            path = " -> ".join(cycle + [cycle[0]])
            found = self.finding(
                site.module, ctx, site.node,
                f"lock-order cycle {path}: these locks are acquired in "
                "conflicting orders; impose a global acquisition order",
            )
            if found is not None:
                yield found
        self._edges = {}

    def describe_edges(self) -> dict[tuple[str, str], str]:
        """Expose the current edge set (used by tests and the bench)."""
        return {
            edge: f"{acq.module.name}:{getattr(acq.node, 'lineno', 0)}"
            for edge, acq in self._edges.items()
        }


def _stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        value = getattr(stmt, attr, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    if isinstance(stmt, ast.Try):
        for handler in stmt.handlers:
            bodies.append(handler.body)
    return bodies


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components with >1 node (or a self-loop),
    each returned as a deterministically ordered node list."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(graph.get(node, ())):
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component: list[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1 or node in graph.get(node, ()):
                sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sorted(sccs)


class UnlockedSharedWriteDetector(Detector):
    id = "unlocked-shared-write"
    family = "concurrency"
    description = "pool/thread task mutating shared state without a lock"
    severity = Severity.WARNING
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.CONCURRENCY

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        pool_names = self._pool_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            task_ref = self._task_reference(node, module, pool_names)
            if task_ref is None:
                continue
            resolved = ctx.resolve_function(module, task_ref)
            if resolved is None:
                continue
            task_module, task_def = resolved
            yield from self._check_task(task_module, task_def, ctx)

    @staticmethod
    def _pool_names(module: ModuleInfo) -> set[str]:
        """Names assigned from a pool/executor constructor in this module."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            value = node.value
            if (
                isinstance(value, ast.Call)
                and (qual := module.resolve(value.func)) is not None
                and qual.split(".")[-1] in _POOL_CONSTRUCTORS
            ):
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    names.add(target.attr)
        return names

    def _task_reference(
        self, call: ast.Call, module: ModuleInfo, pool_names: set[str]
    ) -> ast.AST | None:
        """The function expression submitted as a task, if this is a submit."""
        func = call.func
        # threading.Thread(target=fn) / multiprocessing.Process(target=fn)
        if module.resolve(func) in ("threading.Thread", "multiprocessing.Process"):
            for keyword in call.keywords:
                if keyword.arg == "target":
                    return keyword.value
            return None
        if not (isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS):
            return None
        receiver = func.value
        is_pool = False
        if isinstance(receiver, ast.Call):
            qual = module.resolve(receiver.func)
            is_pool = (
                qual is not None and qual.split(".")[-1] in _POOL_CONSTRUCTORS
            )
        elif isinstance(receiver, ast.Name):
            is_pool = receiver.id in pool_names or "pool" in receiver.id.lower()
        elif isinstance(receiver, ast.Attribute):
            is_pool = (
                receiver.attr in pool_names or "pool" in receiver.attr.lower()
            )
        if not is_pool or not call.args:
            return None
        return call.args[0]

    def _check_task(
        self, module: ModuleInfo, task: ast.AST, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        module_globals = _module_level_names(module)
        declared_global: set[str] = set()
        for node in ast.walk(task):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        lock_names = _collect_lock_names(module)
        yield from self._scan_body(
            getattr(task, "body", []), module, ctx,
            module_globals | declared_global, declared_global, lock_names,
            under_lock=False,
        )

    def _scan_body(
        self,
        body: list[ast.stmt],
        module: ModuleInfo,
        ctx: AnalysisContext,
        shared: set[str],
        rebindable: set[str],
        lock_names: _LockNames,
        *,
        under_lock: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                locked = under_lock or any(
                    _lock_identity(item.context_expr, module, lock_names, None)
                    for item in stmt.items
                )
                yield from self._scan_body(
                    stmt.body, module, ctx, shared, rebindable, lock_names,
                    under_lock=locked,
                )
                continue
            if not under_lock:
                mutated = _shared_mutation(stmt, shared, rebindable)
                if mutated is not None:
                    found = self.finding(
                        module, ctx, stmt,
                        f"task mutates shared state {mutated!r} without "
                        "holding a lock; WorkPool tasks must be pure "
                        "functions of their arguments",
                    )
                    if found is not None:
                        yield found
            for child_body in _stmt_bodies(stmt):
                yield from self._scan_body(
                    child_body, module, ctx, shared, rebindable, lock_names,
                    under_lock=under_lock,
                )


def _module_level_names(module: ModuleInfo) -> set[str]:
    """Top-level names bound to mutable-looking containers."""
    names: set[str] = set()
    for node in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _shared_mutation(
    stmt: ast.stmt, shared: set[str], rebindable: set[str]
) -> str | None:
    """Name of the shared object this statement mutates, if any.

    In-place mutations (method calls, subscript stores) count against any
    module-level name; *rebinding* a bare name only counts when it was
    declared ``global`` — otherwise the assignment creates a local.
    """
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                node.func.attr in _MUTATORS
                and isinstance(receiver, ast.Name)
                and receiver.id in shared
            ):
                return receiver.id
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    base = target.value
                    if isinstance(base, ast.Name) and base.id in shared:
                        return base.id
                elif isinstance(target, ast.Name) and target.id in rebindable:
                    return target.id
    return None
