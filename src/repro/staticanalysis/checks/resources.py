"""Resource-handling detectors (paper: ecosystem/system-call interactions).

The study's non-controller-logic root causes are dominated by ecosystem
interactions — and file descriptors plus rename-based publication are the
two such interactions this repo leans on hardest (journal, artifact
cache, corpus shards).

* ``open-no-with`` — an ``open()`` whose handle is neither managed by a
  ``with`` block, closed in the same scope, nor owned by an object
  (``self.handle = open(...)``): a leak under any exception path.
* ``replace-no-fsync`` — a function that writes data and publishes it
  with ``os.replace`` but never calls ``os.fsync``: after a crash the
  rename may survive while the data does not, exactly the torn-write
  class the recovery harness injects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticanalysis.checks.base import (
    AnalysisContext,
    Detector,
    enclosing_function,
    iter_own_nodes,
)
from repro.staticanalysis.loader import ModuleInfo, parent_of
from repro.staticanalysis.model import Finding, Severity
from repro.taxonomy import BugType, RootCause

_WRITE_MODES = ("w", "a", "x", "+")


class OpenNoWithDetector(Detector):
    id = "open-no-with"
    family = "resources"
    description = "open() not guarded by with/close (leaks on error paths)"
    severity = Severity.WARNING
    bug_type = BugType.DETERMINISTIC
    root_cause = RootCause.ECOSYSTEM_SYSTEM_CALL

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_open_call(node, module):
                continue
            if self._is_managed(node, module):
                continue
            found = self.finding(
                module, ctx, node,
                "open() without a with-block or same-scope close(); the "
                "descriptor leaks on any exception path",
            )
            if found is not None:
                yield found

    @staticmethod
    def _is_managed(call: ast.Call, module: ModuleInfo) -> bool:
        parent = parent_of(call)
        # with open(...) as f:  /  with closing(open(...)):
        if isinstance(parent, ast.withitem):
            return True
        if (
            isinstance(parent, ast.Call)
            and module.resolve(parent.func)
            in ("contextlib.closing", "contextlib.ExitStack.enter_context")
        ):
            return True
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            # self.handle = open(...): ownership moves to the object, whose
            # close()/__exit__ is that type's concern, not this scope's.
            if isinstance(target, ast.Attribute):
                return True
            if isinstance(target, ast.Name):
                scope = enclosing_function(parent) or module.tree
                return _scope_closes_or_returns(scope, target.id)
        return False


def _is_open_call(call: ast.Call, module: ModuleInfo) -> bool:
    qualified = module.resolve(call.func)
    if qualified == "open" or qualified == "io.open":
        return True
    if not (isinstance(call.func, ast.Attribute) and call.func.attr == "open"):
        return False
    # ``path.open(...)`` on a pathlib-style object counts; ``mod.open(...)``
    # on some other imported module (webbrowser, gzip, ...) does not.
    root = (qualified or "").split(".")[0]
    return root not in module.imports


def _scope_closes_or_returns(scope: ast.AST, name: str) -> bool:
    for node in iter_own_nodes(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "close"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            return True  # ownership transferred to the caller
    return False


class ReplaceNoFsyncDetector(Detector):
    id = "replace-no-fsync"
    family = "resources"
    description = "write-tmp-rename publish without fsync before os.replace"
    severity = Severity.ERROR
    bug_type = BugType.NON_DETERMINISTIC
    root_cause = RootCause.ECOSYSTEM_SYSTEM_CALL

    def check_module(
        self, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            yield from self._check_function(func, module, ctx)

    def _check_function(
        self, func: ast.AST, module: ModuleInfo, ctx: AnalysisContext
    ) -> Iterator[Finding]:
        replaces: list[ast.Call] = []
        has_fsync = False
        first_write_line: int | None = None
        for node in iter_own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.resolve(node.func)
            if qualified in ("os.replace", "os.rename"):
                replaces.append(node)
            elif qualified in ("os.fsync", "os.fdatasync"):
                has_fsync = True
            elif _is_write_evidence(node, module, qualified):
                line = getattr(node, "lineno", 0)
                if first_write_line is None or line < first_write_line:
                    first_write_line = line
        if not replaces or has_fsync or first_write_line is None:
            return
        # Only a write that happens *before* the rename can be the renamed
        # content; trailing breadcrumb writes don't make the publish torn.
        replaces = [
            call for call in replaces
            if getattr(call, "lineno", 0) > first_write_line
        ]
        for call in replaces:
            verb = module.resolve(call.func)
            found = self.finding(
                module, ctx, call,
                f"{verb} publishes freshly written data with no fsync: a "
                "crash can keep the rename but lose the bytes; fsync the "
                "file (and ideally its directory) first",
            )
            if found is not None:
                yield found


def _is_write_evidence(
    call: ast.Call, module: ModuleInfo, qualified: str | None
) -> bool:
    """Does this call write file contents (open-for-write or .write*)?"""
    if _is_open_call(call, module):
        mode = None
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            mode = call.args[1].value
        elif len(call.args) >= 1 and isinstance(call.func, ast.Attribute):
            # path.open("w"): mode is the first argument.
            if isinstance(call.args[0], ast.Constant):
                mode = call.args[0].value
        for keyword in call.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                mode = keyword.value.value
        return isinstance(mode, str) and any(c in mode for c in _WRITE_MODES)
    if isinstance(call.func, ast.Attribute):
        return call.func.attr in ("write", "writelines", "write_text", "write_bytes")
    return False
