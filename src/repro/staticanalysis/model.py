"""Finding model for sdnlint: severity, taxonomy tags, and the report.

Every finding carries two tags from the paper's Table I taxonomy — the
:class:`~repro.taxonomy.BugType` the latent bug would have (deterministic
vs non-deterministic) and the :class:`~repro.taxonomy.RootCause` class it
would be filed under — so a lint run reads as a *predicted bug census* of
the scanned source, in the study's own vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.taxonomy import BugType, RootCause


class Severity(enum.Enum):
    """Finding severity, ordered: info < warning < error."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __ge__(self, other: "Severity") -> bool:  # type: ignore[override]
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank >= other.rank


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Finding:
    """One bug-pattern match at a source location."""

    detector: str  # detector id, e.g. "unseeded-random"
    message: str
    path: str  # repo-relative posix path where possible
    line: int
    col: int
    severity: Severity
    bug_type: BugType
    root_cause: RootCause
    #: True when the finding matched the committed baseline (known debt).
    suppressed: bool = False

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def suppress(self) -> "Finding":
        return replace(self, suppressed=True)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.detector, self.message)

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "bug_type": self.bug_type.value,
            "root_cause": self.root_cause.value,
            "suppressed": self.suppressed,
        }


@dataclass
class AnalysisReport:
    """All findings from one analysis run, in stable (path, line) order."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    modules_scanned: int = 0

    @property
    def active(self) -> list[Finding]:
        """Findings not suppressed by the baseline."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    def at_least(self, severity: Severity) -> list[Finding]:
        """Active findings at or above ``severity``."""
        return [f for f in self.active if f.severity >= severity]

    def counts_by_severity(self) -> dict[str, int]:
        counts = {sev.value: 0 for sev in Severity}
        for finding in self.active:
            counts[finding.severity.value] += 1
        return counts

    def counts_by_detector(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.active:
            counts[finding.detector] = counts.get(finding.detector, 0) + 1
        return dict(sorted(counts.items()))

    def counts_by_root_cause(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.active:
            key = finding.root_cause.value
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "modules_scanned": self.modules_scanned,
            "counts": {
                "severity": self.counts_by_severity(),
                "detector": self.counts_by_detector(),
                "root_cause": self.counts_by_root_cause(),
                "suppressed": len(self.suppressed),
            },
            "findings": [f.to_dict() for f in self.findings],
        }
