"""Seeded history generators for FAUCET and ONOS (substitute for git).

The FAUCET generator emits commits whose subsystem mix matches Fig 11
(configuration 38%, network functionality 35%, external abstraction 27%)
and a requirements-file history whose per-dependency version churn matches
Table IV.  The ONOS helper returns the Fig 10 commits-per-release series
(burst early, declining after 1.14).
"""

from __future__ import annotations

import random
from datetime import datetime, timedelta

from repro.gitmodel.deps import RequirementsFile
from repro.gitmodel.models import Commit, CommitHistory, Subsystem
from repro.paperdata import (
    FAUCET_COMMIT_SHARE,
    FAUCET_DEPENDENCY_BURNDOWN,
    ONOS_RELEASES,
)

#: Representative file paths per subsystem, matched to the burn classifier.
_SUBSYSTEM_PATHS: dict[Subsystem, tuple[str, ...]] = {
    Subsystem.CONFIGURATION: (
        "faucet/config_parser.py",
        "faucet/config_parser_util.py",
        "faucet/conf.py",
        "etc/faucet/faucet.yaml",
    ),
    Subsystem.NETWORK_FUNCTIONALITY: (
        "faucet/valve.py",
        "faucet/valve_of.py",
        "faucet/vlan.py",
        "faucet/port.py",
        "faucet/acl.py",
        "faucet/router.py",
        "faucet/stack.py",
    ),
    Subsystem.EXTERNAL_ABSTRACTION: (
        "faucet/gauge.py",
        "faucet/gauge_influx.py",
        "faucet/prom_client.py",
        "requirements.txt",
    ),
}

_MESSAGES: dict[Subsystem, tuple[str, ...]] = {
    Subsystem.CONFIGURATION: (
        "Validate interface ranges in config parser",
        "Support reload of vlan options from yaml",
        "Reject unknown keys in dp config",
    ),
    Subsystem.NETWORK_FUNCTIONALITY: (
        "Fix flow ordering for mirrored ports",
        "Add IPv6 routing support to valve",
        "Handle port down events in stack topology",
    ),
    Subsystem.EXTERNAL_ABSTRACTION: (
        "Pin ryu version and adapt to new OFPMatch API",
        "Handle influxdb write type errors in gauge",
        "Update prometheus client usage",
    ),
}


class FaucetHistoryGenerator:
    """Generate FAUCET's commit history and requirements snapshots."""

    def __init__(
        self,
        *,
        n_commits: int = 3000,
        start: datetime = datetime(2016, 1, 4),
        end: datetime = datetime(2020, 4, 1),
        seed: int = 11,
    ) -> None:
        if n_commits < 1:
            raise ValueError("n_commits must be >= 1")
        if end <= start:
            raise ValueError("end must be after start")
        self.n_commits = n_commits
        self.start = start
        self.end = end
        self.seed = seed

    def generate(self) -> CommitHistory:
        """Commit stream with the Fig 11 subsystem mix."""
        rng = random.Random(self.seed)
        span = (self.end - self.start).total_seconds()
        weights = {
            Subsystem.CONFIGURATION: FAUCET_COMMIT_SHARE["configuration"],
            Subsystem.NETWORK_FUNCTIONALITY: FAUCET_COMMIT_SHARE[
                "network_functionality"
            ],
            Subsystem.EXTERNAL_ABSTRACTION: FAUCET_COMMIT_SHARE[
                "external_abstraction"
            ],
        }
        subsystems = list(weights)
        probabilities = [weights[s] for s in subsystems]
        commits = []
        for i in range(self.n_commits):
            subsystem = rng.choices(subsystems, probabilities)[0]
            paths = _SUBSYSTEM_PATHS[subsystem]
            n_files = rng.randint(1, min(3, len(paths)))
            commits.append(
                Commit(
                    sha=f"{rng.getrandbits(160):040x}",
                    author=rng.choice(("anarkiwi", "gizmoguy", "cglewis", "trungdtbk")),
                    date=self.start + timedelta(seconds=rng.random() * span),
                    message=rng.choice(_MESSAGES[subsystem]),
                    files=tuple(rng.sample(paths, n_files)),
                    insertions=rng.randint(1, 300),
                    deletions=rng.randint(0, 120),
                )
            )
        return CommitHistory(commits)

    def generate_requirements_history(self) -> list[RequirementsFile]:
        """Requirement snapshots whose churn matches Table IV.

        Each dependency gets exactly its Table IV number of version bumps,
        spread across the history at random (seeded) dates.
        """
        rng = random.Random(self.seed + 1)
        span_days = (self.end - self.start).days
        # Schedule: per dependency, the day offsets of its version bumps.
        bump_days: dict[str, list[int]] = {}
        for package, (changes, _desc) in FAUCET_DEPENDENCY_BURNDOWN.items():
            bump_days[package] = sorted(rng.sample(range(1, span_days), changes))
        all_days = sorted({0, *[d for days in bump_days.values() for d in days]})
        versions: dict[str, int] = {pkg: 0 for pkg in bump_days}
        snapshots: list[RequirementsFile] = []
        for day in all_days:
            for package, days in bump_days.items():
                if day in days:
                    versions[package] += 1
            snapshots.append(
                RequirementsFile(
                    date=self.start + timedelta(days=day),
                    pins={
                        pkg: f"{1 + v // 10}.{v % 10}.0" for pkg, v in versions.items()
                    },
                )
            )
        return snapshots


#: Fig 10: ONOS commits per release — a burst while prototyping (1.12-1.14),
#: then a steady decline.
_ONOS_COMMITS = (4200, 4800, 5100, 4300, 3600, 3100, 2800, 2600)


def onos_commits_per_release() -> dict[str, int]:
    """Commits per ONOS release (Fig 10 series)."""
    return dict(zip(ONOS_RELEASES, _ONOS_COMMITS))
