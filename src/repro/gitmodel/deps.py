"""Dependency burn-down (Table IV): version churn in requirement files."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Iterable, Mapping

from repro.errors import ReproError


@dataclass(frozen=True)
class RequirementsFile:
    """A snapshot of pinned dependencies at one commit."""

    date: datetime
    pins: Mapping[str, str]  # package -> version string

    def version_of(self, package: str) -> str | None:
        return self.pins.get(package)


class DependencyBurndown:
    """Count version changes per dependency across requirement snapshots.

    A "version change" is any commit where a package's pinned version
    differs from the previous snapshot (additions don't count; removals
    don't count; re-additions at a new version do).
    """

    def __init__(self, snapshots: Iterable[RequirementsFile]) -> None:
        self.snapshots = sorted(snapshots, key=lambda s: s.date)
        if not self.snapshots:
            raise ReproError("at least one requirements snapshot is required")

    def version_changes(self) -> dict[str, int]:
        """``{package: number_of_version_changes}`` across the history."""
        changes: dict[str, int] = {}
        previous: dict[str, str] = dict(self.snapshots[0].pins)
        for pkg in previous:
            changes.setdefault(pkg, 0)
        for snapshot in self.snapshots[1:]:
            for package, version in snapshot.pins.items():
                changes.setdefault(package, 0)
                old = previous.get(package)
                if old is not None and old != version:
                    changes[package] += 1
            previous = dict(snapshot.pins)
        return changes

    def ranked(self) -> list[tuple[str, int]]:
        """Table IV ordering: most-churned dependency first."""
        return sorted(self.version_changes().items(), key=lambda kv: (-kv[1], kv[0]))

    def release_cycle_days(self, package: str) -> float | None:
        """Mean days between version changes of ``package`` (None if <2)."""
        change_dates: list[datetime] = []
        previous_version: str | None = None
        for snapshot in self.snapshots:
            version = snapshot.version_of(package)
            if (
                version is not None
                and previous_version is not None
                and version != previous_version
            ):
                change_dates.append(snapshot.date)
            if version is not None:
                previous_version = version
        if len(change_dates) < 2:
            return None
        spans = [
            (b - a).total_seconds() / 86400.0
            for a, b in zip(change_dates, change_dates[1:])
        ]
        return sum(spans) / len(spans)
