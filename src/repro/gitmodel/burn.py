"""Burn analysis (SS VI-B, Fig 11): classify commits by functional subsystem.

The paper applies this to FAUCET, whose compact modular layout makes commits
attributable to one of three subsystems: configuration handling, network
functionality, and external abstraction.  Classification is by touched-path
prefix with a message-keyword fallback.
"""

from __future__ import annotations

from repro.gitmodel.models import Commit, CommitHistory, Subsystem

#: Path prefixes per subsystem (FAUCET-like layout).
_PATH_RULES: dict[Subsystem, tuple[str, ...]] = {
    Subsystem.CONFIGURATION: (
        "faucet/config",
        "faucet/conf",
        "etc/",
        "faucet/watcher_conf",
    ),
    Subsystem.NETWORK_FUNCTIONALITY: (
        "faucet/valve",
        "faucet/vlan",
        "faucet/port",
        "faucet/acl",
        "faucet/router",
        "faucet/switch",
        "faucet/stack",
    ),
    Subsystem.EXTERNAL_ABSTRACTION: (
        "faucet/gauge",
        "faucet/external",
        "requirements",
        "faucet/prom",
        "faucet/influx",
        "adapters/",
    ),
}

#: Message keywords per subsystem, used when no path rule matches.
_KEYWORD_RULES: dict[Subsystem, tuple[str, ...]] = {
    Subsystem.CONFIGURATION: ("config", "yaml", "option", "setting"),
    Subsystem.NETWORK_FUNCTIONALITY: (
        "vlan", "acl", "routing", "flow", "openflow", "switch", "port",
        "forwarding", "stack",
    ),
    Subsystem.EXTERNAL_ABSTRACTION: (
        "dependency", "ryu", "chewie", "influxdb", "prometheus", "upgrade",
        "pin", "requirements",
    ),
}


def classify_commit(commit: Commit) -> Subsystem | None:
    """Subsystem a commit belongs to, or ``None`` if unclassifiable.

    Path rules win over keyword rules; the first matching subsystem in enum
    order is returned (path layouts are disjoint in practice).
    """
    for subsystem, prefixes in _PATH_RULES.items():
        if any(commit.touches(prefix) for prefix in prefixes):
            return subsystem
    message = commit.message.lower()
    for subsystem, keywords in _KEYWORD_RULES.items():
        if any(keyword in message for keyword in keywords):
            return subsystem
    return None


def burn_distribution(history: CommitHistory) -> dict[Subsystem, float]:
    """Fig 11: share of classifiable commits per subsystem (sums to 1)."""
    counts = {s: 0 for s in Subsystem}
    total = 0
    for commit in history:
        subsystem = classify_commit(commit)
        if subsystem is not None:
            counts[subsystem] += 1
            total += 1
    if total == 0:
        raise ValueError("no classifiable commits in history")
    return {s: c / total for s, c in counts.items()}
