"""Commit and history models."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from datetime import datetime
from typing import Callable, Iterable, Iterator


class Subsystem(enum.Enum):
    """Fig 11's three functional subsystems of a controller codebase."""

    CONFIGURATION = "configuration"
    NETWORK_FUNCTIONALITY = "network_functionality"
    EXTERNAL_ABSTRACTION = "external_abstraction"


@dataclass(frozen=True)
class Commit:
    """One commit: metadata plus the files it touched."""

    sha: str
    author: str
    date: datetime
    message: str
    files: tuple[str, ...]
    insertions: int = 0
    deletions: int = 0

    def touches(self, prefix: str) -> bool:
        """True if any changed file path starts with ``prefix``."""
        return any(f.startswith(prefix) for f in self.files)


class CommitHistory:
    """An ordered (by date) collection of commits with query helpers."""

    def __init__(self, commits: Iterable[Commit]) -> None:
        self._commits = sorted(commits, key=lambda c: (c.date, c.sha))
        shas = [c.sha for c in self._commits]
        if len(shas) != len(set(shas)):
            raise ValueError("duplicate commit shas in history")

    def __len__(self) -> int:
        return len(self._commits)

    def __iter__(self) -> Iterator[Commit]:
        return iter(self._commits)

    def between(self, start: datetime, end: datetime) -> "CommitHistory":
        """Commits with ``start <= date < end``."""
        return CommitHistory(
            c for c in self._commits if start <= c.date < end
        )

    def touching(self, prefix: str) -> "CommitHistory":
        """Commits touching any file under ``prefix``."""
        return CommitHistory(c for c in self._commits if c.touches(prefix))

    def filter(self, predicate: Callable[[Commit], bool]) -> "CommitHistory":
        return CommitHistory(c for c in self._commits if predicate(c))

    def per_release(
        self, release_dates: dict[str, datetime]
    ) -> dict[str, int]:
        """Commit counts per release window (Fig 10).

        ``release_dates`` maps release name -> release date; a release's
        window runs from the previous release date (or the dawn of history)
        up to its own date.  Releases are processed in date order.
        """
        ordered = sorted(release_dates.items(), key=lambda kv: kv[1])
        counts: dict[str, int] = {}
        previous = datetime.min
        for name, date in ordered:
            counts[name] = len(self.between(previous, date))
            previous = date
        return counts
