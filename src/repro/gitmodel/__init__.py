"""Commit-history substrate and analyses (SS VI-B, Figs 10-11, Table IV)."""

from repro.gitmodel.models import Commit, CommitHistory, Subsystem
from repro.gitmodel.burn import burn_distribution, classify_commit
from repro.gitmodel.deps import DependencyBurndown, RequirementsFile
from repro.gitmodel.generators import (
    FaucetHistoryGenerator,
    onos_commits_per_release,
)

__all__ = [
    "Commit",
    "CommitHistory",
    "Subsystem",
    "burn_distribution",
    "classify_commit",
    "DependencyBurndown",
    "RequirementsFile",
    "FaucetHistoryGenerator",
    "onos_commits_per_release",
]
