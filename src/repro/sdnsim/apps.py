"""Controller applications, each carrying an optional, named historical bug.

Every app has a ``critical`` flag (does an unhandled exception crash the
whole controller?) and, where the paper names a bug, a flag that selects the
buggy or fixed behaviour:

* :class:`MirrorApp` — FAUCET-1623: output broadcast packets are not
  mirrored unless ``mirror_broadcast=True`` (the fix adds the case).
* :class:`MulticastHandler` — CORD-2470: a missing configuration section
  causes a null-pointer crash unless ``guard_config=True``.
* :class:`StatsGauge` — FAUCET-355: stats are written to the TSDB as strings
  unless ``cast_types=True``; against a v2 TSDB that raises and kills the
  gauge component.
"""

from __future__ import annotations

from repro.sdnsim.controller import ControllerRuntime
from repro.sdnsim.messages import (
    Action,
    FlowMod,
    Match,
    Packet,
    PacketIn,
    PacketOut,
    PORT_DROP,
    PORT_FLOOD,
)
from repro.sdnsim.services import TimeSeriesDB


class InputValidatorApp:
    """Error-guarding logic at the event boundary (SS V-A takeaway).

    The paper's broader takeaway: "these controllers lack sufficient code
    for checking for valid inputs ... developers of the SDN controllers need
    to introduce better error-guarding logic".  Placed first in the app
    list, this validator vetoes malformed frames (missing/garbled ethernet
    fields) before fragile handlers dereference them, logging instead of
    crashing.
    """

    name = "input_validator"
    critical = False

    def __init__(self) -> None:
        self.rejected = 0

    def on_start(self, runtime: "ControllerRuntime") -> None:
        pass

    def on_packet_in(self, runtime: "ControllerRuntime", event: PacketIn):
        packet = event.packet
        for field_name in ("src_mac", "dst_mac"):
            value = getattr(packet, field_name)
            if not isinstance(value, str) or value.count(":") < 1:
                self.rejected += 1
                runtime.log_error(
                    self.name,
                    f"dropped malformed frame ({field_name}={value!r}) "
                    f"from dpid {event.dpid} port {event.in_port}",
                )
                return False  # veto: downstream apps never see the frame
        return None


class L2LearningSwitch:
    """MAC-learning forwarding: the controller's core network function."""

    name = "forwarding"
    critical = True

    def __init__(self) -> None:
        self.tables: dict[int, dict[str, int]] = {}

    def on_start(self, runtime: ControllerRuntime) -> None:
        for dpid in runtime.switches:
            self.tables.setdefault(dpid, {})

    def on_packet_in(self, runtime: ControllerRuntime, event: PacketIn) -> None:
        table = self.tables.setdefault(event.dpid, {})
        packet = event.packet
        table[packet.src_mac] = event.in_port
        if not packet.is_broadcast and packet.dst_mac in table:
            out_port = table[packet.dst_mac]
            runtime.install_flow(
                FlowMod(
                    dpid=event.dpid,
                    match=Match(dst_mac=packet.dst_mac, vlan=packet.vlan),
                    actions=(Action(out_port),),
                )
            )
            runtime.send_packet_out(
                PacketOut(
                    dpid=event.dpid, packet=packet, actions=(Action(out_port),)
                ),
                in_port=event.in_port,
            )
        else:
            runtime.send_packet_out(
                PacketOut(
                    dpid=event.dpid, packet=packet, actions=(Action(PORT_FLOOD),)
                ),
                in_port=event.in_port,
            )

    def on_port_status(self, runtime: ControllerRuntime, event) -> None:
        if not event.is_up:
            # Forget hosts learned behind a downed port.
            table = self.tables.get(event.dpid, {})
            for mac, port in list(table.items()):
                if port == event.port:
                    del table[mac]


class AclApp:
    """Installs drop rules from configuration at startup."""

    name = "acl"
    critical = False

    def on_start(self, runtime: ControllerRuntime) -> None:
        for rule in runtime.config.acl_rules:
            for dpid in runtime.switches:
                runtime.install_flow(
                    FlowMod(
                        dpid=dpid,
                        match=Match(dst_mac=rule["dst_mac"]),
                        actions=(Action(PORT_DROP),),
                        priority=200,
                    )
                )


class MirrorApp:
    """Port mirroring: copy traffic seen on a monitored port to a mirror port.

    FAUCET-1623: the buggy version handles unicast outputs but lacks the
    branch for flooded (broadcast) outputs, so broadcast frames that egress
    the monitored port are never copied to the mirror port — a gray failure
    (unicast mirroring still works).  ``mirror_broadcast=True`` is the patch.
    """

    name = "mirror"
    critical = False

    def __init__(self, *, mirror_broadcast: bool = False) -> None:
        self.mirror_broadcast = mirror_broadcast

    def on_start(self, runtime: ControllerRuntime) -> None:
        self._specs = {
            int(dpid): dict(spec) for dpid, spec in runtime.config.mirror_specs.items()
        }

    def _spec(self, dpid: int) -> dict[str, int] | None:
        return getattr(self, "_specs", {}).get(dpid)

    def transform_actions(self, dpid: int, match: Match, actions):
        """Add a mirror copy to unicast flows that output the monitored port."""
        spec = self._spec(dpid)
        if spec is None:
            return actions
        out = list(actions)
        if any(a.output_port == spec["source_port"] for a in actions):
            out.append(Action(spec["mirror_port"]))
        return out

    def transform_packet_out(self, dpid: int, packet: Packet, actions, in_port: int):
        """Mirror packet-outs touching the monitored port.

        The flood case is the FAUCET-1623 edge: a flooded frame *does* egress
        the monitored port, but the buggy code never considers reserved
        ports when looking for the monitored port in the action list.
        """
        spec = self._spec(dpid)
        if spec is None:
            return actions
        out = list(actions)
        touches_source = any(a.output_port == spec["source_port"] for a in actions)
        floods_over_source = (
            any(a.output_port == PORT_FLOOD for a in actions)
            and in_port != spec["source_port"]
        )
        if touches_source:
            out.append(Action(spec["mirror_port"]))
        elif floods_over_source and self.mirror_broadcast:
            out.append(Action(spec["mirror_port"]))
        return out


class MulticastHandler:
    """IGMP-style group forwarding (CORD's host/mcast handler).

    CORD-2470: with ``guard_config=False`` a missing ``multicast``
    configuration section is dereferenced unconditionally, raising the
    null-pointer error that crashed the CORD controller (this app is
    ``critical``).  The fix guards the lookup and logs instead.
    """

    name = "multicast"
    critical = True

    MULTICAST_PREFIX = "01:00:5e"

    def __init__(self, *, guard_config: bool = False) -> None:
        self.guard_config = guard_config

    def on_start(self, runtime: ControllerRuntime) -> None:
        pass

    def on_packet_in(self, runtime: ControllerRuntime, event: PacketIn) -> None:
        packet = event.packet
        if not packet.dst_mac.startswith(self.MULTICAST_PREFIX):
            return
        section = runtime.config.multicast
        if self.guard_config:
            if section is None or "groups" not in section:
                runtime.log_error(
                    self.name,
                    f"no multicast group configured for {packet.dst_mac}; dropping",
                )
                return
            groups = section["groups"]
        else:
            # CORD-2470: unguarded dereference of a possibly-absent section.
            groups = section["groups"]  # type: ignore[index]
        ports = groups.get(packet.dst_mac, ())
        for port in ports:
            runtime.send_packet_out(
                PacketOut(dpid=event.dpid, packet=packet, actions=(Action(port),)),
                in_port=event.in_port,
            )


class StatsGauge:
    """Periodic port-stats export to a time-series DB (FAUCET's Gauge).

    FAUCET-355: with ``cast_types=False`` counters are serialized as strings;
    a v2 TSDB rejects them with a type error and the gauge component dies —
    while forwarding continues (gray failure).  ``cast_types=True`` is the
    compatibility fix.
    """

    name = "gauge"
    critical = False

    def __init__(
        self,
        tsdb: TimeSeriesDB,
        *,
        interval: float = 5.0,
        cast_types: bool = False,
    ) -> None:
        self.tsdb = tsdb
        self.interval = interval
        self.cast_types = cast_types
        self.polls = 0

    def on_start(self, runtime: ControllerRuntime) -> None:
        self._schedule(runtime)

    def _schedule(self, runtime: ControllerRuntime) -> None:
        runtime.scheduler.schedule(self.interval, lambda: self._poll(runtime))

    def _poll(self, runtime: ControllerRuntime) -> None:
        from repro.sdnsim.services import ServiceUnavailableError

        if runtime.crashed or not runtime.component_ok.get(self.name, False):
            return
        self.polls += 1
        try:
            for dpid, switch in sorted(runtime.switches.items()):
                for port_number in sorted(switch.ports):
                    stats = switch.port_stats(port_number)
                    fields = dict(stats.as_fields())
                    if not self.cast_types:
                        # FAUCET-355: the miscommunicated data type.
                        fields = {k: str(v) for k, v in fields.items()}
                    self.tsdb.write(
                        f"port_stats.dp{dpid}.p{port_number}",
                        fields,
                        timestamp=runtime.scheduler.clock.now,
                    )
        except ServiceUnavailableError as exc:
            # Transient backend outage: scary log line, retry next interval.
            runtime.log_error(self.name, f"tsdb write failed, will retry: {exc}")
        except Exception as exc:  # noqa: BLE001 - component fault boundary
            runtime._fail_component(
                self.name, f"{type(exc).__name__}: {exc}", critical=self.critical
            )
            return
        self._schedule(runtime)
