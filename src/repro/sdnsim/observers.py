"""Outcome observation: map a finished scenario onto the taxonomy's symptoms.

The classifier looks at a scenario the way an operator would — did the
process die, is anything hung, do health checks disagree with reality, is
traffic going to the wrong place, did latency regress, or is it just log
noise? — and emits the corresponding Table I symptom (plus byzantine mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sdnsim.controller import ControllerRuntime
from repro.taxonomy import ByzantineMode, Symptom


@dataclass
class Observation:
    """Everything the observer measured about one scenario run."""

    crashed: bool
    crash_reason: str | None
    failed_components: list[str]
    healthy_components: list[str]
    error_count: int
    stalled: bool
    #: Forwarding-correctness checks: (description, passed) pairs.
    checks: list[tuple[str, bool]] = field(default_factory=list)
    #: Mean northbound API latency (seconds), None if no calls were made.
    api_latency: float | None = None
    #: Healthy-baseline latency for the same workload, for regressions.
    baseline_latency: float | None = None

    @property
    def forwarding_ok(self) -> bool:
        """True when every *core forwarding* check passed.

        Check descriptions use prefixes: ``forward:`` for core forwarding
        behaviour, ``feature:`` for auxiliary functionality (mirroring,
        stats, multicast).  A failed feature with healthy forwarding is a
        gray failure; failed forwarding is incorrect behaviour.
        """
        return all(ok for desc, ok in self.checks if desc.startswith("forward"))

    @property
    def features_ok(self) -> bool:
        """True when every auxiliary-feature check passed."""
        return all(ok for desc, ok in self.checks if desc.startswith("feature"))

    @property
    def all_checks_ok(self) -> bool:
        return all(ok for _desc, ok in self.checks)

    @property
    def failed_checks(self) -> list[str]:
        return [desc for desc, ok in self.checks if not ok]

    @property
    def latency_ratio(self) -> float | None:
        if self.api_latency is None or not self.baseline_latency:
            return None
        return self.api_latency / self.baseline_latency


@dataclass(frozen=True)
class Outcome:
    """The classified operational impact of one scenario."""

    symptom: Symptom | None  # None = healthy run
    byzantine_mode: ByzantineMode | None = None
    detail: str = ""


class OutcomeClassifier:
    """Classify an :class:`Observation` into a Table I symptom."""

    def __init__(self, *, performance_threshold: float = 2.0) -> None:
        if performance_threshold <= 1.0:
            raise ValueError("performance_threshold must be > 1")
        self.performance_threshold = performance_threshold

    def classify(self, obs: Observation) -> Outcome:
        """Priority order mirrors operational severity triage:
        crash > stall > partial outage > wrong behaviour > slow > log noise.
        """
        if obs.crashed:
            return Outcome(
                symptom=Symptom.FAIL_STOP,
                detail=obs.crash_reason or "controller crashed",
            )
        if obs.stalled:
            return Outcome(
                symptom=Symptom.BYZANTINE,
                byzantine_mode=ByzantineMode.STALL,
                detail="a core thread is blocked waiting",
            )
        if obs.failed_components and obs.forwarding_ok:
            return Outcome(
                symptom=Symptom.BYZANTINE,
                byzantine_mode=ByzantineMode.GRAY_FAILURE,
                detail=f"components down: {', '.join(obs.failed_components)}",
            )
        if not obs.features_ok and obs.forwarding_ok:
            return Outcome(
                symptom=Symptom.BYZANTINE,
                byzantine_mode=ByzantineMode.GRAY_FAILURE,
                detail=f"partial outage: {', '.join(obs.failed_checks)}",
            )
        if not obs.all_checks_ok:
            return Outcome(
                symptom=Symptom.BYZANTINE,
                byzantine_mode=ByzantineMode.INCORRECT_BEHAVIOR,
                detail=f"failed checks: {', '.join(obs.failed_checks)}",
            )
        ratio = obs.latency_ratio
        if ratio is not None and ratio >= self.performance_threshold:
            return Outcome(
                symptom=Symptom.PERFORMANCE,
                detail=f"API latency regressed {ratio:.1f}x",
            )
        if obs.error_count > 0:
            return Outcome(
                symptom=Symptom.ERROR_MESSAGE,
                detail=f"{obs.error_count} errors logged, no functional impact",
            )
        return Outcome(symptom=None, detail="healthy")


def observe(
    runtime: ControllerRuntime,
    *,
    stalled: bool = False,
    checks: list[tuple[str, bool]] | None = None,
    baseline_latency: float | None = None,
) -> Observation:
    """Snapshot a runtime into an :class:`Observation`."""
    latencies = runtime.api_latencies
    return Observation(
        crashed=runtime.crashed,
        crash_reason=runtime.crash_reason,
        failed_components=runtime.failed_components,
        healthy_components=runtime.healthy_components,
        error_count=len(runtime.errors),
        stalled=stalled,
        checks=list(checks or []),
        api_latency=(sum(latencies) / len(latencies)) if latencies else None,
        baseline_latency=baseline_latency,
    )
