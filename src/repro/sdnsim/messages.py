"""OpenFlow-style control messages and data-plane packets.

A deliberately small subset of OpenFlow 1.3 semantics: enough for flow-mod
programming, packet-in/packet-out punting, port status, and liveness echoes
— the message classes the paper's network-event-triggered bugs involve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"

#: Pseudo-port constants (mirroring OpenFlow reserved ports).
PORT_FLOOD = -1
PORT_CONTROLLER = -2
PORT_DROP = -3


@dataclass(frozen=True)
class Packet:
    """A data-plane frame."""

    src_mac: str
    dst_mac: str
    vlan: int = 0
    payload: str = ""

    @property
    def is_broadcast(self) -> bool:
        return self.dst_mac == BROADCAST_MAC


@dataclass(frozen=True)
class Match:
    """Flow-table match on (dst_mac, vlan); ``None`` wildcards a field."""

    dst_mac: str | None = None
    vlan: int | None = None

    def matches(self, packet: Packet) -> bool:
        if self.dst_mac is not None and packet.dst_mac != self.dst_mac:
            return False
        if self.vlan is not None and packet.vlan != self.vlan:
            return False
        return True


@dataclass(frozen=True)
class Action:
    """A forwarding action: output to a port (or FLOOD/CONTROLLER/DROP)."""

    output_port: int


# -- controller <-> switch messages -------------------------------------------
@dataclass(frozen=True)
class PacketIn:
    """Switch punts an unmatched packet to the controller."""

    dpid: int
    in_port: int
    packet: Packet


@dataclass(frozen=True)
class PacketOut:
    """Controller tells the switch to emit a packet."""

    dpid: int
    packet: Packet
    actions: tuple[Action, ...]


@dataclass(frozen=True)
class FlowMod:
    """Controller installs/overwrites a flow entry."""

    dpid: int
    match: Match
    actions: tuple[Action, ...]
    priority: int = 100
    idle_timeout: float = 0.0  # 0 = permanent


@dataclass(frozen=True)
class FlowRemoved:
    """Switch notifies the controller that a flow expired."""

    dpid: int
    match: Match


@dataclass(frozen=True)
class PortStatus:
    """Switch reports a port coming up or going down."""

    dpid: int
    port: int
    is_up: bool


@dataclass(frozen=True)
class EchoRequest:
    """Liveness probe from switch to controller."""

    dpid: int
    sequence: int


@dataclass(frozen=True)
class EchoReply:
    """Controller's answer to an :class:`EchoRequest`."""

    dpid: int
    sequence: int


@dataclass(frozen=True)
class PortStats:
    """Per-port counters exported by the stats app (FAUCET's Gauge)."""

    dpid: int
    port: int
    rx_packets: int
    tx_packets: int
    rx_bytes: int
    tx_bytes: int

    def as_fields(self) -> Mapping[str, int]:
        return {
            "rx_packets": self.rx_packets,
            "tx_packets": self.tx_packets,
            "rx_bytes": self.rx_bytes,
            "tx_bytes": self.tx_bytes,
        }
