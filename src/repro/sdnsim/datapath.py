"""Switch (datapath) model: ports, a flow table, and packet processing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import SimulationError
from repro.sdnsim.messages import (
    Action,
    FlowMod,
    Match,
    Packet,
    PacketIn,
    PORT_CONTROLLER,
    PORT_DROP,
    PORT_FLOOD,
    PortStats,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sdnsim.controller import ControllerRuntime


@dataclass
class FlowEntry:
    """One installed flow: match, actions, priority, hit counter."""

    match: Match
    actions: tuple[Action, ...]
    priority: int
    packets: int = 0


@dataclass
class Port:
    """A switch port, optionally attached to a host MAC."""

    number: int
    is_up: bool = True
    host_mac: str | None = None
    rx_packets: int = 0
    tx_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0


class Switch:
    """An OpenFlow-style switch.

    Delivery callbacks record frames that egress each port; the observer
    uses them to check forwarding correctness (e.g. "did the mirror port see
    a copy of every frame?").
    """

    def __init__(self, dpid: int, port_numbers: list[int]) -> None:
        if not port_numbers:
            raise SimulationError(f"switch {dpid} needs at least one port")
        self.dpid = dpid
        self.ports: dict[int, Port] = {n: Port(n) for n in port_numbers}
        self.flow_table: list[FlowEntry] = []
        self.controller: "ControllerRuntime | None" = None
        #: Ports excluded from FLOOD (mirror/monitor ports are not part of
        #: the broadcast domain; they only receive explicit copies).
        self.exclude_from_flood: set[int] = set()
        #: egress log: (port, packet) tuples in delivery order
        self.delivered: list[tuple[int, Packet]] = []
        self._egress_hooks: list[Callable[[int, Packet], None]] = []

    # -- wiring -----------------------------------------------------------------
    def connect(self, controller: "ControllerRuntime") -> None:
        self.controller = controller
        controller.register_switch(self)

    def attach_host(self, port: int, mac: str) -> None:
        self._port(port).host_mac = mac

    def on_egress(self, hook: Callable[[int, Packet], None]) -> None:
        self._egress_hooks.append(hook)

    def _port(self, number: int) -> Port:
        try:
            return self.ports[number]
        except KeyError:
            raise SimulationError(f"switch {self.dpid} has no port {number}") from None

    # -- flow table ----------------------------------------------------------------
    def apply_flow_mod(self, flow_mod: FlowMod) -> None:
        """Install a flow, replacing any entry with an identical match."""
        if flow_mod.dpid != self.dpid:
            raise SimulationError(
                f"flow mod for dpid {flow_mod.dpid} sent to switch {self.dpid}"
            )
        self.flow_table = [
            entry for entry in self.flow_table if entry.match != flow_mod.match
        ]
        self.flow_table.append(
            FlowEntry(
                match=flow_mod.match,
                actions=flow_mod.actions,
                priority=flow_mod.priority,
            )
        )
        self.flow_table.sort(key=lambda e: -e.priority)

    def lookup(self, packet: Packet) -> FlowEntry | None:
        """Highest-priority matching entry, or None (table miss)."""
        for entry in self.flow_table:
            if entry.match.matches(packet):
                return entry
        return None

    # -- packet processing ------------------------------------------------------------
    def receive(self, in_port: int, packet: Packet) -> None:
        """A frame arrives on ``in_port``: match or punt to controller."""
        port = self._port(in_port)
        if not port.is_up:
            return  # frames on downed ports vanish
        port.rx_packets += 1
        port.rx_bytes += len(packet.payload) + 64
        entry = self.lookup(packet)
        if entry is None:
            if self.controller is not None:
                self.controller.handle_message(
                    PacketIn(dpid=self.dpid, in_port=in_port, packet=packet)
                )
            return
        entry.packets += 1
        self.execute_actions(packet, entry.actions, in_port=in_port)

    def execute_actions(
        self, packet: Packet, actions: tuple[Action, ...], *, in_port: int
    ) -> None:
        """Apply forwarding actions to a frame."""
        for action in actions:
            out = action.output_port
            if out == PORT_DROP:
                continue
            if out == PORT_CONTROLLER:
                if self.controller is not None:
                    self.controller.handle_message(
                        PacketIn(dpid=self.dpid, in_port=in_port, packet=packet)
                    )
                continue
            if out == PORT_FLOOD:
                for number, port in sorted(self.ports.items()):
                    if (
                        number != in_port
                        and port.is_up
                        and number not in self.exclude_from_flood
                    ):
                        self._emit(number, packet)
                continue
            if self._port(out).is_up:
                self._emit(out, packet)

    def _emit(self, port_number: int, packet: Packet) -> None:
        port = self._port(port_number)
        port.tx_packets += 1
        port.tx_bytes += len(packet.payload) + 64
        self.delivered.append((port_number, packet))
        for hook in self._egress_hooks:
            hook(port_number, packet)

    # -- port events / stats -----------------------------------------------------
    def set_port_state(self, port_number: int, is_up: bool) -> None:
        self._port(port_number).is_up = is_up

    def port_stats(self, port_number: int) -> PortStats:
        port = self._port(port_number)
        return PortStats(
            dpid=self.dpid,
            port=port_number,
            rx_packets=port.rx_packets,
            tx_packets=port.tx_packets,
            rx_bytes=port.rx_bytes,
            tx_bytes=port.tx_bytes,
        )
