"""Multi-switch topologies: links, discovery, and shortest-path routing.

Extends the single-switch scenario to the fabric-scale setting ONOS/CORD
operate in: switches joined by inter-switch links, an LLDP-style discovery
service maintaining the controller's topology graph, and a routing app that
programs end-to-end shortest paths.  The discovery service's *staleness
window* models the visibility loss the paper highlights ("the result of
many of these bugs is that this [global] visibility is significantly
lowered").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import SimulationError
from repro.sdnsim.clock import EventScheduler
from repro.sdnsim.datapath import Switch
from repro.sdnsim.messages import Action, FlowMod, Match, Packet


@dataclass(frozen=True)
class Link:
    """A unidirectional inter-switch link (install both directions for
    bidirectional connectivity)."""

    src_dpid: int
    src_port: int
    dst_dpid: int
    dst_port: int


class Fabric:
    """A set of switches wired by links, with frame propagation.

    Frames emitted on a link's source port are re-injected at the link's
    destination; host ports deliver normally.  Propagation is synchronous
    (zero latency) but depth-limited to catch forwarding loops — a loop is
    reported as a :class:`SimulationError` rather than an infinite cascade.
    """

    MAX_HOPS = 32

    def __init__(self) -> None:
        self.switches: dict[int, Switch] = {}
        self.links: list[Link] = []
        self._egress_map: dict[tuple[int, int], tuple[int, int]] = {}
        self._hop_budget: dict[int, int] = {}
        self._frame_counter = 0

    def add_switch(self, switch: Switch) -> None:
        if switch.dpid in self.switches:
            raise SimulationError(f"duplicate dpid {switch.dpid}")
        self.switches[switch.dpid] = switch
        switch.on_egress(lambda port, pkt, dpid=switch.dpid: self._carry(dpid, port, pkt))

    def add_link(self, link: Link, *, bidirectional: bool = True) -> None:
        for dpid, port in ((link.src_dpid, link.src_port), (link.dst_dpid, link.dst_port)):
            if dpid not in self.switches:
                raise SimulationError(f"link references unknown switch {dpid}")
            if port not in self.switches[dpid].ports:
                raise SimulationError(f"switch {dpid} has no port {port}")
        self.links.append(link)
        self._egress_map[(link.src_dpid, link.src_port)] = (link.dst_dpid, link.dst_port)
        if bidirectional:
            reverse = Link(link.dst_dpid, link.dst_port, link.src_dpid, link.src_port)
            self.links.append(reverse)
            self._egress_map[(reverse.src_dpid, reverse.src_port)] = (
                reverse.dst_dpid,
                reverse.dst_port,
            )

    def _carry(self, dpid: int, port: int, packet: Packet) -> None:
        """Move a frame across a link, if the egress port is a link port."""
        target = self._egress_map.get((dpid, port))
        if target is None:
            return  # host port: normal delivery, already recorded
        budget = self._hop_budget.get(self._frame_counter, self.MAX_HOPS)
        if budget <= 0:
            raise SimulationError(
                f"forwarding loop detected carrying {packet.src_mac}->{packet.dst_mac}"
            )
        self._hop_budget[self._frame_counter] = budget - 1
        dst_dpid, dst_port = target
        self.switches[dst_dpid].receive(dst_port, packet)

    def inject(self, dpid: int, port: int, packet: Packet) -> None:
        """Inject a frame at a host port, with a fresh loop budget."""
        self._frame_counter += 1
        self._hop_budget[self._frame_counter] = self.MAX_HOPS
        self.switches[dpid].receive(port, packet)

    def graph(self) -> nx.DiGraph:
        """The physical topology as a directed graph."""
        g = nx.DiGraph()
        g.add_nodes_from(self.switches)
        for link in self.links:
            g.add_edge(link.src_dpid, link.dst_dpid, src_port=link.src_port)
        return g


class LinkDiscovery:
    """LLDP-style topology discovery with a refresh interval.

    The controller's *view* of the fabric lags reality by up to
    ``refresh_interval`` simulated seconds: links added or removed in the
    fabric appear in :meth:`view` only after the next refresh — the window
    in which routing computes paths over a stale graph.
    """

    def __init__(
        self, fabric: Fabric, scheduler: EventScheduler, *, refresh_interval: float = 5.0
    ) -> None:
        if refresh_interval <= 0:
            raise SimulationError("refresh_interval must be positive")
        self.fabric = fabric
        self.scheduler = scheduler
        self.refresh_interval = refresh_interval
        self._view = fabric.graph()
        self.refreshes = 0
        self._schedule()

    def _schedule(self) -> None:
        self.scheduler.schedule(self.refresh_interval, self._refresh)

    def _refresh(self) -> None:
        self._view = self.fabric.graph()
        self.refreshes += 1
        self._schedule()

    def view(self) -> nx.DiGraph:
        """The controller's (possibly stale) topology graph."""
        return self._view

    def force_refresh(self) -> None:
        """Immediate resynchronization (used by recovery actions)."""
        self._view = self.fabric.graph()
        self.refreshes += 1


class ShortestPathRouter:
    """Proactive shortest-path routing over the discovered topology.

    ``install_path`` programs per-switch flows for a host MAC along the
    shortest path in the *discovered* view.  If discovery is stale, the
    programmed path can traverse dead links — traffic blackholes until the
    next refresh + reinstall, reproducing the visibility-loss failure mode.
    """

    def __init__(self, discovery: LinkDiscovery) -> None:
        self.discovery = discovery
        self.installed_paths: dict[str, list[int]] = {}

    def compute_path(self, src_dpid: int, dst_dpid: int) -> list[int]:
        """Switch-level shortest path in the current controller view."""
        view = self.discovery.view()
        try:
            return nx.shortest_path(view, src_dpid, dst_dpid)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise SimulationError(
                f"no path {src_dpid} -> {dst_dpid} in the controller view"
            ) from exc

    def install_path(
        self, dst_mac: str, dst_dpid: int, dst_port: int, src_dpid: int
    ) -> list[int]:
        """Program flows for ``dst_mac`` along src->dst; returns the path."""
        path = self.compute_path(src_dpid, dst_dpid)
        fabric = self.fabric
        for here, nxt in zip(path, path[1:]):
            out_port = self._port_toward(here, nxt)
            fabric.switches[here].apply_flow_mod(
                FlowMod(
                    dpid=here,
                    match=Match(dst_mac=dst_mac),
                    actions=(Action(out_port),),
                    priority=150,
                )
            )
        fabric.switches[dst_dpid].apply_flow_mod(
            FlowMod(
                dpid=dst_dpid,
                match=Match(dst_mac=dst_mac),
                actions=(Action(dst_port),),
                priority=150,
            )
        )
        self.installed_paths[dst_mac] = path
        return path

    def _port_toward(self, src_dpid: int, dst_dpid: int) -> int:
        view = self.discovery.view()
        data = view.get_edge_data(src_dpid, dst_dpid)
        if data is None:
            raise SimulationError(f"no link {src_dpid} -> {dst_dpid} in view")
        return data["src_port"]

    @property
    def fabric(self) -> Fabric:
        return self.discovery.fabric
