"""Distributed controller cluster: mastership, leader election, failover.

Models the ONOS-style cluster the paper's longest-running bug lives in:
**ONOS-5992** — "killing one ONOS instance resulted in a cluster failure".
The buggy behaviour is a quorum check that counts *configured* members
instead of *live* members: after one instance dies, every mastership
operation believes quorum is lost and the whole cluster wedges.  The fix
counts live members, so an N-1 majority keeps operating and device
mastership fails over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sdnsim.clock import EventScheduler


class InstanceState(enum.Enum):
    """Lifecycle of one cluster member."""

    ACTIVE = "active"
    DEAD = "dead"


@dataclass
class ClusterInstance:
    """One controller instance in the cluster."""

    node_id: str
    state: InstanceState = InstanceState.ACTIVE

    @property
    def is_alive(self) -> bool:
        return self.state is InstanceState.ACTIVE


class ControllerCluster:
    """A small replicated control plane with per-device mastership.

    Parameters
    ----------
    node_ids:
        Cluster membership (static configuration).
    quorum_counts_live_members:
        The ONOS-5992 knob.  ``False`` (buggy) computes quorum against the
        *configured* member count, so a single member death can wedge all
        operations; ``True`` (fixed) computes quorum against *live* members.
    """

    def __init__(
        self,
        node_ids: list[str],
        scheduler: EventScheduler,
        *,
        quorum_counts_live_members: bool = True,
        election_delay: float = 1.0,
    ) -> None:
        if len(node_ids) < 1:
            raise SimulationError("a cluster needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise SimulationError("duplicate node ids")
        self.scheduler = scheduler
        self.quorum_counts_live_members = quorum_counts_live_members
        self.election_delay = election_delay
        self.instances = {nid: ClusterInstance(nid) for nid in node_ids}
        self.leader: str | None = None
        self.mastership: dict[int, str] = {}  # dpid -> node_id
        self.operations_log: list[tuple[float, str, bool]] = []
        self._elect_leader()

    # -- membership ------------------------------------------------------------
    @property
    def configured_size(self) -> int:
        return len(self.instances)

    @property
    def live_members(self) -> list[str]:
        return sorted(
            nid for nid, inst in self.instances.items() if inst.is_alive
        )

    def has_quorum(self) -> bool:
        """True when a majority (of the quorum base) is alive.

        With the buggy base (configured size) a 3-node cluster that loses
        one member still has quorum — but a *second* code path compares
        against strict majority of configured members when any member is
        flagged unreachable, which is what ONOS-5992 tripped over.  We model
        the observable effect directly: with the buggy knob, any dead member
        voids quorum.
        """
        alive = len(self.live_members)
        if self.quorum_counts_live_members:
            return alive >= (alive // 2) + 1 if alive else False
        if alive < self.configured_size:
            return False  # the ONOS-5992 wedge
        return alive >= (self.configured_size // 2) + 1

    # -- leadership -------------------------------------------------------------
    def _elect_leader(self) -> None:
        live = self.live_members
        self.leader = live[0] if live and self.has_quorum() else None

    # -- mastership -------------------------------------------------------------
    def assign_mastership(self, dpid: int) -> str:
        """Assign (or reassign) a master for a device; round-robin by load."""
        if not self.has_quorum():
            self.operations_log.append(
                (self.scheduler.clock.now, f"assign dpid={dpid}", False)
            )
            raise SimulationError("cluster has no quorum; mastership unavailable")
        load: dict[str, int] = {nid: 0 for nid in self.live_members}
        for master in self.mastership.values():
            if master in load:
                load[master] += 1
        chosen = min(load, key=lambda nid: (load[nid], nid))
        self.mastership[dpid] = chosen
        self.operations_log.append(
            (self.scheduler.clock.now, f"assign dpid={dpid}", True)
        )
        return chosen

    def master_of(self, dpid: int) -> str | None:
        """Current master, or None if the device is unassigned/orphaned."""
        master = self.mastership.get(dpid)
        if master is None:
            return None
        if not self.instances[master].is_alive:
            return None
        return master

    # -- failures ---------------------------------------------------------------
    def kill_instance(self, node_id: str) -> None:
        """Hard-kill one instance and run failover after the election delay."""
        if node_id not in self.instances:
            raise SimulationError(f"unknown node {node_id!r}")
        self.instances[node_id].state = InstanceState.DEAD

        def failover() -> None:
            self._elect_leader()
            if not self.has_quorum():
                return  # wedged: orphaned devices stay orphaned
            for dpid, master in sorted(self.mastership.items()):
                if not self.instances[master].is_alive:
                    self.assign_mastership(dpid)

        self.scheduler.schedule(self.election_delay, failover)

    def orphaned_devices(self) -> list[int]:
        """Devices whose master is dead and was never failed over."""
        return sorted(
            dpid for dpid in self.mastership if self.master_of(dpid) is None
        )

    def is_wedged(self) -> bool:
        """The ONOS-5992 end state: live members exist but no quorum."""
        return bool(self.live_members) and not self.has_quorum()
