"""External services the controller integrates with.

``TimeSeriesDB`` stands in for InfluxDB: api_version 1 coerced field values;
api_version 2 rejects non-numeric fields with a type error — the contract
change behind FAUCET-355 (Gauge crashing on a data-type mismatch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.breaker import CircuitBreaker
    from repro.resilience.ledger import ResilienceLedger
    from repro.resilience.policies import RetryPolicy
    from repro.sdnsim.clock import EventScheduler


class ServiceTypeError(SimulationError):
    """The external service rejected a write because of a field type."""


class ServiceUnavailableError(SimulationError):
    """The external service is down or unreachable."""


@dataclass
class DataPoint:
    """One stored measurement row."""

    measurement: str
    fields: dict[str, float]
    timestamp: float


class TimeSeriesDB:
    """A typed time-series store with a version-dependent write contract."""

    def __init__(self, *, api_version: int = 2, available: bool = True) -> None:
        if api_version not in (1, 2):
            raise SimulationError(f"unsupported api_version {api_version}")
        self.api_version = api_version
        self.available = available
        self.points: list[DataPoint] = []

    def write(
        self, measurement: str, fields: Mapping[str, object], *, timestamp: float
    ) -> None:
        """Store a row.

        api_version 1 silently coerces stringly-typed numbers (the lenient
        legacy behaviour); api_version 2 raises :class:`ServiceTypeError`
        on any non-numeric field value.
        """
        if not self.available:
            raise ServiceUnavailableError(f"tsdb is down (write to {measurement})")
        coerced: dict[str, float] = {}
        for key, value in fields.items():
            if isinstance(value, bool) or not isinstance(value, (int, float, str)):
                raise ServiceTypeError(
                    f"field {key!r} has unsupported type {type(value).__name__}"
                )
            if isinstance(value, str):
                if self.api_version >= 2:
                    raise ServiceTypeError(
                        f"field {key!r} is a string; api v2 requires numeric fields"
                    )
                try:
                    coerced[key] = float(value)
                except ValueError:
                    raise ServiceTypeError(
                        f"field {key!r} is not parseable as a number: {value!r}"
                    ) from None
            else:
                coerced[key] = float(value)
        self.points.append(
            DataPoint(measurement=measurement, fields=coerced, timestamp=timestamp)
        )

    def count(self, measurement: str | None = None) -> int:
        if measurement is None:
            return len(self.points)
        return sum(1 for p in self.points if p.measurement == measurement)


class GuardedTimeSeriesDB:
    """A resilient facade over :class:`TimeSeriesDB`.

    Writes go through a circuit breaker plus a retry policy, both driven by
    the simulated clock:

    * a transient :class:`ServiceUnavailableError` is absorbed — the write
      is re-scheduled with backoff instead of surfacing as a scary error
      log (the paper's ``external-tsdb-flaky`` symptom);
    * while the breaker is open, writes are shed (silently dropped and
      ledgered) so a dead backend is not hammered;
    * a :class:`ServiceTypeError` is a *deterministic* contract violation
      (FAUCET-355) and propagates unchanged — no amount of retrying fixes a
      type mismatch, which is exactly the §VII claim the A/B campaign
      quantifies.
    """

    def __init__(
        self,
        backend: TimeSeriesDB,
        scheduler: "EventScheduler",
        *,
        retry: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        ledger: "ResilienceLedger | None" = None,
    ) -> None:
        from repro.resilience.policies import RetryPolicy

        self.backend = backend
        self.scheduler = scheduler
        self.retry = retry or RetryPolicy(max_attempts=3, base_delay=1.0)
        self.breaker = breaker
        self.ledger = ledger
        self.pending_retries = 0
        self.absorbed_failures = 0
        self.shed_writes = 0
        self.dropped_writes = 0

    # -- backend delegation ------------------------------------------------------
    @property
    def api_version(self) -> int:
        return self.backend.api_version

    @property
    def available(self) -> bool:
        return self.backend.available

    @property
    def points(self) -> list[DataPoint]:
        return self.backend.points

    def count(self, measurement: str | None = None) -> int:
        return self.backend.count(measurement)

    # -- resilient write ---------------------------------------------------------
    def write(
        self, measurement: str, fields: Mapping[str, object], *, timestamp: float
    ) -> None:
        """Store a row, absorbing transient backend outages.

        Returns without raising on a transient failure (a retry is queued on
        the scheduler) and when the breaker sheds the write; raises only the
        deterministic :class:`ServiceTypeError`.
        """
        if self.breaker is not None and not self.breaker.allow():
            self._shed(measurement)
            return
        try:
            self.backend.write(measurement, dict(fields), timestamp=timestamp)
        except ServiceUnavailableError as exc:
            if self.breaker is not None:
                self._record_failure()
            self._schedule_retry(measurement, dict(fields), timestamp, 1, exc)
        except ServiceTypeError:
            raise  # deterministic contract violation; retry cannot help
        else:
            if self.breaker is not None:
                self.breaker.record_success()

    def _record_failure(self) -> None:
        from repro.taxonomy import Symptom, Trigger

        self.breaker.record_failure(
            trigger=Trigger.EXTERNAL_CALLS, symptom=Symptom.ERROR_MESSAGE
        )

    def _shed(self, measurement: str) -> None:
        from repro.resilience.ledger import ResilienceEvent
        from repro.taxonomy import Trigger

        self.shed_writes += 1
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.SHED,
                "tsdb",
                time=self.scheduler.clock.now,
                detail=f"write to {measurement} shed while breaker open",
                trigger=Trigger.EXTERNAL_CALLS,
            )

    def _schedule_retry(
        self,
        measurement: str,
        fields: dict[str, object],
        timestamp: float,
        attempt: int,
        error: Exception,
    ) -> None:
        from repro.resilience.ledger import ResilienceEvent
        from repro.taxonomy import Symptom, Trigger

        if attempt > self.retry.max_attempts:
            self.dropped_writes += 1
            if self.ledger is not None:
                self.ledger.record(
                    ResilienceEvent.DEGRADATION,
                    "tsdb",
                    time=self.scheduler.clock.now,
                    detail=f"write to {measurement} dropped after "
                    f"{attempt - 1} retries: {error}",
                    trigger=Trigger.EXTERNAL_CALLS,
                )
            return
        delay = self.retry.delay_for(attempt)
        self.pending_retries += 1
        self.absorbed_failures += 1
        if self.ledger is not None:
            self.ledger.record(
                ResilienceEvent.RETRY,
                "tsdb",
                time=self.scheduler.clock.now,
                detail=f"write to {measurement} retrying after: {error}",
                trigger=Trigger.EXTERNAL_CALLS,
                symptom=Symptom.ERROR_MESSAGE,
                attempt=attempt,
                delay=delay,
            )

        def fire() -> None:
            self.pending_retries -= 1
            if self.breaker is not None and not self.breaker.allow():
                self._shed(measurement)
                return
            try:
                self.backend.write(measurement, fields, timestamp=timestamp)
            except ServiceUnavailableError as exc:
                if self.breaker is not None:
                    self._record_failure()
                self._schedule_retry(measurement, fields, timestamp, attempt + 1, exc)
            except ServiceTypeError as exc:
                # The backend's contract changed while we were queued; the
                # scheduler context has no caller to raise into, so account
                # the loss instead of crashing the event loop.
                self.dropped_writes += 1
                if self.ledger is not None:
                    self.ledger.record(
                        ResilienceEvent.DEGRADATION,
                        "tsdb",
                        time=self.scheduler.clock.now,
                        detail=f"queued write to {measurement} rejected: {exc}",
                        trigger=Trigger.EXTERNAL_CALLS,
                    )
            else:
                if self.breaker is not None:
                    self.breaker.record_success()

        self.scheduler.schedule(delay, fire)


class AuthService:
    """A RADIUS-like authentication service (802.1X via chewie in FAUCET).

    ``api_version`` changes the expected credential argument order —
    modelling the argument-order library break class of external-call bugs.
    """

    def __init__(self, *, api_version: int = 1, available: bool = True) -> None:
        self.api_version = api_version
        self.available = available
        self._granted: set[str] = set()

    def authenticate(self, first: str, second: str) -> bool:
        """v1 expects ``(mac, secret)``; v2 flipped to ``(secret, mac)``.

        Returns True and records the MAC on success; a caller compiled
        against the wrong version silently authorizes garbage — an
        incorrect-behaviour (byzantine) bug, not a crash.
        """
        if not self.available:
            raise ServiceUnavailableError("auth service is down")
        mac = first if self.api_version == 1 else second
        if ":" not in mac:
            return False
        self._granted.add(mac)
        return True

    def is_authorized(self, mac: str) -> bool:
        return mac in self._granted
