"""External services the controller integrates with.

``TimeSeriesDB`` stands in for InfluxDB: api_version 1 coerced field values;
api_version 2 rejects non-numeric fields with a type error — the contract
change behind FAUCET-355 (Gauge crashing on a data-type mismatch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import SimulationError


class ServiceTypeError(SimulationError):
    """The external service rejected a write because of a field type."""


class ServiceUnavailableError(SimulationError):
    """The external service is down or unreachable."""


@dataclass
class DataPoint:
    """One stored measurement row."""

    measurement: str
    fields: dict[str, float]
    timestamp: float


class TimeSeriesDB:
    """A typed time-series store with a version-dependent write contract."""

    def __init__(self, *, api_version: int = 2, available: bool = True) -> None:
        if api_version not in (1, 2):
            raise SimulationError(f"unsupported api_version {api_version}")
        self.api_version = api_version
        self.available = available
        self.points: list[DataPoint] = []

    def write(
        self, measurement: str, fields: Mapping[str, object], *, timestamp: float
    ) -> None:
        """Store a row.

        api_version 1 silently coerces stringly-typed numbers (the lenient
        legacy behaviour); api_version 2 raises :class:`ServiceTypeError`
        on any non-numeric field value.
        """
        if not self.available:
            raise ServiceUnavailableError(f"tsdb is down (write to {measurement})")
        coerced: dict[str, float] = {}
        for key, value in fields.items():
            if isinstance(value, bool) or not isinstance(value, (int, float, str)):
                raise ServiceTypeError(
                    f"field {key!r} has unsupported type {type(value).__name__}"
                )
            if isinstance(value, str):
                if self.api_version >= 2:
                    raise ServiceTypeError(
                        f"field {key!r} is a string; api v2 requires numeric fields"
                    )
                try:
                    coerced[key] = float(value)
                except ValueError:
                    raise ServiceTypeError(
                        f"field {key!r} is not parseable as a number: {value!r}"
                    ) from None
            else:
                coerced[key] = float(value)
        self.points.append(
            DataPoint(measurement=measurement, fields=coerced, timestamp=timestamp)
        )

    def count(self, measurement: str | None = None) -> int:
        if measurement is None:
            return len(self.points)
        return sum(1 for p in self.points if p.measurement == measurement)


class AuthService:
    """A RADIUS-like authentication service (802.1X via chewie in FAUCET).

    ``api_version`` changes the expected credential argument order —
    modelling the argument-order library break class of external-call bugs.
    """

    def __init__(self, *, api_version: int = 1, available: bool = True) -> None:
        self.api_version = api_version
        self.available = available
        self._granted: set[str] = set()

    def authenticate(self, first: str, second: str) -> bool:
        """v1 expects ``(mac, secret)``; v2 flipped to ``(secret, mac)``.

        Returns True and records the MAC on success; a caller compiled
        against the wrong version silently authorizes garbage — an
        incorrect-behaviour (byzantine) bug, not a crash.
        """
        if not self.available:
            raise ServiceUnavailableError("auth service is down")
        mac = first if self.api_version == 1 else second
        if ":" not in mac:
            return False
        self._granted.add(mac)
        return True

    def is_authorized(self, mac: str) -> bool:
        return mac in self._granted
