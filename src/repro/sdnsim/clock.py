"""Simulated time and a discrete-event scheduler."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError


class SimClock:
    """Monotonic simulated clock (seconds as float)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise SimulationError(f"clock cannot go backwards: {t} < {self._now}")
        self._now = t


class EventScheduler:
    """Min-heap discrete-event loop over a :class:`SimClock`.

    Callbacks scheduled at equal times run in scheduling order (a strictly
    increasing sequence number breaks ties), which keeps runs deterministic.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(
            self._heap, (self.clock.now + delay, next(self._sequence), callback)
        )

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self.clock.now:
            raise SimulationError(f"cannot schedule in the past: {when}")
        heapq.heappush(self._heap, (when, next(self._sequence), callback))

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed

    def run(self, *, until: float | None = None, max_events: int = 1_000_000) -> None:
        """Drain the event heap.

        ``until`` stops the loop once the next event lies beyond that time
        (the clock still advances to ``until``).  ``max_events`` guards
        against runaway feedback loops — exceeding it raises, because an
        unbounded event cascade is a simulation bug, not a result.
        """
        events_run = 0
        while self._heap:
            when, _seq, callback = self._heap[0]
            if until is not None and when > until:
                self.clock.advance_to(until)
                return
            heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback()
            self._processed += 1
            events_run += 1
            if events_run > max_events:
                raise SimulationError(
                    f"event cascade exceeded {max_events} events; "
                    "likely a feedback loop in the scenario"
                )
        if until is not None:
            self.clock.advance_to(until)
