"""Controller runtime: hosts applications, dispatches control messages.

Failure semantics mirror real controllers:

* an unhandled exception in an app handler marks that app's *component*
  failed; if the app is ``critical`` the whole controller crashes
  (fail-stop), otherwise the controller keeps running degraded (the
  gray-failure mode that dominates the paper's byzantine class);
* northbound API latency follows a worker-pool contention model — with a
  global lock (CORD's Python GIL situation, CORD-1734) adding workers
  *increases* per-call latency instead of dividing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.errors import SimulationError
from repro.sdnsim.clock import EventScheduler
from repro.sdnsim.config import ControllerConfig
from repro.sdnsim.messages import (
    Action,
    EchoReply,
    EchoRequest,
    FlowMod,
    FlowRemoved,
    Packet,
    PacketIn,
    PacketOut,
    PortStatus,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdnsim.datapath import Switch


class App(Protocol):
    """Controller application interface.

    Apps may implement any subset of the hooks; the runtime checks with
    ``hasattr``.  ``name`` identifies the component for liveness tracking.
    """

    name: str
    critical: bool

    def on_start(self, runtime: "ControllerRuntime") -> None: ...


@dataclass
class ErrorRecord:
    """One logged error."""

    time: float
    component: str
    message: str


class ControllerRuntime:
    """The simulated SDN controller."""

    def __init__(
        self,
        scheduler: EventScheduler,
        config: ControllerConfig,
        *,
        name: str = "controller",
        api_base_latency: float = 0.010,
        global_lock: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.config = config
        self.name = name
        self.api_base_latency = api_base_latency
        #: True models a runtime whose workers serialize on a global lock
        #: (CPython GIL) — the CORD-1734 situation.
        self.global_lock = global_lock
        self.apps: list = []
        self.switches: dict[int, "Switch"] = {}
        self.crashed = False
        self.crash_reason: str | None = None
        self.errors: list[ErrorRecord] = []
        self.component_ok: dict[str, bool] = {"forwarding": True}
        self.echo_replies: list[EchoReply] = []
        self.api_latencies: list[float] = []
        self._api_inflight = 0

    # -- wiring --------------------------------------------------------------
    def add_app(self, app) -> None:
        if self.crashed:
            raise SimulationError("cannot add apps to a crashed controller")
        self.apps.append(app)
        self.component_ok[app.name] = True

    def start(self) -> None:
        for app in self.apps:
            self._guarded(app, "on_start", self)

    def register_switch(self, switch: "Switch") -> None:
        self.switches[switch.dpid] = switch

    # -- failure handling -------------------------------------------------------
    def log_error(self, component: str, message: str) -> None:
        self.errors.append(
            ErrorRecord(time=self.scheduler.clock.now, component=component, message=message)
        )

    def _fail_component(self, component: str, message: str, *, critical: bool) -> None:
        self.component_ok[component] = False
        self.log_error(component, message)
        if critical:
            self.crashed = True
            self.crash_reason = f"{component}: {message}"

    def _guarded(self, app, hook: str, *args):
        """Invoke an app hook, converting exceptions into failures.

        Returns the handler's return value; a handler returning ``False``
        vetoes further propagation of the event (used by input validators
        to drop malformed messages before fragile apps see them).
        """
        if self.crashed or not self.component_ok.get(app.name, False):
            return None
        handler = getattr(app, hook, None)
        if handler is None:
            return None
        try:
            return handler(*args)
        except Exception as exc:  # noqa: BLE001 - fault boundary by design
            self._fail_component(
                app.name,
                f"{type(exc).__name__}: {exc}",
                critical=getattr(app, "critical", False),
            )
            return None

    # -- message dispatch -----------------------------------------------------
    def handle_message(self, message) -> None:
        """Southbound entry point: dispatch one control message to apps."""
        if self.crashed:
            return
        if isinstance(message, PacketIn):
            for app in self.apps:
                if self._guarded(app, "on_packet_in", self, message) is False:
                    break  # a validator vetoed the event
        elif isinstance(message, PortStatus):
            for app in self.apps:
                self._guarded(app, "on_port_status", self, message)
        elif isinstance(message, FlowRemoved):
            for app in self.apps:
                self._guarded(app, "on_flow_removed", self, message)
        elif isinstance(message, EchoRequest):
            self.echo_replies.append(
                EchoReply(dpid=message.dpid, sequence=message.sequence)
            )
        else:
            raise SimulationError(f"unhandled message type {type(message).__name__}")

    # -- southbound actions ------------------------------------------------------
    def install_flow(self, flow_mod: FlowMod) -> None:
        """Install a flow, letting apps transform the actions first.

        The transform hook is how the mirror app adds copy-to-mirror-port
        actions to flows other apps install (and where FAUCET-1623's missing
        broadcast case lives).
        """
        if self.crashed:
            return
        actions = flow_mod.actions
        for app in self.apps:
            transform = getattr(app, "transform_actions", None)
            if transform is not None and self.component_ok.get(app.name, False):
                try:
                    actions = tuple(transform(flow_mod.dpid, flow_mod.match, actions))
                except Exception as exc:  # noqa: BLE001
                    self._fail_component(
                        app.name,
                        f"{type(exc).__name__}: {exc}",
                        critical=getattr(app, "critical", False),
                    )
        switch = self._switch(flow_mod.dpid)
        switch.apply_flow_mod(
            FlowMod(
                dpid=flow_mod.dpid,
                match=flow_mod.match,
                actions=actions,
                priority=flow_mod.priority,
                idle_timeout=flow_mod.idle_timeout,
            )
        )

    def send_packet_out(self, packet_out: PacketOut, *, in_port: int) -> None:
        if self.crashed:
            return
        actions = packet_out.actions
        for app in self.apps:
            transform = getattr(app, "transform_packet_out", None)
            if transform is not None and self.component_ok.get(app.name, False):
                try:
                    actions = tuple(
                        transform(packet_out.dpid, packet_out.packet, actions, in_port)
                    )
                except Exception as exc:  # noqa: BLE001
                    self._fail_component(
                        app.name,
                        f"{type(exc).__name__}: {exc}",
                        critical=getattr(app, "critical", False),
                    )
        switch = self._switch(packet_out.dpid)
        switch.execute_actions(packet_out.packet, actions, in_port=in_port)

    def _switch(self, dpid: int) -> "Switch":
        try:
            return self.switches[dpid]
        except KeyError:
            raise SimulationError(f"no switch with dpid {dpid}") from None

    # -- northbound API (worker contention model) ---------------------------------
    def api_call(self, name: str) -> float:
        """Simulate one northbound API call; returns its latency (seconds).

        With ``global_lock`` the worker pool serializes: each additional
        worker adds contention overhead (context switching + lock handoff),
        so latency grows with the pool size — reducing workers to 1 is the
        CORD-1734 fix.  Without the global lock, workers genuinely divide
        the queueing delay.
        """
        if self.crashed:
            raise SimulationError("controller crashed; API unavailable")
        workers = self.config.workers
        if self.global_lock:
            contention = 1.0 + 0.8 * (workers - 1)
            latency = self.api_base_latency * contention
        else:
            latency = self.api_base_latency / min(workers, 8)
        self.api_latencies.append(latency)
        return latency

    # -- health -------------------------------------------------------------------
    @property
    def healthy_components(self) -> list[str]:
        return sorted(c for c, ok in self.component_ok.items() if ok)

    @property
    def failed_components(self) -> list[str]:
        return sorted(c for c, ok in self.component_ok.items() if not ok)
