"""Controller configuration: schema, validation, typed access.

Validation is the *well-behaved* path; the fault injector deliberately
constructs configurations that bypass validation (``validate=False``) to
model latent misconfigurations reaching runtime code — the paper's dominant
trigger class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError

#: Top-level schema: key -> (expected type, required).
_SCHEMA: dict[str, tuple[type, bool]] = {
    "vlans": (dict, False),
    "acls": (list, False),
    "mirror": (dict, False),
    "multicast": (dict, False),
    "stats": (dict, False),
    "workers": (int, False),
}


def validate_config(raw: Mapping[str, Any]) -> None:
    """Validate a raw configuration mapping; raise on any violation."""
    for key in raw:
        if key not in _SCHEMA:
            raise ConfigurationError(f"unknown configuration key {key!r}")
    for key, (expected, required) in _SCHEMA.items():
        if key not in raw:
            if required:
                raise ConfigurationError(f"missing required key {key!r}")
            continue
        if not isinstance(raw[key], expected):
            raise ConfigurationError(
                f"key {key!r} must be {expected.__name__}, "
                f"got {type(raw[key]).__name__}"
            )
    mirror = raw.get("mirror", {})
    for dpid, spec in mirror.items():
        if not isinstance(spec, Mapping) or not {
            "source_port",
            "mirror_port",
        } <= set(spec):
            raise ConfigurationError(
                f"mirror entry for dpid {dpid!r} needs source_port and mirror_port"
            )
    workers = raw.get("workers", 1)
    if isinstance(workers, int) and workers < 1:
        raise ConfigurationError("workers must be >= 1")
    acls = raw.get("acls", [])
    for i, rule in enumerate(acls):
        if not isinstance(rule, Mapping) or "src_mac" not in rule or "dst_mac" not in rule:
            raise ConfigurationError(f"acl rule {i} needs src_mac and dst_mac")


@dataclass
class ControllerConfig:
    """Typed wrapper around the raw configuration mapping."""

    raw: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def load(
        cls, raw: Mapping[str, Any], *, validate: bool = True
    ) -> "ControllerConfig":
        """Build a config; ``validate=False`` admits latent misconfigurations
        (used only by fault injection)."""
        if validate:
            validate_config(raw)
        return cls(raw=dict(raw))

    @property
    def workers(self) -> int:
        return int(self.raw.get("workers", 1))

    @property
    def mirror_specs(self) -> dict[int, dict[str, int]]:
        return dict(self.raw.get("mirror", {}))

    @property
    def acl_rules(self) -> list[dict[str, str]]:
        return list(self.raw.get("acls", []))

    @property
    def multicast(self) -> dict[str, Any] | None:
        return self.raw.get("multicast")

    @property
    def stats(self) -> dict[str, Any]:
        return dict(self.raw.get("stats", {}))
