"""Optical access devices (OLT/ONU) behind a VOLTHA-like adapter.

Models the hardware-reboot bug class the paper highlights (SS V-A): VOL-549,
where the VOLTHA core thread gets stuck waiting for the adapter to connect
if the OLT reboots after initial activation — fixed by adding a timeout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sdnsim.clock import EventScheduler


class OltState(enum.Enum):
    """Lifecycle of an optical line terminal."""

    OFFLINE = "offline"
    ACTIVATING = "activating"
    ACTIVE = "active"
    REBOOTING = "rebooting"


@dataclass
class OnuDevice:
    """An optical network unit hanging off an OLT port."""

    serial: str
    olt_port: int
    is_active: bool = False


class OltDevice:
    """An optical line terminal with attached ONUs."""

    def __init__(self, device_id: str, *, boot_delay: float = 2.0) -> None:
        self.device_id = device_id
        self.boot_delay = boot_delay
        self.state = OltState.OFFLINE
        self.onus: list[OnuDevice] = []

    def attach_onu(self, onu: OnuDevice) -> None:
        self.onus.append(onu)

    def power_on(self, scheduler: EventScheduler, on_ready) -> None:
        """Begin booting; ``on_ready`` fires after ``boot_delay``."""
        self.state = OltState.ACTIVATING

        def ready() -> None:
            # A reboot that started during activation wins.
            if self.state is OltState.ACTIVATING:
                self.state = OltState.ACTIVE
                on_ready()

        scheduler.schedule(self.boot_delay, ready)

    def reboot(self, scheduler: EventScheduler, on_ready) -> None:
        """Unplanned reboot: drops to REBOOTING, comes back after delay.

        Crucially, a rebooted OLT does *not* re-send the original connect
        indication by itself — the adapter must re-activate it.  That gap is
        what VOL-549 is about.
        """
        self.state = OltState.REBOOTING
        for onu in self.onus:
            onu.is_active = False

        def ready() -> None:
            if self.state is OltState.REBOOTING:
                self.state = OltState.ACTIVE
                on_ready()

        scheduler.schedule(self.boot_delay, ready)


class VolthaAdapter:
    """The adapter layer between the SDN controller and optical hardware.

    ``activate`` powers an OLT and *waits* for its connect indication.  With
    ``connect_timeout=None`` (the buggy configuration) a reboot arriving
    after initial activation leaves the core waiting forever — the stall of
    VOL-549.  With a timeout the adapter notices and re-activates.
    """

    def __init__(
        self, scheduler: EventScheduler, *, connect_timeout: float | None = None
    ) -> None:
        self.scheduler = scheduler
        self.connect_timeout = connect_timeout
        self.olts: dict[str, OltDevice] = {}
        self.waiting_for: set[str] = set()
        self.activated: set[str] = set()
        self.timeouts_fired: int = 0

    @property
    def core_blocked(self) -> bool:
        """True while the core is stuck waiting on any device."""
        return bool(self.waiting_for)

    def manage(self, olt: OltDevice) -> None:
        if olt.device_id in self.olts:
            raise SimulationError(f"OLT {olt.device_id} already managed")
        self.olts[olt.device_id] = olt

    def activate(self, device_id: str) -> None:
        """Power on an OLT and wait for its connect indication."""
        olt = self._olt(device_id)
        self.waiting_for.add(device_id)
        olt.power_on(self.scheduler, lambda: self._on_connect(device_id))
        self._arm_timeout(device_id)

    def _arm_timeout(self, device_id: str) -> None:
        if self.connect_timeout is None:
            return

        def check() -> None:
            if device_id in self.waiting_for:
                # Timed out waiting: re-activate the device (the VOL-549 fix).
                self.timeouts_fired += 1
                olt = self._olt(device_id)
                olt.power_on(self.scheduler, lambda: self._on_connect(device_id))
                self._arm_timeout(device_id)

        self.scheduler.schedule(self.connect_timeout, check)

    def _on_connect(self, device_id: str) -> None:
        self.waiting_for.discard(device_id)
        self.activated.add(device_id)
        for onu in self._olt(device_id).onus:
            onu.is_active = True

    def notify_reboot(self, device_id: str) -> None:
        """Hardware rebooted underneath us: we are waiting again.

        The buggy adapter waits for a connect indication the OLT will never
        spontaneously send; only a timeout (if configured) recovers.
        """
        olt = self._olt(device_id)
        self.activated.discard(device_id)
        self.waiting_for.add(device_id)
        olt.reboot(self.scheduler, lambda: None)  # OLT boots but stays silent
        self._arm_timeout(device_id)

    def _olt(self, device_id: str) -> OltDevice:
        try:
            return self.olts[device_id]
        except KeyError:
            raise SimulationError(f"unknown OLT {device_id!r}") from None
