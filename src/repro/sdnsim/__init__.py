"""A small event-driven SDN control-plane simulator.

The paper argues its taxonomy provides "the building blocks for designing
representative and informed fault-injectors for testing SDN controllers".
This package is the testbed those injectors run against: switches exchanging
OpenFlow-style messages with a controller runtime hosting applications
(L2 learning, ACL, mirroring, stats export, multicast), external services
(a typed time-series DB standing in for InfluxDB), and optical devices
behind a VOLTHA-like adapter.

Time is simulated (discrete-event); nothing here uses threads or wall-clock
time, so every scenario is deterministic and fast.
"""

from repro.sdnsim.clock import EventScheduler, SimClock
from repro.sdnsim.messages import (
    EchoRequest,
    FlowMod,
    FlowRemoved,
    Packet,
    PacketIn,
    PacketOut,
    PortStatus,
)
from repro.sdnsim.datapath import FlowEntry, Switch
from repro.sdnsim.config import ControllerConfig, validate_config
from repro.sdnsim.services import AuthService, GuardedTimeSeriesDB, TimeSeriesDB
from repro.sdnsim.optical import OltDevice, OnuDevice, VolthaAdapter
from repro.sdnsim.cluster import ClusterInstance, ControllerCluster, InstanceState
from repro.sdnsim.controller import ControllerRuntime
from repro.sdnsim.apps import (
    AclApp,
    InputValidatorApp,
    L2LearningSwitch,
    MirrorApp,
    MulticastHandler,
    StatsGauge,
)
from repro.sdnsim.observers import Observation, OutcomeClassifier
from repro.sdnsim.topology import Fabric, Link, LinkDiscovery, ShortestPathRouter

__all__ = [
    "EventScheduler",
    "SimClock",
    "EchoRequest",
    "FlowMod",
    "FlowRemoved",
    "Packet",
    "PacketIn",
    "PacketOut",
    "PortStatus",
    "FlowEntry",
    "Switch",
    "ControllerConfig",
    "validate_config",
    "AuthService",
    "GuardedTimeSeriesDB",
    "TimeSeriesDB",
    "OltDevice",
    "OnuDevice",
    "VolthaAdapter",
    "ClusterInstance",
    "ControllerCluster",
    "InstanceState",
    "ControllerRuntime",
    "AclApp",
    "InputValidatorApp",
    "L2LearningSwitch",
    "MirrorApp",
    "MulticastHandler",
    "StatsGauge",
    "Observation",
    "OutcomeClassifier",
    "Fabric",
    "Link",
    "LinkDiscovery",
    "ShortestPathRouter",
]
