"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TaxonomyError(ReproError):
    """A bug label violates the taxonomy (unknown tag, >1 tag per dimension,
    or an inconsistent sub-category)."""


class TrackerError(ReproError):
    """Invalid operation against an issue-tracker substrate."""


class CorpusError(ReproError):
    """Corpus generation or (de)serialization failure."""


class NotFittedError(ReproError):
    """A model was used before ``fit`` was called."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to make progress."""


class CodeModelError(ReproError):
    """Malformed code model handed to the smell analyzer."""


class VersionError(ReproError):
    """Unparseable version string or invalid version range."""


class StaticAnalysisError(ReproError):
    """sdnlint could not load or analyze a source path."""


class SimulationError(ReproError):
    """Invalid simulator configuration or runtime misuse."""


class ConfigurationError(SimulationError):
    """A controller configuration failed validation (this is the *well
    behaved* path; injected faults bypass validation on purpose)."""


class InjectionError(ReproError):
    """A fault specification cannot be applied to the given scenario."""


class ScheduleError(ReproError):
    """A fault schedule (or one of its events) is malformed: unknown action,
    missing or non-numeric field, bad JSON shape, or an event before t=0."""


class FuzzError(ReproError):
    """Invalid fuzzing-campaign configuration, or a resume that cannot be
    honored against the journal/corpus on disk."""


class FrameworkError(ReproError):
    """Unknown fault-tolerance framework or invalid capability query."""


class ResilienceError(ReproError):
    """Invalid resilience-policy configuration or misuse."""


class RetryBudgetExceededError(ResilienceError):
    """Every retry in the policy's budget was spent without success."""


class DeadlineExceededError(ResilienceError):
    """An operation overran its time budget on the simulated clock."""


class BulkheadFullError(ResilienceError):
    """A bulkhead rejected a call because its concurrency cap is reached."""


class CircuitOpenError(ResilienceError):
    """A circuit breaker rejected a call while open."""


class SupervisionError(ResilienceError):
    """A supervision tree exhausted its restart-intensity budget."""


class ObservabilityError(ReproError):
    """Invalid metric registration, malformed metrics export, or a
    trajectory/gate configuration that cannot be evaluated."""


class TrajectoryGateError(ObservabilityError):
    """A benchmark trajectory check found a regression beyond tolerance."""


class StreamError(ReproError):
    """Malformed stream event, invalid ingest configuration, or a stream
    state snapshot that cannot be honored."""


class TransientSourceError(StreamError):
    """A fetch against an event source failed in a retryable way."""


class SourceOutageError(TransientSourceError):
    """The upstream tracker was unreachable for this fetch attempt."""


class RateLimitedError(TransientSourceError):
    """The upstream tracker throttled this fetch attempt.

    ``retry_after`` carries the server's requested backoff in simulated
    seconds; retry loops honor it as a floor under their own schedule.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServingError(ReproError):
    """Invalid serving-daemon configuration or request."""


class BackendError(ServingError):
    """A serving backend failed to execute a request (the retryable class)."""


class PoisonRequestError(BackendError):
    """A request whose payload deterministically crashes the backend."""
