"""Online learning over the event stream: nothing ever needs a full retrain.

Three pieces, all bounded-memory in corpus size:

- :class:`HashingVectorizer` — the hashing trick: tokens map to a fixed
  number of signed feature slots through a seeded CRC32, so the feature
  space never grows no matter how many distinct tokens a million-bug
  stream produces.  No vocabulary, no fitting, O(1) memory.

- :class:`OnlineLinearSVM` — one-vs-rest Pegasos SGD exposed as
  ``partial_fit`` minibatches.  Weights are kept as ``w = scale · v``
  (the standard Pegasos trick): the per-step L2 decay multiplies the
  scalar, updates touch only the non-zero feature slots of each sample,
  so a step costs O(nnz), not O(n_features).  Serialization round-trips
  bit-exactly (JSON floats use ``repr``), which the kill/resume
  bit-identity of the ingest pipeline depends on.

- :class:`RollingDistribution` — windowed symptom×root-cause counts in
  *event-time* day buckets.  All buckets are retained and the window is
  applied at query time, so the distribution a consumer reads is a pure
  function of the *set* of applied events — independent of arrival order,
  which is what the permutation/duplication invariance property checks.
"""

from __future__ import annotations

import zlib
from datetime import date
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import StreamError

#: Rescale ``v`` into ``scale`` once the scalar decays this far, keeping
#: the representation well inside float64 range on unbounded streams.
_RESCALE_FLOOR = 1e-6


class HashingVectorizer:
    """Seeded hashing-trick vectorizer over pre-tokenized text."""

    def __init__(self, *, n_features: int = 4096, seed: int = 0) -> None:
        if n_features < 2 or n_features & (n_features - 1):
            raise StreamError(
                f"n_features must be a power of two >= 2, got {n_features}"
            )
        self.n_features = n_features
        self.seed = seed
        self._mask = n_features - 1

    def transform_tokens(self, tokens: Iterable[str]) -> dict[int, float]:
        """One L2-normalized sparse row as ``{slot: value}``."""
        row: dict[int, float] = {}
        for token in tokens:
            h = zlib.crc32(f"{self.seed}:{token}".encode("utf-8"))
            slot = (h >> 1) & self._mask
            sign = 1.0 if h & 1 else -1.0
            row[slot] = row.get(slot, 0.0) + sign
        norm = sum(value * value for value in row.values()) ** 0.5
        if norm > 0.0:
            row = {slot: value / norm for slot, value in row.items()}
        return {slot: value for slot, value in row.items() if value != 0.0}

    def to_dense(self, rows: Sequence[Mapping[int, float]]) -> np.ndarray:
        """Materialize sparse rows as a dense matrix (for batch baselines)."""
        X = np.zeros((len(rows), self.n_features))
        for i, row in enumerate(rows):
            for slot, value in row.items():
                X[i, slot] = value
        return X


class OnlineLinearSVM:
    """One-vs-rest Pegasos SVM trained through ``partial_fit`` minibatches.

    Parameters mirror :class:`repro.ml.svm.LinearSVM` where they overlap;
    ``t0`` plays the role of the batch trainer's one-virtual-epoch step
    damping (``t = n_samples`` there), and balanced class weights are
    computed from *running* label counts — after one pass they converge to
    the batch trainer's capped balanced weights.
    """

    def __init__(
        self,
        *,
        n_features: int = 4096,
        regularization: float = 1e-3,
        t0: int = 100,
        class_weight: str | None = "balanced",
        weight_cap: float = 3.0,
    ) -> None:
        if n_features < 1:
            raise StreamError(f"n_features must be >= 1, got {n_features}")
        if regularization <= 0:
            raise StreamError("regularization must be > 0")
        if t0 < 1:
            raise StreamError(f"t0 must be >= 1, got {t0}")
        if class_weight not in (None, "balanced"):
            raise StreamError("class_weight must be None or 'balanced'")
        self.n_features = n_features
        self.regularization = regularization
        self.t0 = t0
        self.class_weight = class_weight
        self.weight_cap = weight_cap
        self.t = t0
        self.counts: dict[str, int] = {}
        self._v: dict[str, np.ndarray] = {}
        self._scale: dict[str, float] = {}
        self._bias: dict[str, float] = {}

    # -- training --------------------------------------------------------------
    @property
    def classes_(self) -> list[str]:
        return sorted(self._v)

    @property
    def samples_seen(self) -> int:
        return self.t - self.t0

    def _ensure_class(self, label: str) -> None:
        if label not in self._v:
            self._v[label] = np.zeros(self.n_features)
            self._scale[label] = 1.0
            self._bias[label] = 0.0
            self.counts.setdefault(label, 0)

    def _sample_weight(self, cls: str, positive: bool) -> float:
        if self.class_weight is None:
            return 1.0
        seen = max(self.samples_seen, 1)
        n_pos = max(self.counts.get(cls, 0), 1)
        n_side = n_pos if positive else max(seen - n_pos, 1)
        return min(seen / (2.0 * n_side), self.weight_cap)

    def partial_fit(
        self, rows: Sequence[Mapping[int, float]], labels: Sequence[str]
    ) -> "OnlineLinearSVM":
        """One SGD pass over the minibatch, in the given order."""
        if len(rows) != len(labels):
            raise StreamError("rows and labels have different lengths")
        lam = self.regularization
        for row, label in zip(rows, labels):
            self._ensure_class(label)
            self.t += 1
            self.counts[label] = self.counts.get(label, 0) + 1
            eta = 1.0 / (lam * self.t)
            decay = 1.0 - eta * lam
            for cls in self.classes_:
                v, scale, bias = self._v[cls], self._scale[cls], self._bias[cls]
                y = 1.0 if cls == label else -1.0
                margin = y * (scale * _sparse_dot(v, row) + bias)
                scale *= decay
                if margin < 1.0:
                    step = eta * self._sample_weight(cls, y > 0) * y
                    for slot, value in row.items():
                        v[slot] += step * value / scale
                    bias += step
                if scale < _RESCALE_FLOOR:
                    v *= scale
                    scale = 1.0
                self._scale[cls] = scale
                self._bias[cls] = bias
        return self

    # -- inference -------------------------------------------------------------
    def decision_function(self, rows: Sequence[Mapping[int, float]]) -> np.ndarray:
        if not self._v:
            raise StreamError("OnlineLinearSVM has seen no labeled samples yet")
        classes = self.classes_
        scores = np.zeros((len(rows), len(classes)))
        for i, row in enumerate(rows):
            for j, cls in enumerate(classes):
                scores[i, j] = (
                    self._scale[cls] * _sparse_dot(self._v[cls], row)
                    + self._bias[cls]
                )
        return scores

    def predict(self, rows: Sequence[Mapping[int, float]]) -> list[str]:
        scores = self.decision_function(rows)
        classes = self.classes_
        return [classes[int(i)] for i in np.argmax(scores, axis=1)]

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "n_features": self.n_features,
            "regularization": self.regularization,
            "t0": self.t0,
            "class_weight": self.class_weight,
            "weight_cap": self.weight_cap,
            "t": self.t,
            "counts": {cls: self.counts[cls] for cls in sorted(self.counts)},
            "classes": {
                cls: {
                    "scale": self._scale[cls],
                    "bias": self._bias[cls],
                    "v": self._v[cls].tolist(),
                }
                for cls in self.classes_
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OnlineLinearSVM":
        model = cls(
            n_features=int(data["n_features"]),
            regularization=float(data["regularization"]),
            t0=int(data["t0"]),
            class_weight=data.get("class_weight"),
            weight_cap=float(data.get("weight_cap", 3.0)),
        )
        model.t = int(data["t"])
        model.counts = {str(k): int(v) for k, v in data["counts"].items()}
        for name, packed in data["classes"].items():
            vec = np.asarray(packed["v"], dtype=np.float64)
            if vec.shape != (model.n_features,):
                raise StreamError(
                    f"class {name!r}: weight vector has shape {vec.shape}, "
                    f"expected ({model.n_features},)"
                )
            model._v[name] = vec
            model._scale[name] = float(packed["scale"])
            model._bias[name] = float(packed["bias"])
        return model


def _sparse_dot(v: np.ndarray, row: Mapping[int, float]) -> float:
    return float(sum(v[slot] * value for slot, value in row.items()))


class RollingDistribution:
    """Symptom×root-cause counts in event-time day buckets.

    Buckets are never evicted (memory is bounded by the stream's *time
    span*, not its volume) and the window is applied at query time — so
    the answer depends only on which events were applied, never on the
    order they arrived in.
    """

    def __init__(self, *, window_days: int = 30) -> None:
        if window_days < 1:
            raise StreamError(f"window_days must be >= 1, got {window_days}")
        self.window_days = window_days
        #: day ordinal -> "symptom|root_cause" -> count of unique events.
        self.buckets: dict[int, dict[str, int]] = {}

    def observe(self, at: str, symptom: str, root_cause: str) -> None:
        day = date.fromisoformat(at[:10]).toordinal()
        key = f"{symptom}|{root_cause}"
        bucket = self.buckets.setdefault(day, {})
        bucket[key] = bucket.get(key, 0) + 1

    def window(self, *, end_day: int | None = None) -> dict[str, int]:
        """Merged counts over the trailing window ending at ``end_day``
        (default: the latest observed bucket)."""
        if not self.buckets:
            return {}
        end = max(self.buckets) if end_day is None else end_day
        start = end - self.window_days + 1
        merged: dict[str, int] = {}
        for day, bucket in self.buckets.items():
            if start <= day <= end:
                for key, count in bucket.items():
                    merged[key] = merged.get(key, 0) + count
        return dict(sorted(merged.items()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_days": self.window_days,
            "buckets": {
                str(day): dict(sorted(self.buckets[day].items()))
                for day in sorted(self.buckets)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RollingDistribution":
        dist = cls(window_days=int(data["window_days"]))
        for day, bucket in data["buckets"].items():
            dist.buckets[int(day)] = {
                str(k): int(v) for k, v in bucket.items()
            }
        return dist
