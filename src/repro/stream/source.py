"""Event sources: tracker-derived and synthetic streams.

Two producers feed the ingestion plane:

- :func:`tracker_events` flattens the JIRA/GitHub tracker substrates into
  the append-only event log they would have emitted live: one
  ``issue-created`` per report, one ``issue-commented`` per comment, one
  ``gerrit-linked`` per linked change, one ``issue-closed`` per
  resolution — ordered by event time.  Closed events carry the bug's
  taxonomy tags when a labeled dataset is supplied, which is what the
  online learner trains on.

- :func:`synthetic_event` scales the same shape to millions of events.
  Event ``i`` of a stream seeded ``S`` is a pure function of ``(S, i)``
  and nothing else — ``random.Random(f"stream:{S}:{i}")`` — so any
  sub-range of the stream can be regenerated independently, in any order,
  by any process.  That property is what makes checkpointed resume exact:
  a consumer that recorded "``n`` wire records consumed" can rebuild the
  identical remainder of the stream without replaying the prefix.
"""

from __future__ import annotations

import random
import re
from datetime import date
from typing import TYPE_CHECKING, Iterable

from repro.stream.events import TrackerEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.corpus.dataset import BugDataset
    from repro.trackers.github import GithubTracker
    from repro.trackers.jira import JiraTracker

_TOKEN_RE = re.compile(r"[a-z][a-z0-9_]+")

#: Synthetic stream vocabulary: the symptom/root-cause flavored terms the
#: paper's keyword analysis keeps surfacing, so hashed features stay in a
#: realistic distribution.
_VOCAB = (
    "controller crash deadlock timeout flow switch mastership election "
    "quorum partition config yaml vlan acl reload intent link discovery "
    "packet drop latency memory leak thread race lock retry channel "
    "openflow gerrit patch regression restart failover sync byzantine "
    "stale cluster store topology port stats poll gauge faucet onos cord"
).split()

_CONTROLLERS = ("onos", "faucet", "cord")
_SEVERITIES = ("blocker", "critical")
_SYMPTOMS = (
    "byzantine", "crash", "performance", "unable_to_boot", "data_loss",
)
_ROOT_CAUSES = (
    "logic_error", "sync_error", "memory_error", "human_misconfiguration",
    "dependency_error",
)
#: (event_type, cumulative-weight) ladder for the synthetic stream.
_TYPE_LADDER = (
    ("issue-created", 0.22),
    ("issue-updated", 0.42),
    ("issue-commented", 0.70),
    ("gerrit-linked", 0.80),
    ("issue-closed", 1.00),
)

#: Synthetic stream epoch (the study window's first day).
_EPOCH_ORDINAL = date(2017, 1, 1).toordinal()


def synthetic_event(seed: int, index: int, *, pool: int = 5000) -> TrackerEvent:
    """Event ``index`` of the synthetic stream seeded ``seed``.

    Pure function of its arguments: no global RNG, no wall clock, no
    state.  ``pool`` bounds the distinct bug ids (and therefore the
    per-bug register memory of any consumer).
    """
    rng = random.Random(f"stream:{seed}:{index}")
    roll = rng.random()
    for event_type, ceiling in _TYPE_LADDER:
        if roll <= ceiling:
            break
    bug_num = rng.randrange(pool)
    controller = _CONTROLLERS[bug_num % len(_CONTROLLERS)]
    tracker = "github" if controller == "faucet" else "jira"
    # One simulated minute per index keeps event time monotone in the
    # base stream (reordering is the fault injector's job, not ours).
    day = date.fromordinal(_EPOCH_ORDINAL + index // 1440)
    at = f"{day.isoformat()}T{(index // 60) % 24:02d}:{index % 60:02d}:00"
    payload: dict[str, object] = {
        "tokens": rng.sample(_VOCAB, k=rng.randint(4, 9)),
    }
    if event_type == "issue-created":
        payload["severity"] = _SEVERITIES[rng.randrange(2)]
    elif event_type == "issue-closed":
        payload["status"] = "closed"
        payload["labels"] = {
            "symptom": _SYMPTOMS[rng.randrange(len(_SYMPTOMS))],
            "root_cause": _ROOT_CAUSES[rng.randrange(len(_ROOT_CAUSES))],
        }
    elif event_type == "gerrit-linked":
        payload["change_id"] = f"I{rng.getrandbits(40):010x}"
    return TrackerEvent(
        event_type=event_type,
        tracker=tracker,
        bug_id=f"{controller.upper()}-{bug_num:06d}",
        controller=controller,
        at=at,
        payload=payload,
    )


def _tokens(text: str, *, limit: int = 40) -> list[str]:
    return _TOKEN_RE.findall(text.lower())[:limit]


def _report_events(report, tracker_name: str, labels) -> Iterable[TrackerEvent]:
    base = dict(
        tracker=tracker_name,
        bug_id=report.bug_id,
        controller=report.controller,
    )
    yield TrackerEvent(
        event_type="issue-created",
        at=report.created_at.isoformat(),
        payload={
            "tokens": _tokens(report.text),
            "severity": report.severity.value if report.severity else None,
            "components": list(report.components),
        },
        **base,
    )
    for comment in report.comments:
        yield TrackerEvent(
            event_type="issue-commented",
            at=comment.created_at.isoformat(),
            payload={"author": comment.author, "tokens": _tokens(comment.body)},
            **base,
        )
    for change in report.gerrit_changes:
        linked_at = change.merged_at or report.created_at
        yield TrackerEvent(
            event_type="gerrit-linked",
            at=linked_at.isoformat(),
            payload={
                "change_id": change.change_id,
                "files_changed": len(change.files_changed),
                "insertions": change.insertions,
                "deletions": change.deletions,
            },
            **base,
        )
    if report.resolved_at is not None:
        payload: dict[str, object] = {
            "status": report.status.value,
            "tokens": _tokens(report.text),
        }
        label = labels.get(report.bug_id)
        if label is not None:
            payload["labels"] = label.tags()
        yield TrackerEvent(
            event_type="issue-closed",
            at=report.resolved_at.isoformat(),
            payload=payload,
            **base,
        )


def tracker_events(
    jira: "JiraTracker",
    github: "GithubTracker",
    *,
    dataset: "BugDataset | None" = None,
) -> list[TrackerEvent]:
    """Flatten both tracker substrates into one time-ordered event log.

    ``dataset`` (when given) supplies the taxonomy labels attached to
    ``issue-closed`` payloads — the ground truth the online learner
    consumes as it streams past.
    """
    labels = (
        {bug.report.bug_id: bug.label for bug in dataset}
        if dataset is not None
        else {}
    )
    events: list[TrackerEvent] = []
    for report in jira.search():
        events.extend(_report_events(report, "jira", labels))
    for report in github.search():
        events.extend(_report_events(report, "github", labels))
    # Total order: event time, then bug id, then type — deterministic for
    # any tracker iteration order.
    events.sort(key=lambda e: (e.at, e.bug_id, e.event_type))
    return events
