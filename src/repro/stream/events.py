"""The append-only tracker event model.

Every mutation a tracker substrate can undergo is represented as one
immutable :class:`TrackerEvent`: issue created/updated/commented/closed
plus Gerrit-link events.  An event's identity is its *canonical digest* —
sha256 over the sorted-key JSON form — which is what exactly-once
application dedups on: two deliveries of the same logical event (an
upstream retry, an injected duplicate, a crash-replayed batch) collapse to
one application no matter how the wire mangled whitespace or key order.

Wire parsing is strict by default: anything that is not a complete, typed,
known-shape event raises :class:`~repro.errors.StreamError` and belongs in
the dead-letter queue.  The ``lenient`` mode is the DLQ *replay* parser:
it additionally strips transport artifacts (BOM, stray whitespace) that
strict ingestion refuses — the offline recovery logic operators run after
fixing an upstream encoding bug.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Mapping

from repro.errors import StreamError

#: The event vocabulary, in no particular order of importance.
EVENT_TYPES = (
    "issue-created",
    "issue-updated",
    "issue-commented",
    "issue-closed",
    "gerrit-linked",
)

_TRACKERS = ("jira", "github")


@dataclass(frozen=True)
class TrackerEvent:
    """One append-only tracker mutation.

    ``at`` is the event time as an ISO-8601 string (strings keep the
    canonical JSON form trivially stable); ``payload`` carries the
    event-type-specific fields (tokens, labels, status, change ids) and
    must be JSON-safe.
    """

    event_type: str
    tracker: str
    bug_id: str
    controller: str
    at: str
    payload: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "event_type": self.event_type,
            "tracker": self.tracker,
            "bug_id": self.bug_id,
            "controller": self.controller,
            "at": self.at,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrackerEvent":
        """Validated construction; raises :class:`StreamError` on any
        structural defect (the DLQ-bound class of failures)."""
        if not isinstance(data, Mapping):
            raise StreamError(f"event record must be an object, got {type(data).__name__}")
        try:
            event_type = str(data["event_type"])
            tracker = str(data["tracker"])
            bug_id = str(data["bug_id"])
            controller = str(data["controller"])
            at = str(data["at"])
            payload = data.get("payload", {})
        except KeyError as exc:
            raise StreamError(f"event record missing field {exc.args[0]!r}") from exc
        if event_type not in EVENT_TYPES:
            raise StreamError(
                f"unknown event type {event_type!r} "
                f"(known: {', '.join(EVENT_TYPES)})"
            )
        if tracker not in _TRACKERS:
            raise StreamError(f"unknown tracker {tracker!r} (known: jira, github)")
        if not bug_id:
            raise StreamError("event record has an empty bug_id")
        try:
            datetime.fromisoformat(at)
        except ValueError as exc:
            raise StreamError(f"unparseable event time {at!r}: {exc}") from exc
        if not isinstance(payload, Mapping):
            raise StreamError(
                f"event payload must be an object, got {type(payload).__name__}"
            )
        return cls(
            event_type=event_type,
            tracker=tracker,
            bug_id=bug_id,
            controller=controller,
            at=at,
            payload=dict(payload),
        )

    # -- identity --------------------------------------------------------------
    def canonical(self) -> str:
        """The canonical wire form: sorted keys, no whitespace."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Truncated sha256 over the canonical form — the dedup key."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:16]

    def digest_int(self) -> int:
        """The digest as a 64-bit int, for compact in-memory dedup sets."""
        return int(self.digest(), 16)


def parse_wire(text: str, *, lenient: bool = False) -> TrackerEvent:
    """Parse one wire record into a validated :class:`TrackerEvent`.

    Strict mode refuses anything that is not exactly one JSON object; the
    lenient mode (DLQ replay) first strips a UTF-8 BOM and surrounding
    whitespace — transport artifacts, not data corruption.
    """
    if lenient:
        text = text.lstrip("﻿ \t\r\n").rstrip()
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise StreamError(f"wire record is not valid JSON: {exc}") from exc
    return TrackerEvent.from_dict(data)
