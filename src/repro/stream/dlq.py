"""Digest-keyed dead-letter queue with ``.reason`` sidecars.

Every wire record the pipeline cannot apply lands here instead of
vanishing: the raw bytes under ``<digest>.raw`` (sha256 of the raw text,
truncated — so re-dead-lettering the same record after a crash replay
rewrites the same file, never duplicates it) and a human-readable
``<digest>.reason`` sidecar saying why.  Both publish atomically
(tmp + fsync + ``os.replace``), the same discipline as every other
artifact in the repo: a SIGKILL mid-dead-letter leaves either nothing or
a complete entry, and either way the replayed batch converges.

:meth:`DeadLetterQueue.entries` is the audit surface (CI uploads it on
failure); lenient replay lives in :func:`repro.stream.ingest.replay_dlq`.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StreamError


def raw_digest(raw: str) -> str:
    """The DLQ file key: truncated sha256 over the raw wire text."""
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class DLQEntry:
    """One dead-lettered record, rehydrated from disk."""

    digest: str
    raw: str
    reason: str


class DeadLetterQueue:
    """Filesystem DLQ rooted at one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def put(self, raw: str, reason: str) -> str:
        """Dead-letter ``raw``; idempotent per raw text.  Returns the key."""
        digest = raw_digest(raw)
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.root / f"{digest}.raw", raw)
        _atomic_write(self.root / f"{digest}.reason", reason + "\n")
        return digest

    def depth(self) -> int:
        """Distinct dead-lettered records currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.raw"))

    def entries(self) -> list[DLQEntry]:
        """Every entry, sorted by digest (deterministic audit order)."""
        if not self.root.is_dir():
            return []
        out: list[DLQEntry] = []
        for path in sorted(self.root.glob("*.raw")):
            digest = path.stem
            reason_path = path.with_suffix(".reason")
            out.append(
                DLQEntry(
                    digest=digest,
                    raw=path.read_text(encoding="utf-8"),
                    reason=(
                        reason_path.read_text(encoding="utf-8").rstrip("\n")
                        if reason_path.exists()
                        else ""
                    ),
                )
            )
        return out

    def remove(self, digest: str) -> None:
        """Drop one entry (used after a successful replay)."""
        raw_path = self.root / f"{digest}.raw"
        if not raw_path.exists():
            raise StreamError(f"{self.root}: no DLQ entry {digest!r}")
        raw_path.unlink()
        (self.root / f"{digest}.reason").unlink(missing_ok=True)


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
