"""Ingestion state: dedup set, bug registers, distributions — crash-safe.

Two design rules make this state *robust by construction*:

1. **Exactly-once via idempotence.**  The ``seen`` set holds the 64-bit
   canonical digest of every applied event; a delivery whose digest is
   already present is a dedup hit, not a second application.  A crash
   between "event applied" and "checkpoint committed" therefore costs
   nothing: the replayed batch re-offers the same digests and they all
   dedup away.

2. **Commutative-idempotent analytics.**  Everything derived from the
   stream — per-bug registers (last-writer-wins on the ``(at, digest)``
   total order), per-type counters over *unique* events, event-time day
   buckets for the rolling distributions — is a pure function of the *set*
   of applied events, so any permutation or duplication of the wire stream
   converges to the same :meth:`StreamState.analytics_digest`.

The full :meth:`StreamState.fingerprint` additionally covers the
order-dependent pieces (operational counters, the online learner) and is
the kill/resume bit-identity yardstick: replay order is deterministic, so
a resumed run must reproduce it exactly.

Snapshots follow the PR-7 fuzzing discipline: canonical JSON, atomic
tmp + fsync + ``os.replace`` writes, journaled digests verified on load.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import StreamError
from repro.stream.events import TrackerEvent
from repro.stream.online import OnlineLinearSVM, RollingDistribution

#: Snapshot schema version, bumped on incompatible state changes.
STATE_VERSION = 1


def _empty_register() -> dict[str, Any]:
    return {
        "events": 0,
        "last_at": "",
        "last_digest": "",
        "status": None,
        "status_at": "",
        "status_digest": "",
    }


@dataclass
class StreamState:
    """Everything the ingestion fold reads and writes."""

    config: dict[str, Any]
    batch_index: int = -1  # last *committed* batch
    # -- accounting (the invariant: consumed == applied + deduped + dead_lettered,
    #    emitted == consumed + lost_upstream) ------------------------------------
    consumed: int = 0
    applied: int = 0
    deduped: int = 0
    dead_lettered: int = 0
    lost_upstream: int = 0
    # -- operational counters ----------------------------------------------------
    blocks_fetched: int = 0
    blocks_abandoned: int = 0
    retries: int = 0
    rate_limited: int = 0
    max_queue_depth: int = 0
    trained: int = 0
    # -- analytics --------------------------------------------------------------
    seen: set[int] = field(default_factory=set)
    bugs: dict[str, dict[str, Any]] = field(default_factory=dict)
    by_type: dict[str, int] = field(default_factory=dict)
    dist: RollingDistribution = field(default_factory=RollingDistribution)
    model: OnlineLinearSVM | None = None

    # -- application ------------------------------------------------------------
    def apply(self, event: TrackerEvent, digest: int) -> None:
        """Apply one *unique* event (caller has already checked ``seen``).

        Every update here commutes: counters count unique events, registers
        take the max over the ``(at, digest)`` total order, distribution
        buckets are keyed by event time.
        """
        self.seen.add(digest)
        self.applied += 1
        self.by_type[event.event_type] = self.by_type.get(event.event_type, 0) + 1
        register = self.bugs.setdefault(event.bug_id, _empty_register())
        register["events"] += 1
        # ``digest`` is the 64-bit truncation of ``event.digest()``;
        # formatting it back avoids re-canonicalizing + re-hashing the
        # event on this hot path.
        mark = (event.at, f"{digest:016x}")
        if mark > (register["last_at"], register["last_digest"]):
            register["last_at"], register["last_digest"] = mark
        status = event.payload.get("status")
        if status is not None and mark > (
            register["status_at"], register["status_digest"]
        ):
            register["status_at"], register["status_digest"] = mark
            register["status"] = str(status)
        labels = event.payload.get("labels")
        if (
            isinstance(labels, dict)
            and "symptom" in labels
            and "root_cause" in labels
        ):
            self.dist.observe(event.at, str(labels["symptom"]), str(labels["root_cause"]))

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "version": STATE_VERSION,
            "config": self.config,
            "batch_index": self.batch_index,
            "consumed": self.consumed,
            "applied": self.applied,
            "deduped": self.deduped,
            "dead_lettered": self.dead_lettered,
            "lost_upstream": self.lost_upstream,
            "blocks_fetched": self.blocks_fetched,
            "blocks_abandoned": self.blocks_abandoned,
            "retries": self.retries,
            "rate_limited": self.rate_limited,
            "max_queue_depth": self.max_queue_depth,
            "trained": self.trained,
            "seen": sorted(self.seen),
            "bugs": {bug_id: self.bugs[bug_id] for bug_id in sorted(self.bugs)},
            "by_type": {key: self.by_type[key] for key in sorted(self.by_type)},
            "dist": self.dist.to_dict(),
            "model": None if self.model is None else self.model.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StreamState":
        if data.get("version") != STATE_VERSION:
            raise StreamError(
                f"unsupported stream state version {data.get('version')!r} "
                f"(expected {STATE_VERSION})"
            )
        return cls(
            config=dict(data["config"]),
            batch_index=int(data["batch_index"]),
            consumed=int(data["consumed"]),
            applied=int(data["applied"]),
            deduped=int(data["deduped"]),
            dead_lettered=int(data["dead_lettered"]),
            lost_upstream=int(data["lost_upstream"]),
            blocks_fetched=int(data["blocks_fetched"]),
            blocks_abandoned=int(data["blocks_abandoned"]),
            retries=int(data["retries"]),
            rate_limited=int(data["rate_limited"]),
            max_queue_depth=int(data["max_queue_depth"]),
            trained=int(data["trained"]),
            seen={int(v) for v in data["seen"]},
            bugs={str(k): dict(v) for k, v in data["bugs"].items()},
            by_type={str(k): int(v) for k, v in data["by_type"].items()},
            dist=RollingDistribution.from_dict(data["dist"]),
            model=(
                None
                if data["model"] is None
                else OnlineLinearSVM.from_dict(data["model"])
            ),
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        """sha256 over the full canonical state — the kill/resume yardstick."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def analytics_digest(self) -> str:
        """sha256 over the order/duplication-invariant projection.

        Covers exactly what is a pure function of the applied-event *set*:
        the dedup set, bug registers, per-type counts, distributions, and
        the unique-application counter.  Operational counters (``consumed``,
        ``deduped``, retries...) and the learner vary with delivery order
        and are deliberately excluded.
        """
        projection = {
            "applied": self.applied,
            "seen": sorted(self.seen),
            "bugs": {bug_id: self.bugs[bug_id] for bug_id in sorted(self.bugs)},
            "by_type": {key: self.by_type[key] for key in sorted(self.by_type)},
            "dist": self.dist.to_dict(),
        }
        payload = json.dumps(projection, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- snapshot IO ----------------------------------------------------------------

def save_state(state: StreamState, path: str | Path) -> str:
    """Atomically write a snapshot; returns its sha256 digest."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(state.to_dict(), sort_keys=True, indent=1)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def load_state(path: str | Path, *, expect_digest: str | None = None) -> StreamState:
    """Load a snapshot, verifying the digest the journal promised."""
    path = Path(path)
    if not path.exists():
        raise StreamError(f"{path}: stream state snapshot does not exist")
    payload = path.read_text(encoding="utf-8")
    if expect_digest is not None:
        actual = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        if actual != expect_digest:
            raise StreamError(
                f"{path}: snapshot digest mismatch (journal promised "
                f"{expect_digest[:12]}..., found {actual[:12]}...)"
            )
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StreamError(f"{path}: snapshot is not valid JSON: {exc}") from exc
    return StreamState.from_dict(data)
