"""Fault-tolerant streaming ingestion plane for the million-bug corpus.

ROADMAP item 3: the paper mines a fixed April-2020 snapshot; this package
scales the same analyses to an unbounded stream of tracker events that
arrives exactly as the paper's catalog predicts it will — late, duplicated,
reordered, malformed, and from upstreams that flap.  The pipeline composes
the primitives already in-tree instead of reinventing them: PR-1
retry/backoff + circuit breakers price every recovery action into the
:class:`~repro.resilience.ledger.ResilienceLedger`, PR-4
:func:`~repro.recovery.checkpoint.open_run_journal` makes every batch a
WAL-committed checkpoint so SIGKILL at any event boundary resumes to a
bit-identical state digest, and PR-8 metrics expose consumer lag, DLQ
depth, dedup hits, and events/s.

Module map:

- :mod:`repro.stream.events` — the append-only tracker event model with
  canonical digests and strict/lenient wire parsing;
- :mod:`repro.stream.source` — event sources: derived from the JIRA/GitHub
  tracker substrates, or synthetic pure-function-of-(seed, index) streams
  that scale to millions of events in O(1) memory;
- :mod:`repro.stream.flaky` — the seeded flaky-source wrapper injecting
  outages, rate limits, corruption, duplicates, and reordering;
- :mod:`repro.stream.dlq` — digest-keyed dead-letter queue with ``.reason``
  sidecars and a lenient replay path;
- :mod:`repro.stream.state` — bounded-memory, commutative-idempotent
  analytics state (dedup set, LWW bug registers, windowed distributions);
- :mod:`repro.stream.online` — hashing-trick vectorizer + ``partial_fit``
  Pegasos OvR SVM + rolling symptom×root-cause distributions;
- :mod:`repro.stream.ingest` — the journaled pipeline tying it together.
"""

from repro.stream.dlq import DeadLetterQueue
from repro.stream.events import (
    EVENT_TYPES,
    TrackerEvent,
    parse_wire,
)
from repro.stream.flaky import FaultMix, FlakySource
from repro.stream.ingest import (
    IngestConfig,
    IngestReport,
    replay_dlq,
    run_ingest,
    state_metrics,
)
from repro.stream.online import (
    HashingVectorizer,
    OnlineLinearSVM,
    RollingDistribution,
)
from repro.stream.source import synthetic_event, tracker_events
from repro.stream.state import StreamState, load_state, save_state

__all__ = [
    "EVENT_TYPES",
    "DeadLetterQueue",
    "FaultMix",
    "FlakySource",
    "HashingVectorizer",
    "IngestConfig",
    "IngestReport",
    "OnlineLinearSVM",
    "RollingDistribution",
    "StreamState",
    "TrackerEvent",
    "load_state",
    "parse_wire",
    "replay_dlq",
    "run_ingest",
    "save_state",
    "state_metrics",
    "synthetic_event",
    "tracker_events",
]
