"""Subprocess entry point for ingest kill injection.

Runs one journaled ingestion and — when ``--kill-after k`` is positive —
SIGKILLs its own process the instant the k-th journal event is durable
(``RunJournal.on_event`` fires only after fsync), exactly the crash model
of :mod:`repro.recovery._child`.  What survives is what the journal, the
atomic state snapshots, and the digest-keyed DLQ promise, nothing more.

Not part of the public API; invoked as ``python -m repro.stream._child``
by the smoke harness and the resume tests.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.stream._child")
    parser.add_argument("--run-dir", required=True)
    parser.add_argument("--kill-after", type=int, default=0,
                        help="SIGKILL self after this many journal events "
                             "(0 = run to completion)")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--config", required=True,
                        help="IngestConfig as a JSON object")
    parser.add_argument("--out", help="write the final state fingerprint here")
    args = parser.parse_args(argv)

    from repro.stream.ingest import IngestConfig, run_ingest

    config = IngestConfig(**json.loads(args.config))
    events_seen = 0

    def _kill_at_k(event) -> None:
        nonlocal events_seen
        events_seen += 1
        if args.kill_after > 0 and events_seen >= args.kill_after:
            # The k-th event is already fsync'd; die with no goodbye.
            os.kill(os.getpid(), signal.SIGKILL)

    report = run_ingest(
        config,
        args.run_dir,
        resume=args.resume,
        on_event=_kill_at_k,
    )
    state = report.state
    verdict = {
        "fingerprint": state.fingerprint(),
        "analytics_digest": state.analytics_digest(),
        "consumed": state.consumed,
        "applied": state.applied,
        "deduped": state.deduped,
        "dead_lettered": state.dead_lettered,
        "lost_upstream": state.lost_upstream,
        "blocks_abandoned": state.blocks_abandoned,
        "give_ups_priced": sum(
            1 for r in report.ledger.records if r.event.value == "give_up"
        ),
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(verdict, handle, indent=2, sort_keys=True)
    else:
        json.dump(verdict, sys.stdout, indent=2, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
