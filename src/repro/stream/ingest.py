"""The journaled ingestion pipeline: fetch, retry, dedup, apply, checkpoint.

One run is a fold over journaled batches, exactly the PR-7 fuzzing shape:
``state' = step(state, batch)`` with ``step`` deterministic given the
config.  Each batch fetches a fixed range of blocks from the flaky source
through the PR-1 resilience stack (retry/backoff + circuit breaker on a
simulated clock, every action priced into the
:class:`~repro.resilience.ledger.ResilienceLedger`), pushes the wire
records through a bounded backpressure queue, applies them exactly-once
into :class:`~repro.stream.state.StreamState`, then snapshots atomically
and commits the snapshot digest to the PR-4 WAL journal.

Robustness invariants enforced *every batch* (violations raise, they are
never logged-and-forgotten):

- **accounting**: ``consumed == applied + deduped + dead_lettered`` —
  every delivered record is applied once, recognized as a duplicate, or
  dead-lettered with a reason; and every record a give-up abandoned is
  counted in ``lost_upstream`` with a matching ``GIVE_UP`` ledger record.
  Nothing is ever silently dropped.
- **resume identity**: the journal refuses fresh runs over existing
  journals and resumes under a different config digest; a SIGKILL at any
  journaled event boundary resumes to a bit-identical state fingerprint
  (the crash harness in :mod:`repro.stream.smoke` proves it).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.errors import (
    CircuitOpenError,
    RateLimitedError,
    StreamError,
    TransientSourceError,
)
from repro.recovery.checkpoint import open_run_journal
from repro.recovery.journal import (
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_RUN_END,
    JournalEvent,
    replay_journal,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.resilience.policies import RetryPolicy
from repro.sdnsim.clock import EventScheduler
from repro.stream.dlq import DeadLetterQueue
from repro.stream.events import TrackerEvent, parse_wire
from repro.stream.flaky import FaultMix, FlakySource
from repro.stream.online import HashingVectorizer, OnlineLinearSVM
from repro.stream.source import synthetic_event
from repro.stream.state import StreamState, load_state, save_state


@dataclass(frozen=True)
class IngestConfig:
    """Everything that identifies one ingestion run (its resume identity)."""

    seed: int = 0
    events: int = 2048
    batch: int = 512  # base events per journaled batch
    block: int = 64  # base events per fetch block
    pool: int = 5000  # distinct synthetic bug ids
    # -- fault mix (see FaultMix for rate semantics) ----------------------------
    outage_rate: float = 0.0
    outage_depth: int = 2
    rate_limit_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    # -- backpressure + resilience ----------------------------------------------
    queue_capacity: int = 256
    retry_attempts: int = 4
    retry_base_delay: float = 0.5
    breaker_threshold: float = 0.6
    breaker_window: int = 8
    breaker_min_calls: int = 4
    breaker_cooldown: float = 15.0
    # -- online learning --------------------------------------------------------
    learn: bool = True
    hash_bits: int = 12
    regularization: float = 1e-3
    window_days: int = 30

    def __post_init__(self) -> None:
        for name in ("events", "batch", "block", "pool", "queue_capacity",
                     "hash_bits"):
            if getattr(self, name) < 1:
                raise StreamError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.retry_attempts < 0:
            raise StreamError("retry_attempts must be >= 0")
        if self.retry_base_delay < 0:
            raise StreamError("retry_base_delay must be >= 0")
        if self.block > self.batch:
            raise StreamError(
                f"block ({self.block}) cannot exceed batch ({self.batch})"
            )
        # FaultMix validates the rates (raises StreamError on bad values).
        self.mix()

    def mix(self) -> FaultMix:
        return FaultMix(
            outage_rate=self.outage_rate,
            outage_depth=self.outage_depth,
            rate_limit_rate=self.rate_limit_rate,
            corrupt_rate=self.corrupt_rate,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "events": self.events,
            "batch": self.batch,
            "block": self.block,
            "pool": self.pool,
            "outage_rate": self.outage_rate,
            "outage_depth": self.outage_depth,
            "rate_limit_rate": self.rate_limit_rate,
            "corrupt_rate": self.corrupt_rate,
            "duplicate_rate": self.duplicate_rate,
            "reorder_rate": self.reorder_rate,
            "queue_capacity": self.queue_capacity,
            "retry_attempts": self.retry_attempts,
            "retry_base_delay": self.retry_base_delay,
            "breaker_threshold": self.breaker_threshold,
            "breaker_window": self.breaker_window,
            "breaker_min_calls": self.breaker_min_calls,
            "breaker_cooldown": self.breaker_cooldown,
            "learn": self.learn,
            "hash_bits": self.hash_bits,
            "regularization": self.regularization,
            "window_days": self.window_days,
        }

    def digest(self) -> str:
        """Resume identity: same digest == same run."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def n_blocks(self) -> int:
        return -(-self.events // self.block)

    @property
    def blocks_per_batch(self) -> int:
        return max(1, self.batch // self.block)

    @property
    def n_batches(self) -> int:
        return -(-self.n_blocks // self.blocks_per_batch)


@dataclass
class IngestReport:
    """What a finished (or resumed-to-finished) run produced."""

    config: IngestConfig
    state: StreamState
    run_dir: Path
    resumed: bool
    batches_executed: int
    ledger: ResilienceLedger
    sim_seconds: float

    @property
    def dlq_depth(self) -> int:
        return DeadLetterQueue(self.run_dir / "dlq").depth()

    def summary(self) -> str:
        state = self.state
        return (
            f"{state.consumed} records consumed -> {state.applied} applied, "
            f"{state.deduped} deduped, {state.dead_lettered} dead-lettered, "
            f"{state.lost_upstream} lost upstream "
            f"({state.retries} retries, {state.blocks_abandoned} give-ups, "
            f"{len(state.bugs)} bugs tracked)"
        )


class StreamIngest:
    """One journaled ingestion run rooted at ``run_dir``."""

    def __init__(
        self,
        config: IngestConfig,
        run_dir: str | Path,
        *,
        on_event: Callable[[JournalEvent], None] | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config
        self.run_dir = Path(run_dir)
        self._on_event = on_event
        self._progress = progress or (lambda _msg: None)
        self.ledger = ResilienceLedger()
        self.scheduler = EventScheduler()
        self.source = FlakySource(
            lambda i: synthetic_event(config.seed, i, pool=config.pool),
            config.events,
            mix=config.mix(),
            seed=config.seed,
            block_size=config.block,
        )
        self.retry = RetryPolicy(
            max_attempts=config.retry_attempts,
            base_delay=config.retry_base_delay,
            multiplier=2.0,
            max_delay=60.0,
        )
        self.breaker = CircuitBreaker(
            self.scheduler,
            name="stream-source",
            failure_threshold=config.breaker_threshold,
            window=config.breaker_window,
            min_calls=config.breaker_min_calls,
            cooldown=config.breaker_cooldown,
            ledger=self.ledger,
        )
        self.dlq = DeadLetterQueue(self.run_dir / "dlq")
        self.vectorizer = HashingVectorizer(
            n_features=2 ** config.hash_bits, seed=config.seed
        )

    # -- fetching through the resilience stack ----------------------------------
    def _fetch_block(self, block: int) -> list[str] | None:
        """Fetch one block, retrying transient failures with backoff.

        Returns ``None`` when the retry budget is exhausted — the give-up
        is priced into the ledger and the caller accounts the lost records.
        All waiting happens on the simulated clock, which also drives the
        breaker's cool-down / half-open transitions.
        """
        clock = self.scheduler.clock
        attempt = 1
        while True:
            if not self.breaker.allow():
                # Open breaker: advancing past the cool-down fires the
                # scheduled half-open transition, which admits a probe.
                self.scheduler.run(until=clock.now + self.breaker.cooldown)
            try:
                return self.breaker.call(self.source.fetch, block, attempt)
            except CircuitOpenError:
                # Shed (already ledgered by the breaker); wait out the
                # cool-down and try again without consuming an attempt.
                self.scheduler.run(until=clock.now + self.breaker.cooldown)
                continue
            except TransientSourceError as exc:
                if attempt > self.retry.max_attempts:
                    lost = len(self.source.wire_block(block))
                    self.ledger.record(
                        ResilienceEvent.GIVE_UP,
                        "stream-source",
                        time=clock.now,
                        attempt=attempt,
                        detail=(
                            f"block {block}: abandoned after {attempt} "
                            f"attempts ({lost} records lost): {exc}"
                        ),
                    )
                    return None
                delay = self.retry.delay_for(attempt)
                if isinstance(exc, RateLimitedError):
                    # A throttling upstream names its own floor; honoring
                    # it is the difference between backoff and hammering.
                    delay = max(delay, exc.retry_after)
                    self.state.rate_limited += 1
                self.state.retries += 1
                self.ledger.record(
                    ResilienceEvent.RETRY,
                    "stream-source",
                    time=clock.now,
                    attempt=attempt,
                    delay=delay,
                    detail=f"block {block}: {exc}",
                )
                self.scheduler.run(until=clock.now + delay)
                attempt += 1

    # -- exactly-once application -----------------------------------------------
    def _process(
        self, raw: str, train: list[tuple[dict[int, float], str]]
    ) -> None:
        state = self.state
        state.consumed += 1
        try:
            event = parse_wire(raw)
        except StreamError as exc:
            self.dlq.put(raw, str(exc))
            state.dead_lettered += 1
            self.ledger.record(
                ResilienceEvent.ESCALATION,
                "wire-parse",
                time=self.scheduler.clock.now,
                detail=f"poison record escalated to the DLQ: {exc}",
            )
            return
        digest = event.digest_int()
        if digest in state.seen:
            state.deduped += 1
            return
        state.apply(event, digest)
        if self.config.learn:
            sample = _training_sample(self.vectorizer, event)
            if sample is not None:
                train.append(sample)

    # -- the batch fold ---------------------------------------------------------
    def _step(self, k: int) -> None:
        config, state = self.config, self.state
        start = k * config.blocks_per_batch
        stop = min(start + config.blocks_per_batch, config.n_blocks)
        queue: deque[str] = deque()
        train: list[tuple[dict[int, float], str]] = []
        for block in range(start, stop):
            records = self._fetch_block(block)
            if records is None:
                state.blocks_abandoned += 1
                state.lost_upstream += len(self.source.wire_block(block))
                continue
            state.blocks_fetched += 1
            queue.extend(records)
            state.max_queue_depth = max(state.max_queue_depth, len(queue))
            # Backpressure: the producer stops fetching until the consumer
            # has drained the queue back under its capacity.
            while len(queue) > config.queue_capacity:
                self._process(queue.popleft(), train)
        while queue:
            self._process(queue.popleft(), train)
        if train:
            if state.model is None:
                state.model = OnlineLinearSVM(
                    n_features=self.vectorizer.n_features,
                    regularization=config.regularization,
                )
            rows = [row for row, _ in train]
            labels = [label for _, label in train]
            state.model.partial_fit(rows, labels)
            state.trained += len(train)
        state.batch_index = k
        _check_accounting(state)

    # -- orchestration ----------------------------------------------------------
    def run(self, *, resume: bool = False) -> IngestReport:
        config = self.config
        self.run_dir.mkdir(parents=True, exist_ok=True)
        journal, committed = open_run_journal(
            self.run_dir / "journal.jsonl",
            f"ingest-{config.seed}",
            resume=resume,
            config_digest=config.digest(),
            on_event=self._on_event,
        )
        try:
            self.state, start = self._load_or_init(committed)
            batches = 0
            for k in range(start, config.n_batches):
                stage = f"batch-{k:04d}"
                journal.append(EVENT_BEGIN, stage=stage)
                self._step(k)
                snapshot = f"state-{k:04d}.json"
                digest = save_state(self.state, self.run_dir / snapshot)
                journal.append(
                    EVENT_COMMIT, stage=stage, key=snapshot, digest=digest
                )
                self._prune_snapshots(keep=snapshot)
                batches += 1
                self._progress(
                    f"batch {k + 1}/{config.n_batches}: "
                    f"{self.state.applied} applied, "
                    f"{self.state.deduped} deduped, "
                    f"{self.state.dead_lettered} dead-lettered"
                )
            journal.append(EVENT_RUN_END)
            self._export()
            return IngestReport(
                config=config,
                state=self.state,
                run_dir=self.run_dir,
                resumed=resume,
                batches_executed=batches,
                ledger=self.ledger,
                sim_seconds=self.scheduler.clock.now,
            )
        finally:
            journal.close()

    def _load_or_init(
        self, committed: dict[str, JournalEvent]
    ) -> tuple[StreamState, int]:
        snapshots = [
            event
            for stage, event in committed.items()
            if stage.startswith(("batch-", "dlq-replay-")) and event.key
        ]
        if not snapshots:
            return StreamState(config=self.config.to_dict()), 0
        last = max(snapshots, key=lambda event: event.seq)
        state = load_state(self.run_dir / last.key, expect_digest=last.digest)
        return state, state.batch_index + 1

    def _prune_snapshots(self, *, keep: str) -> None:
        for path in sorted(self.run_dir.glob("state-*.json")):
            if path.name != keep:
                path.unlink()

    def _export(self) -> None:
        state = self.state
        summary = {
            "config_digest": self.config.digest(),
            "consumed": state.consumed,
            "applied": state.applied,
            "deduped": state.deduped,
            "dead_lettered": state.dead_lettered,
            "lost_upstream": state.lost_upstream,
            "blocks_fetched": state.blocks_fetched,
            "blocks_abandoned": state.blocks_abandoned,
            "retries": state.retries,
            "rate_limited": state.rate_limited,
            "max_queue_depth": state.max_queue_depth,
            "trained": state.trained,
            "bugs": len(state.bugs),
            "dlq_depth": self.dlq.depth(),
            "breaker_trips": self.breaker.trips,
            "sim_seconds": self.scheduler.clock.now,
            "recovery_cost": self.ledger.recovery_cost(),
            "fingerprint": state.fingerprint(),
            "analytics_digest": state.analytics_digest(),
        }
        _atomic_json(self.run_dir / "summary.json", summary)
        _atomic_json(self.run_dir / "ledger.json", self.ledger.to_dicts())
        _atomic_text(
            self.run_dir / "metrics.jsonl",
            state_metrics(state, dlq_depth=self.dlq.depth()).export_jsonl(),
        )


def _training_sample(
    vectorizer: HashingVectorizer, event: TrackerEvent
) -> tuple[dict[int, float], str] | None:
    """A ``(hashed row, symptom)`` pair, for labeled issue-closed events."""
    if event.event_type != "issue-closed":
        return None
    labels = event.payload.get("labels")
    if not isinstance(labels, dict) or "symptom" not in labels:
        return None
    tokens = event.payload.get("tokens")
    if not isinstance(tokens, list) or not tokens:
        return None
    return (
        vectorizer.transform_tokens(str(token) for token in tokens),
        str(labels["symptom"]),
    )


def _check_accounting(state: StreamState) -> None:
    """The zero-silent-drops invariant, enforced at every batch boundary."""
    if state.consumed != state.applied + state.deduped + state.dead_lettered:
        raise StreamError(
            f"accounting violated after batch {state.batch_index}: "
            f"consumed={state.consumed} != applied={state.applied} + "
            f"deduped={state.deduped} + dead_lettered={state.dead_lettered}"
        )


def state_metrics(state: StreamState, *, dlq_depth: int | None = None):
    """Project a :class:`StreamState` onto a ``MetricsRegistry``.

    Derived purely from the snapshot (plus the DLQ directory when given),
    so a resumed run exports exactly the metrics an uninterrupted run
    would — the same property the state fingerprint guarantees.
    """
    from repro.observability.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter(
        "ingest_consumed_total", "Wire records consumed"
    ).inc(state.consumed)
    registry.counter(
        "ingest_applied_total", "Unique events applied"
    ).inc(state.applied)
    registry.counter(
        "ingest_dedup_hits_total", "Deliveries recognized as duplicates"
    ).inc(state.deduped)
    registry.counter(
        "ingest_dead_lettered_total", "Records dead-lettered with a reason"
    ).inc(state.dead_lettered)
    registry.counter(
        "ingest_lost_upstream_total", "Records lost to priced give-ups"
    ).inc(state.lost_upstream)
    registry.counter(
        "ingest_retries_total", "Fetch retries across all blocks"
    ).inc(state.retries)
    registry.counter(
        "ingest_rate_limited_total", "Fetches throttled by the upstream"
    ).inc(state.rate_limited)
    registry.counter(
        "ingest_batches_total", "Journaled batches committed"
    ).inc(state.batch_index + 1)
    registry.gauge(
        "ingest_seen_events", "Distinct event digests in the dedup set"
    ).set(len(state.seen))
    registry.gauge(
        "ingest_bugs_tracked", "Distinct bug registers"
    ).set(len(state.bugs))
    registry.gauge(
        "ingest_consumer_lag_peak",
        "Peak backpressure-queue depth (consumer lag high-water mark)",
    ).set(state.max_queue_depth)
    registry.gauge(
        "ingest_model_trained", "Labeled samples fed to the online learner"
    ).set(state.trained)
    if dlq_depth is not None:
        registry.gauge(
            "ingest_dlq_depth", "Distinct dead-lettered records on disk"
        ).set(dlq_depth)
    events_hist = registry.histogram(
        "ingest_events_per_bug",
        "Unique events applied per bug register",
        buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
    )
    for register in state.bugs.values():
        events_hist.observe(float(register["events"]))
    return registry


def run_ingest(
    config: IngestConfig,
    run_dir: str | Path,
    *,
    resume: bool = False,
    on_event: Callable[[JournalEvent], None] | None = None,
    progress: Callable[[str], None] | None = None,
) -> IngestReport:
    """Run (or resume) one ingestion; the CLI, tests, and bench call this."""
    ingest = StreamIngest(config, run_dir, on_event=on_event, progress=progress)
    return ingest.run(resume=resume)


def replay_dlq(run_dir: str | Path) -> dict[str, int]:
    """Lenient offline replay of the dead-letter queue.

    Re-parses every DLQ entry with the lenient parser (BOM/whitespace
    stripping — the transport-artifact class of corruption), applies any
    event that parses and is not already in the dedup set, journals the
    recovery as its own committed stage, and removes recovered entries.
    Irrecoverably corrupt records stay in the DLQ for the audit trail.
    """
    run_dir = Path(run_dir)
    journal_path = run_dir / "journal.jsonl"
    if not journal_path.exists():
        raise StreamError(f"{run_dir}: no ingest journal to replay against")
    dlq = DeadLetterQueue(run_dir / "dlq")

    # Locate the latest committed snapshot; its config is the run's config,
    # and resume-mode journal reopening cross-checks it against the digest
    # the journal recorded (drift is refused, exactly as for --resume).
    snapshots = {
        stage: event
        for stage, event in replay_journal(journal_path).committed().items()
        if stage.startswith(("batch-", "dlq-replay-")) and event.key
    }
    if not snapshots:
        raise StreamError(
            f"{run_dir}: no committed snapshot to replay the DLQ against"
        )
    last = max(snapshots.values(), key=lambda event: event.seq)
    state = load_state(run_dir / last.key, expect_digest=last.digest)
    config = IngestConfig(**state.config)
    journal, _committed = open_run_journal(
        journal_path,
        f"ingest-{config.seed}",
        resume=True,
        config_digest=config.digest(),
    )
    try:
        replays = sum(1 for s in snapshots if s.startswith("dlq-replay-"))
        stage = f"dlq-replay-{replays:04d}"
        journal.append(EVENT_BEGIN, stage=stage)
        recovered = applied = deduped = 0
        recovered_digests: list[str] = []
        for entry in dlq.entries():
            try:
                event = parse_wire(entry.raw, lenient=True)
            except StreamError:  # sdnlint: disable=dataflow.unpriced-exception (entry stays dead-lettered: the DLQ itself is the audit record)
                continue  # genuinely corrupt; keep for the audit trail
            digest = event.digest_int()
            if digest in state.seen:
                state.deduped += 1
                deduped += 1
            else:
                state.apply(event, digest)
                applied += 1
            # Either way the delivery is now accounted as consumed instead
            # of dead-lettered: move it across the ledger columns.
            state.dead_lettered -= 1
            recovered += 1
            recovered_digests.append(entry.digest)
        _check_accounting(state)
        snapshot = f"state-dlq-{replays:04d}.json"
        digest = save_state(state, run_dir / snapshot)
        journal.append(
            EVENT_COMMIT,
            stage=stage,
            key=snapshot,
            digest=digest,
            meta={"recovered": recovered, "applied": applied, "deduped": deduped},
        )
        # Only after the commit is durable do the DLQ entries disappear —
        # a crash mid-replay leaves them in place and the rerun converges.
        for entry_digest in recovered_digests:
            dlq.remove(entry_digest)
        for path in sorted(run_dir.glob("state-*.json")):
            if path.name != snapshot:
                path.unlink()
        _atomic_text(
            run_dir / "metrics.jsonl",
            state_metrics(state, dlq_depth=dlq.depth()).export_jsonl(),
        )
        return {
            "recovered": recovered,
            "applied": applied,
            "deduped": deduped,
            "remaining": dlq.depth(),
        }
    finally:
        journal.close()


def _atomic_json(path: Path, payload: Any) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _atomic_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
