"""The seeded flaky-source wrapper: everything the paper says goes wrong.

:class:`FlakySource` sits between an event producer and the ingest
pipeline and injects, deterministically per ``(seed, block)``:

- **outages** — a block's fetch fails its first *k* attempts with
  :class:`~repro.errors.SourceOutageError` before succeeding;
- **rate limits** — :class:`~repro.errors.RateLimitedError` with a
  ``retry_after`` hint the retry loop must honor;
- **corruption** — wire records truncated or de-quoted into invalid JSON
  (irrecoverable), or prefixed with a BOM (recoverable by lenient DLQ
  replay);
- **duplicates** — a record delivered twice, byte-identical;
- **reordering** — a block-local shuffle of delivery order.

Every decision is a pure function of ``(seed, block_index)`` via
``random.Random(f"flaky:{seed}:...:{b}")`` — two instances over the same
underlying stream emit byte-identical wire blocks, which is what lets a
resumed consumer regenerate the exact remainder of a half-ingested stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import RateLimitedError, SourceOutageError, StreamError
from repro.stream.events import TrackerEvent

#: Fetch-plan kinds.
PLAN_CLEAN = "clean"
PLAN_OUTAGE = "outage"
PLAN_RATE_LIMIT = "rate-limit"


@dataclass(frozen=True)
class FaultMix:
    """Fault probabilities for one flaky source.

    Rates are probabilities: per *block* for outages, rate limits, and
    reordering; per *record* for corruption and duplication.
    ``outage_depth`` caps how many consecutive attempts an outage eats.
    """

    outage_rate: float = 0.0
    outage_depth: int = 2
    rate_limit_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("outage_rate", "rate_limit_rate", "corrupt_rate",
                     "duplicate_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise StreamError(f"{name} must be in [0, 1], got {value}")
        if self.outage_depth < 1:
            raise StreamError(f"outage_depth must be >= 1, got {self.outage_depth}")

    def to_dict(self) -> dict[str, float | int]:
        return {
            "outage_rate": self.outage_rate,
            "outage_depth": self.outage_depth,
            "rate_limit_rate": self.rate_limit_rate,
            "corrupt_rate": self.corrupt_rate,
            "duplicate_rate": self.duplicate_rate,
            "reorder_rate": self.reorder_rate,
        }

    @property
    def is_clean(self) -> bool:
        return all(
            rate == 0.0
            for rate in (self.outage_rate, self.rate_limit_rate,
                         self.corrupt_rate, self.duplicate_rate,
                         self.reorder_rate)
        )


@dataclass(frozen=True)
class BlockPlan:
    """The deterministic fetch fate of one block."""

    kind: str
    #: Attempts that fail before a fetch succeeds (0 for clean blocks).
    failures: int
    #: Rate-limit backoff hint, simulated seconds (0 when not throttled).
    retry_after: float


class FlakySource:
    """A deterministic flaky wrapper over an indexed event producer.

    ``supply(i)`` must return event ``i`` of the underlying stream as a
    pure function of ``i`` (see :func:`~repro.stream.source.synthetic_event`);
    ``total`` is the stream length.  Records are delivered in blocks of
    ``block_size`` wire strings.
    """

    def __init__(
        self,
        supply: Callable[[int], TrackerEvent],
        total: int,
        *,
        mix: FaultMix,
        seed: int = 0,
        block_size: int = 64,
    ) -> None:
        if total < 0:
            raise StreamError(f"total must be >= 0, got {total}")
        if block_size < 1:
            raise StreamError(f"block_size must be >= 1, got {block_size}")
        self.supply = supply
        self.total = total
        self.mix = mix
        self.seed = seed
        self.block_size = block_size

    @property
    def n_blocks(self) -> int:
        return -(-self.total // self.block_size)

    def plan(self, block: int) -> BlockPlan:
        """How the fetch of ``block`` will (mis)behave."""
        rng = random.Random(f"flaky:{self.seed}:plan:{block}")
        if rng.random() < self.mix.outage_rate:
            return BlockPlan(
                kind=PLAN_OUTAGE,
                failures=rng.randint(1, self.mix.outage_depth),
                retry_after=0.0,
            )
        if rng.random() < self.mix.rate_limit_rate:
            return BlockPlan(
                kind=PLAN_RATE_LIMIT,
                failures=1,
                retry_after=round(1.0 + 4.0 * rng.random(), 3),
            )
        return BlockPlan(kind=PLAN_CLEAN, failures=0, retry_after=0.0)

    # -- wire mangling ---------------------------------------------------------
    def wire_block(self, block: int) -> list[str]:
        """The wire records block ``block`` delivers once a fetch succeeds.

        Pure function of ``(seed, block)`` and the underlying stream:
        corruption, duplication, and reordering included.
        """
        start = block * self.block_size
        stop = min(start + self.block_size, self.total)
        rng = random.Random(f"flaky:{self.seed}:wire:{block}")
        records: list[str] = []
        for index in range(start, stop):
            raw = self.supply(index).canonical()
            if rng.random() < self.mix.corrupt_rate:
                raw = _corrupt(raw, rng)
            records.append(raw)
            if rng.random() < self.mix.duplicate_rate:
                records.append(raw)
        if len(records) > 1 and rng.random() < self.mix.reorder_rate:
            rng.shuffle(records)
        return records

    def fetch(self, block: int, attempt: int) -> list[str]:
        """Attempt ``attempt`` (1-based) at fetching ``block``.

        Raises the planned transient error while ``attempt <= failures``;
        afterwards the fetch succeeds and returns the wire records.
        """
        if attempt < 1:
            raise StreamError(f"attempt is 1-based, got {attempt}")
        fate = self.plan(block)
        if attempt <= fate.failures:
            if fate.kind == PLAN_RATE_LIMIT:
                raise RateLimitedError(
                    f"block {block}: throttled (retry after "
                    f"{fate.retry_after:.1f}s)",
                    retry_after=fate.retry_after,
                )
            raise SourceOutageError(
                f"block {block}: upstream unreachable "
                f"(attempt {attempt}/{fate.failures} of planned outage)"
            )
        return self.wire_block(block)


def _corrupt(raw: str, rng: random.Random) -> str:
    """Mangle one wire record.  Two variants are irrecoverable (truncation,
    de-quoting); the BOM variant is exactly what lenient DLQ replay fixes."""
    roll = rng.random()
    if roll < 0.4:
        return raw[: max(1, len(raw) // 2)]
    if roll < 0.7:
        return raw.replace('"', "", 1)
    return "﻿  " + raw
