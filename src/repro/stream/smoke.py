"""Ingest-smoke harness: ``python -m repro.stream.smoke``.

The CI entry point for ingestion crash-safety.  Runs one uninterrupted
reference ingestion under a seeded fault mix and asserts the robustness
contract on it:

- **zero unpriced drops** — ``consumed == applied + deduped +
  dead_lettered``, every abandoned block has a matching ``GIVE_UP``
  ledger record, and regenerating every wire block independently proves
  ``emitted == consumed + lost_upstream``;

then SIGKILLs fresh ingestions at several journal offsets and resumes
each with ``--resume``; every resumed run must reach a final
:class:`~repro.stream.state.StreamState` fingerprint **bit-for-bit
identical** to the reference.  Exit status 0 only when every scenario
passes; verdicts, the DLQ (with ``.reason`` sidecars), and the metrics
export land under ``--artifacts`` for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.resilience.ledger import ResilienceEvent
from repro.stream.flaky import FlakySource
from repro.stream.ingest import IngestConfig, run_ingest
from repro.stream.source import synthetic_event


def _child_env() -> dict[str, str]:
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    return env


def _spawn(config: IngestConfig, run_dir: Path, *, kill_after: int = 0,
           resume: bool = False, out: Path | None = None,
           timeout: float = 600.0) -> subprocess.CompletedProcess:
    argv = [
        sys.executable, "-m", "repro.stream._child",
        "--run-dir", str(run_dir),
        "--config", json.dumps(config.to_dict()),
    ]
    if kill_after:
        argv += ["--kill-after", str(kill_after)]
    if resume:
        argv.append("--resume")
    if out is not None:
        argv += ["--out", str(out)]
    return subprocess.run(
        argv, env=_child_env(), capture_output=True, text=True, timeout=timeout
    )


def _emitted(config: IngestConfig) -> int:
    """Total wire records the flaky source emits — regenerated block by
    block, independently of any run (the purity that makes audits cheap)."""
    source = FlakySource(
        lambda i: synthetic_event(config.seed, i, pool=config.pool),
        config.events,
        mix=config.mix(),
        seed=config.seed,
        block_size=config.block,
    )
    return sum(len(source.wire_block(b)) for b in range(source.n_blocks))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.stream.smoke")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--events", type=int, default=1200)
    parser.add_argument("--batch", type=int, default=192)
    parser.add_argument("--block", type=int, default=32)
    parser.add_argument("--pool", type=int, default=150)
    parser.add_argument(
        "--kill-events", type=int, nargs="+", default=[3, 7, 12],
        help="journal offsets to SIGKILL at (mid-run batch commits)",
    )
    parser.add_argument(
        "--artifacts", default="benchmarks/artifacts/ingest-smoke",
        help="directory for verdicts + DLQ + metrics (CI upload)",
    )
    parser.add_argument("--workdir",
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)

    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="ingest-smoke-")
    )
    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)

    # A deliberately hostile mix: outages deeper than the retry budget
    # (forcing real, priced give-ups), throttling, corruption, duplication,
    # reordering — the full catalog at once.
    config = IngestConfig(
        seed=args.seed,
        events=args.events,
        batch=args.batch,
        block=args.block,
        pool=args.pool,
        outage_rate=0.3,
        outage_depth=5,
        rate_limit_rate=0.2,
        corrupt_rate=0.06,
        duplicate_rate=0.12,
        reorder_rate=0.3,
        retry_attempts=3,
    )
    print(f"ingest-smoke: seed={args.seed} events={args.events} "
          f"kill-events={args.kill_events} workdir={workdir}")

    reference = run_ingest(config, workdir / "reference")
    state = reference.state
    ref_fingerprint = state.fingerprint()
    print(f"  reference: {reference.summary()}")

    balanced = state.consumed == (
        state.applied + state.deduped + state.dead_lettered
    )
    give_ups = reference.ledger.count(ResilienceEvent.GIVE_UP)
    priced = give_ups == state.blocks_abandoned
    emitted = _emitted(config)
    conserved = emitted == state.consumed + state.lost_upstream
    accounting_ok = balanced and priced and conserved
    print(f"  accounting: consumed==applied+deduped+dead_lettered: {balanced}; "
          f"give-ups priced {give_ups}/{state.blocks_abandoned}: {priced}; "
          f"emitted {emitted} == consumed+lost "
          f"{state.consumed + state.lost_upstream}: {conserved}")

    failed = 0 if accounting_ok else 1
    verdicts = [{
        "label": "reference",
        "fingerprint": ref_fingerprint,
        "summary": reference.summary(),
        "accounting_balanced": balanced,
        "give_ups_priced": priced,
        "emitted_conserved": conserved,
    }]
    for k in args.kill_events:
        run_dir = workdir / f"kill-{k}"
        killed = _spawn(config, run_dir, kill_after=k)
        was_killed = killed.returncode == -signal.SIGKILL
        resumed = run_ingest(config, run_dir, resume=True)
        fingerprint = resumed.state.fingerprint()
        ok = was_killed and fingerprint == ref_fingerprint
        failed += 0 if ok else 1
        verdicts.append({
            "label": f"kill-{k}",
            "killed": was_killed,
            "fingerprint": fingerprint,
            "bit_identical": fingerprint == ref_fingerprint,
        })
        print(f"  {'PASS' if ok else 'FAIL'} kill-{k}: killed={was_killed} "
              f"bit-identical={fingerprint == ref_fingerprint}")

    with open(artifacts / "ingest_smoke.json", "w") as handle:
        json.dump(verdicts, handle, indent=2, sort_keys=True)
    for name in ("metrics.jsonl", "summary.json", "ledger.json"):
        source = workdir / "reference" / name
        if source.exists():
            shutil.copy2(source, artifacts / name)
    dlq_dir = workdir / "reference" / "dlq"
    if dlq_dir.is_dir():
        shutil.copytree(dlq_dir, artifacts / "dlq", dirs_exist_ok=True)
    print(f"verdicts + DLQ + metrics under {artifacts}")

    if failed:
        print(f"ingest-smoke FAILED: {failed} scenario(s)")
        return 1
    print(f"ingest-smoke OK: accounting conserved under faults; "
          f"{len(args.kill_events)} killed run(s) resumed to a state "
          "bit-for-bit identical to the uninterrupted reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
