"""Every number the DSN'21 paper reports, as importable constants.

These values are the calibration targets for the synthetic corpus generator
(:mod:`repro.corpus`) and the comparison baselines for every benchmark in
``benchmarks/``.  Each constant cites the paper section, table, or figure it
comes from.  Percentages are stored as fractions in [0, 1].
"""

from __future__ import annotations

from types import MappingProxyType

# --------------------------------------------------------------------------
# SS II-B: dataset sizes (critical bugs identified as of April 2020).
# --------------------------------------------------------------------------
CRITICAL_BUG_COUNTS = MappingProxyType(
    {
        "FAUCET": 251,
        "ONOS": 186,
        "CORD": 358,
    }
)

#: Bugs manually analysed per controller (SS II-B: "randomly selected 50
#: closed bugs from each controller").
MANUAL_SAMPLE_PER_CONTROLLER = 50

#: The automated analysis is verified against "over 500 critical bugs".
EXTENDED_DATASET_MIN = 500

#: SS VII-B: the whole Jira dataset is "~5X" the manually labeled dataset.
WHOLE_DATASET_SCALE = 5.0

# --------------------------------------------------------------------------
# SS II-C: NLP validation (2/3 train, 1/3 test cross-validation).
# --------------------------------------------------------------------------
NLP_TRAIN_FRACTION = 2.0 / 3.0
SVM_BUG_TYPE_ACCURACY = 0.96
SVM_SYMPTOM_ACCURACY = 0.86

# --------------------------------------------------------------------------
# SS III (RQ1): determinism per controller.
# --------------------------------------------------------------------------
DETERMINISM_RATE = MappingProxyType(
    {
        "FAUCET": 0.96,
        "ONOS": 0.94,
        "CORD": 0.94,
    }
)

# --------------------------------------------------------------------------
# SS IV (RQ2): symptom marginals across the manual corpus.
# --------------------------------------------------------------------------
SYMPTOM_SHARE = MappingProxyType(
    {
        "byzantine": 0.6133,
        "fail_stop": 0.20,
        "error_message": 0.147,
        "performance": 0.04,
    }
)

#: Breakdown *within* byzantine failures (SS IV; the paper reports these as
#: shares of the byzantine class: gray failures 52.17%, stalling 20.65%,
#: incorrect behaviour 27.18%).
BYZANTINE_MODE_SHARE = MappingProxyType(
    {
        "gray_failure": 0.5217,
        "stall": 0.2065,
        "incorrect_behavior": 0.2718,
    }
)

# --------------------------------------------------------------------------
# SS V-A (RQ3): trigger marginals across the manual corpus.
# --------------------------------------------------------------------------
TRIGGER_SHARE = MappingProxyType(
    {
        "configuration": 0.388,
        "external_calls": 0.33,
        "network_events": 0.198,
        "hardware_reboots": 0.084,
    }
)

#: Table III (configuration sub-categories, per controller).
CONFIG_SUBCATEGORY_SHARE = MappingProxyType(
    {
        "FAUCET": MappingProxyType(
            {"controller": 0.529, "data_plane": 0.117, "third_party": 0.354}
        ),
        "ONOS": MappingProxyType(
            {"controller": 0.60, "data_plane": 0.15, "third_party": 0.25}
        ),
        "CORD": MappingProxyType(
            {"controller": 0.642, "data_plane": 0.142, "third_party": 0.216}
        ),
    }
)

#: SS V-A: only 25% of configuration-triggered bugs are fixed by changing the
#: configuration itself.
CONFIG_BUGS_FIXED_BY_CONFIG = 0.25

#: SS V-A: 41.4% of external-call bug fixes add compatibility (change calls /
#: arguments to match the external API, or upgrade the package).
EXTERNAL_CALL_COMPATIBILITY_FIX = 0.414

# --------------------------------------------------------------------------
# SS VII-A (RQ4): controller-selection statistics.
# --------------------------------------------------------------------------
#: FAUCET: 52.5% of bugs are due to missing logic.
FAUCET_MISSING_LOGIC_SHARE = 0.525
#: CORD vs ONOS load-related bugs: 30% vs 16%.
LOAD_BUG_SHARE = MappingProxyType({"CORD": 0.30, "ONOS": 0.16})
#: The paper's recommendation ordering (most to least stable/performant).
CONTROLLER_RECOMMENDATION = ("ONOS", "CORD", "FAUCET")

# --------------------------------------------------------------------------
# SS VII-B: correlation analysis (Fig 12) and topic uniqueness (Fig 14).
# --------------------------------------------------------------------------
#: Fig 12: share of bug-category pairs that are only "fairly" correlated vs
#: the strongly-correlated long tail.
FAIRLY_CORRELATED_SHARE = 0.9372
STRONGLY_CORRELATED_SHARE = 0.0628

#: Fig 14 categories with the most unique topics (keyword vocabularies).
TOPIC_UNIQUENESS_CATEGORIES = (
    "deterministic",
    "byzantine",
    "add_synchronization",
    "third_party_calls",
)

# --------------------------------------------------------------------------
# Table VII: symptom shares across domains (SDN = this paper; Cloud and BGP
# from the studies the paper compares against).  ``None`` marks "NA".
# --------------------------------------------------------------------------
CROSS_DOMAIN_SYMPTOMS = MappingProxyType(
    {
        "fail_stop": MappingProxyType({"SDN": 0.20, "Cloud": 0.59, "BGP": 0.39}),
        "performance": MappingProxyType({"SDN": 0.04, "Cloud": 0.14, "BGP": None}),
        "error_message": MappingProxyType({"SDN": 0.147, "Cloud": None, "BGP": None}),
        "byzantine": MappingProxyType({"SDN": 0.6133, "Cloud": 0.25, "BGP": 0.38}),
    }
)

# --------------------------------------------------------------------------
# SS VI: software-engineering analysis.
# --------------------------------------------------------------------------
#: Fig 11: FAUCET core commits by functional subsystem.
FAUCET_COMMIT_SHARE = MappingProxyType(
    {
        "configuration": 0.38,
        "network_functionality": 0.35,
        "external_abstraction": 0.27,
    }
)

#: Table IV: FAUCET dependency burn-down (# of version changes in the
#: requirements history) and the paper's one-line description.
FAUCET_DEPENDENCY_BURNDOWN = MappingProxyType(
    {
        "ryu": (28, "component-based SDN framework"),
        "chewie": (19, "802.1X standard implementation"),
        "prometheus_client": (8, "monitoring system"),
        "pyyaml": (6, "YAML parser"),
        "eventlet": (5, "networking library"),
        "beka": (5, "BGP speaker"),
        "msgpack": (2, "binary serialization"),
        "influxdb": (1, "time series database"),
        "networkx": (1, "network analysis"),
        "pbr": (1, "management of setuptools packaging"),
        "pytricia": (1, "IP address lookup"),
    }
)

#: SS VI-A: ONOS releases covered by the smell analysis (Fig 8) in order.
ONOS_RELEASES = ("1.12", "1.13", "1.14", "1.15", "2.0", "2.1", "2.2", "2.3")

#: SS VI-A: net.intent.impl class growth from ONOS 1.12 to 2.3.
INTENT_IMPL_CLASSES = MappingProxyType({"1.12": 49, "2.3": 107})

#: Fig 8 qualitative shapes, used by shape assertions in the benches.
#:   - architecture smells (god component) roughly constant,
#:   - unstable dependency steadily decreasing 1.12 -> 2.3,
#:   - design smells spike between 1.12-1.14 then flat or declining.
SMELL_TRENDS = MappingProxyType(
    {
        "god_component": "constant",
        "unstable_dependency": "decreasing",
        "insufficient_modularization": "spike_then_flat",
        "broken_hierarchy": "spike_then_decline",
        "hub_like_modularization": "low",
        "missing_hierarchy": "low",
    }
)

# --------------------------------------------------------------------------
# Named bug case studies discussed in the paper.
# --------------------------------------------------------------------------
CASE_STUDIES = MappingProxyType(
    {
        "FAUCET-1623": "mirror interface fails to mirror output broadcast packets",
        "CORD-2470": "misconfiguration causes null pointer crash in host/mcast handlers",
        "CORD-1734": "global-lock thread contention degrades all API calls",
        "FAUCET-355": "Gauge crashes on data-type mismatch with InfluxDB",
        "VOL-549": "VOLTHA core stuck waiting for adapter after OLT reboot",
        "ONOS-4859": "ineffective memory use under load",
        "ONOS-5992": "killing one ONOS instance causes cluster failure",
        "FAUCET-2399": "chewie update prevented FAUCET installation",
        "CVE-2018-1000615": "outdated OVSDB enables denial of service on ONOS",
        "ONOS-6594": "major upgrade re-parents Run under AsyncLeaderElector",
    }
)
