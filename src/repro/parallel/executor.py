"""Deterministic work-pool executor for the NLP/fault-campaign hot paths.

The contract that makes parallelism safe to sprinkle through the pipeline:

* **Fixed result ordering** — ``map`` always returns results in *input*
  order, never completion order, so ``jobs=4`` is indistinguishable from
  ``jobs=1`` for any pure task function.
* **Pure tasks only** — a task must be a deterministic function of its
  arguments.  Callers that need randomness derive an independent seeded
  stream per task (e.g. ``np.random.default_rng((seed, task_index))``)
  instead of sharing one sequential stream.
* **Serial fallback** — ``jobs=1`` (or an unavailable backend) degrades to
  a plain loop with no executor machinery, so the serial path *is* the
  reference semantics, not a separate code path.
* **Fail-fast** — the first task exception propagates to the caller
  (after the pool shuts down); there is no partial-result swallowing here.
  Per-item fault boundaries live in :mod:`repro.resilience.executor`.

Backends: ``serial`` (plain loop), ``thread`` (for tasks that share
unpicklable state or mutate per-task objects), ``process`` (for CPU-bound
numeric work; task functions must be module-level picklables).  ``process``
prefers the ``fork`` start method where available so numpy state and the
imported package are inherited rather than re-imported.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

_BACKENDS = ("auto", "serial", "thread", "process")


class WorkPool:
    """Map pure functions over task lists with a fixed-ordering guarantee.

    Parameters
    ----------
    jobs:
        Worker count.  ``1`` means strictly serial execution (no pool is
        ever created).
    backend:
        ``"auto"`` picks ``process`` for ``jobs > 1`` (falling back to
        serial execution if worker processes cannot be created), or can be
        pinned to ``"serial"``, ``"thread"`` or ``"process"``.
    """

    def __init__(self, jobs: int = 1, *, backend: str = "auto") -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.jobs = jobs
        self.backend = backend
        #: Set after each ``map`` to the backend that actually ran it.
        self.last_backend: str | None = None

    # -- introspection ---------------------------------------------------------
    @property
    def effective_backend(self) -> str:
        """The backend ``map`` will attempt (before any fallback)."""
        if self.jobs == 1 or self.backend == "serial":
            return "serial"
        if self.backend == "auto":
            return "process"
        return self.backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkPool(jobs={self.jobs}, backend={self.backend!r})"

    # -- execution -------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """``[fn(t) for t in tasks]``, possibly computed concurrently.

        Results are returned in input order regardless of completion order.
        The first task exception is re-raised.
        """
        items = list(tasks)
        backend = self.effective_backend
        if not items or len(items) == 1 or backend == "serial":
            self.last_backend = "serial"
            return [fn(item) for item in items]
        if backend == "thread":
            return self._map_threads(fn, items)
        return self._map_processes(fn, items)

    def starmap(
        self, fn: Callable[..., Any], tasks: Iterable[Sequence[Any]]
    ) -> list[Any]:
        """Like :meth:`map` but each task is an argument tuple."""
        return self.map(_StarTask(fn), [tuple(task) for task in tasks])

    def _map_threads(self, fn: Callable[[Any], Any], items: list[Any]) -> list[Any]:
        from concurrent.futures import ThreadPoolExecutor

        workers = min(self.jobs, len(items))
        with ThreadPoolExecutor(max_workers=workers) as executor:
            # Executor.map preserves submission order in its result iterator.
            results = list(executor.map(fn, items))
        self.last_backend = "thread"
        return results

    def _map_processes(self, fn: Callable[[Any], Any], items: list[Any]) -> list[Any]:
        import pickle
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            # Lambdas and closures cannot cross the process boundary; the
            # pickler reports that as PicklingError, AttributeError, or
            # TypeError depending on where lookup fails, so probe upfront
            # rather than guessing from a mid-map failure.
            pickle.dumps(fn)
        except (pickle.PicklingError, AttributeError, TypeError):
            self.last_backend = "serial-fallback"
            return [fn(item) for item in items]
        try:
            import multiprocessing

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            workers = min(self.jobs, len(items))
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as ex:
                results = list(ex.map(fn, items))
        except (OSError, BrokenProcessPool, ImportError, pickle.PicklingError):
            # Sandboxes without working process spawning, a worker that died
            # on us, or a task/result that cannot be shipped back all fall
            # back to the reference serial semantics — tasks are pure by
            # contract, so re-running is safe.
            self.last_backend = "serial-fallback"
            return [fn(item) for item in items]
        self.last_backend = "process"
        return results


class _StarTask:
    """Picklable argument-unpacking wrapper for :meth:`WorkPool.starmap`."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)
