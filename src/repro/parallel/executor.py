"""Deterministic work-pool executor for the NLP/fault-campaign hot paths.

The contract that makes parallelism safe to sprinkle through the pipeline:

* **Fixed result ordering** — ``map`` always returns results in *input*
  order, never completion order, so ``jobs=4`` is indistinguishable from
  ``jobs=1`` for any pure task function.
* **Pure tasks only** — a task must be a deterministic function of its
  arguments.  Callers that need randomness derive an independent seeded
  stream per task (e.g. ``np.random.default_rng((seed, task_index))``)
  instead of sharing one sequential stream.
* **Serial fallback** — ``jobs=1`` (or an unavailable backend) degrades to
  a plain loop with no executor machinery, so the serial path *is* the
  reference semantics, not a separate code path.
* **Fail-fast** — the first task exception propagates to the caller
  (after the pool shuts down); there is no partial-result swallowing here.
  Per-item fault boundaries live in :mod:`repro.resilience.executor`.
* **Worker-crash containment** — a worker that dies hard (OOM kill,
  ``os._exit``, a segfaulting extension) no longer aborts the whole map:
  results already completed are kept, and only the unfinished tasks are
  re-executed serially, each in a fresh single-worker pool.  A task that
  keeps killing its worker is *poison*: after ``poison_attempts`` tries it
  is quarantined and :class:`PoisonTaskError` is raised instead of looping
  forever.  Containment is priced: every contained task leaves an entry in
  ``WorkPool.containment`` so campaigns can ledger the recovery cost.

Backends: ``serial`` (plain loop), ``thread`` (for tasks that share
unpicklable state or mutate per-task objects), ``process`` (for CPU-bound
numeric work; task functions must be module-level picklables).  ``process``
prefers the ``fork`` start method where available so numpy state and the
imported package are inherited rather than re-imported.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.errors import ReproError

_BACKENDS = ("auto", "serial", "thread", "process")


class PoisonTaskError(ReproError):
    """One task repeatedly killed its worker process and was quarantined."""

    def __init__(self, index: int, attempts: int) -> None:
        super().__init__(
            f"task {index} killed its worker process on all {attempts} "
            "attempt(s) and was quarantined"
        )
        self.index = index
        self.attempts = attempts


class WorkPool:
    """Map pure functions over task lists with a fixed-ordering guarantee.

    Parameters
    ----------
    jobs:
        Worker count.  ``1`` means strictly serial execution (no pool is
        ever created).
    backend:
        ``"auto"`` picks ``process`` for ``jobs > 1`` (falling back to
        serial execution if worker processes cannot be created), or can be
        pinned to ``"serial"``, ``"thread"`` or ``"process"``.
    """

    def __init__(
        self, jobs: int = 1, *, backend: str = "auto", poison_attempts: int = 3
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if poison_attempts < 1:
            raise ValueError("poison_attempts must be >= 1")
        self.jobs = jobs
        self.backend = backend
        self.poison_attempts = poison_attempts
        #: Set after each ``map`` to the backend that actually ran it.
        self.last_backend: str | None = None
        #: Per-task containment records from the last ``map``:
        #: ``{"index", "attempts", "outcome"}`` with outcome ``"recovered"``
        #: or ``"quarantined"``.
        self.containment: list[dict[str, Any]] = []

    # -- introspection ---------------------------------------------------------
    @property
    def effective_backend(self) -> str:
        """The backend ``map`` will attempt (before any fallback)."""
        if self.jobs == 1 or self.backend == "serial":
            return "serial"
        if self.backend == "auto":
            return "process"
        return self.backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkPool(jobs={self.jobs}, backend={self.backend!r})"

    # -- execution -------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """``[fn(t) for t in tasks]``, possibly computed concurrently.

        Results are returned in input order regardless of completion order.
        The first task exception is re-raised.
        """
        items = list(tasks)
        self.containment = []
        backend = self.effective_backend
        if not items or len(items) == 1 or backend == "serial":
            self.last_backend = "serial"
            return [fn(item) for item in items]
        if backend == "thread":
            return self._map_threads(fn, items)
        return self._map_processes(fn, items)

    def starmap(
        self, fn: Callable[..., Any], tasks: Iterable[Sequence[Any]]
    ) -> list[Any]:
        """Like :meth:`map` but each task is an argument tuple."""
        return self.map(_StarTask(fn), [tuple(task) for task in tasks])

    def _map_threads(self, fn: Callable[[Any], Any], items: list[Any]) -> list[Any]:
        from concurrent.futures import ThreadPoolExecutor

        workers = min(self.jobs, len(items))
        with ThreadPoolExecutor(max_workers=workers) as executor:
            # Executor.map preserves submission order in its result iterator.
            results = list(executor.map(fn, items))
        self.last_backend = "thread"
        return results

    def _mp_context(self):
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return None

    def _map_processes(self, fn: Callable[[Any], Any], items: list[Any]) -> list[Any]:
        import pickle
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            # Lambdas and closures cannot cross the process boundary; the
            # pickler reports that as PicklingError, AttributeError, or
            # TypeError depending on where lookup fails, so probe upfront
            # rather than guessing from a mid-map failure.
            pickle.dumps(fn)
        except (pickle.PicklingError, AttributeError, TypeError):
            self.last_backend = "serial-fallback"
            return [fn(item) for item in items]
        futures = None
        try:
            workers = min(self.jobs, len(items))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=self._mp_context()
            ) as ex:
                futures = [ex.submit(fn, item) for item in items]
                results = [future.result() for future in futures]
        except BrokenProcessPool:
            # A worker died hard mid-map.  Keep everything that finished and
            # contain the rest instead of aborting (or re-running) the whole
            # batch.
            return self._contain_broken_pool(fn, items, futures)
        except (OSError, ImportError, pickle.PicklingError):
            # Sandboxes without working process spawning, or a task/result
            # that cannot be shipped back, fall back to the reference serial
            # semantics — tasks are pure by contract, so re-running is safe.
            self.last_backend = "serial-fallback"
            return [fn(item) for item in items]
        self.last_backend = "process"
        return results

    def _contain_broken_pool(
        self, fn: Callable[[Any], Any], items: list[Any], futures: list | None
    ) -> list[Any]:
        """Salvage a broken pool: keep done results, re-run the rest.

        Completed futures keep their results (input order is positional, so
        ordering is preserved).  Unfinished tasks re-execute one at a time,
        each in a fresh single-worker pool so a poison task can only kill
        its own sandbox; after ``poison_attempts`` worker deaths the task is
        quarantined via :class:`PoisonTaskError`.  A genuine task exception
        found along the way still fails fast, per the map contract.
        """
        from concurrent.futures.process import BrokenProcessPool

        results: list[Any] = [None] * len(items)
        pending: list[int] = []
        for index, future in enumerate(futures or []):
            if future.done() and not future.cancelled():
                error = future.exception()
                if error is None:
                    results[index] = future.result()
                    continue
                if not isinstance(error, BrokenProcessPool):
                    raise error
            pending.append(index)
        if futures is None:
            pending = list(range(len(items)))
        self.last_backend = "process-contained"
        for index in pending:
            results[index] = self._run_contained(fn, items[index], index)
        return results

    def _run_contained(self, fn: Callable[[Any], Any], item: Any, index: int) -> Any:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        for attempt in range(1, self.poison_attempts + 1):
            try:
                with ProcessPoolExecutor(
                    max_workers=1, mp_context=self._mp_context()
                ) as ex:
                    value = ex.submit(fn, item).result()
            except (BrokenProcessPool, OSError):
                # The worker died again (or the pool could not even start).
                # Never re-run a worker-killing task in the parent process —
                # containment must not turn into parent death.
                continue
            self.containment.append(
                {"index": index, "attempts": attempt, "outcome": "recovered"}
            )
            return value
        self.containment.append(
            {
                "index": index,
                "attempts": self.poison_attempts,
                "outcome": "quarantined",
            }
        )
        raise PoisonTaskError(index, self.poison_attempts)


class _StarTask:
    """Picklable argument-unpacking wrapper for :meth:`WorkPool.starmap`."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)
