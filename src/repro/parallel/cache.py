"""Content-addressed artifact cache for expensive pipeline stages.

Bug-study pipelines are rerun constantly with varied parameters (Ozkan et
al.; Catolino et al.) — but most reruns repeat most of the work: the same
corpus seed, the same vectorizer, the same per-dimension classifier.  The
cache keys every artifact on the *complete* configuration that produced it
(corpus seed + vectorizer/model hyperparameters), so

* any hyperparameter or seed change produces a different key (a stale
  artifact can never be returned for a new configuration), and
* two runs with identical configurations share work, with no false sharing
  between namespaces (an SVM artifact can never satisfy a Tree lookup —
  the namespace is part of the key material).

Artifacts live under ``benchmarks/artifacts/cache/<namespace>/`` as a
pickle payload plus a JSON metadata sidecar recording the canonicalized
parameters, so a cache directory is auditable with plain ``cat``.
"""

from __future__ import annotations

import enum
import hashlib
import json
import pickle
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ReproError

#: Default cache location, relative to the repository root.
DEFAULT_CACHE_ROOT = Path("benchmarks") / "artifacts" / "cache"

#: Bump when the payload format changes; part of every key.
_FORMAT_VERSION = 1


class CacheError(ReproError):
    """A cache key could not be derived from the given parameters."""


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-encodable form.

    Mappings are key-sorted, sequences become lists, enums become
    ``"ClassName.MEMBER"``, and numpy scalars collapse to Python numbers.
    Floats keep full ``repr`` precision through ``json.dumps``.  Anything
    else (arrays, callables, open handles) is rejected: silently hashing
    an unstable repr would create false cache sharing.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # Normalize -0.0 so it cannot split keys with 0.0.
        return value + 0.0
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, Mapping):
        items = {}
        for key in value:
            if not isinstance(key, (str, int, bool, enum.Enum)):
                raise CacheError(f"unhashable cache-key field name: {key!r}")
            items[str(canonicalize(key))] = canonicalize(value[key])
        return dict(sorted(items.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [canonicalize(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
        return items
    # numpy scalars expose .item(); accept them without importing numpy here.
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return canonicalize(value.item())
    raise CacheError(
        f"cannot build a cache key from {type(value).__name__!r} "
        f"(value {value!r}); reduce it to plain JSON types first"
    )


def cache_key(namespace: str, params: Mapping[str, Any]) -> str:
    """SHA-256 hex digest identifying ``(namespace, params)``.

    The namespace is part of the hashed material, so equal parameter sets
    in different namespaces (e.g. ``svm`` vs ``tree``) never collide.
    """
    if not namespace or "/" in namespace:
        raise CacheError(f"invalid cache namespace {namespace!r}")
    payload = json.dumps(
        {
            "format": _FORMAT_VERSION,
            "namespace": namespace,
            "params": canonicalize(dict(params)),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """Filesystem-backed artifact store keyed by :func:`cache_key`."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_ROOT) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- paths -----------------------------------------------------------------
    def path_for(self, namespace: str, params: Mapping[str, Any]) -> Path:
        key = cache_key(namespace, params)
        return self.root / namespace / f"{key}.pkl"

    def _meta_path(self, payload_path: Path) -> Path:
        return payload_path.with_suffix(".json")

    # -- access ----------------------------------------------------------------
    def get(self, namespace: str, params: Mapping[str, Any]) -> Any | None:
        """The cached artifact, or ``None`` on miss (or unreadable entry)."""
        path = self.path_for(namespace, params)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # A truncated/stale artifact is a miss, not a crash: the caller
            # recomputes and overwrites it.
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(
        self,
        namespace: str,
        params: Mapping[str, Any],
        value: Any,
        *,
        extra_meta: Mapping[str, Any] | None = None,
    ) -> Path:
        """Store ``value`` and its JSON metadata sidecar; returns the path."""
        path = self.path_for(namespace, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".pkl.tmp")
        with tmp.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)  # atomic publish: readers never see partial writes
        meta = {
            "namespace": namespace,
            "key": path.stem,
            "format": _FORMAT_VERSION,
            "params": canonicalize(dict(params)),
            "payload": path.name,
            "bytes": path.stat().st_size,
        }
        if extra_meta:
            meta.update(canonicalize(dict(extra_meta)))
        self._meta_path(path).write_text(json.dumps(meta, indent=2, sort_keys=True))
        return path

    def get_or_compute(
        self,
        namespace: str,
        params: Mapping[str, Any],
        compute: Callable[[], Any],
        *,
        extra_meta: Mapping[str, Any] | None = None,
    ) -> tuple[Any, bool]:
        """``(artifact, hit)`` — computing and storing on miss."""
        cached = self.get(namespace, params)
        if cached is not None:
            return cached, True
        value = compute()
        self.put(namespace, params, value, extra_meta=extra_meta)
        return value, False

    # -- maintenance -----------------------------------------------------------
    def entries(self, namespace: str | None = None) -> list[Path]:
        """Payload paths currently stored (optionally one namespace)."""
        base = self.root if namespace is None else self.root / namespace
        if not base.exists():
            return []
        return sorted(base.rglob("*.pkl"))

    def clear(self, namespace: str | None = None) -> int:
        """Delete stored artifacts; returns the number removed."""
        removed = 0
        for payload in self.entries(namespace):
            meta = self._meta_path(payload)
            payload.unlink(missing_ok=True)
            meta.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stored": len(self.entries())}
