"""Content-addressed artifact cache for expensive pipeline stages.

Bug-study pipelines are rerun constantly with varied parameters (Ozkan et
al.; Catolino et al.) — but most reruns repeat most of the work: the same
corpus seed, the same vectorizer, the same per-dimension classifier.  The
cache keys every artifact on the *complete* configuration that produced it
(corpus seed + vectorizer/model hyperparameters), so

* any hyperparameter or seed change produces a different key (a stale
  artifact can never be returned for a new configuration), and
* two runs with identical configurations share work, with no false sharing
  between namespaces (an SVM artifact can never satisfy a Tree lookup —
  the namespace is part of the key material).

Artifacts live under ``benchmarks/artifacts/cache/<namespace>/`` as a
pickle payload plus a JSON metadata sidecar recording the canonicalized
parameters and a sha256 digest of the payload bytes, so a cache directory
is auditable with plain ``cat`` and ``sha256sum``.

Corruption is never silent: a payload whose bytes no longer match the
sidecar digest (bit rot, a torn write, a partial copy) — or a payload
whose sidecar is missing entirely — is *quarantined* into
``<root>/.quarantine/`` with a reason file, counted in :meth:`stats`, and
reported as a miss so the caller recomputes over a clean slot.  A
bit-flipped payload that still unpickles can therefore never flow back
into a run.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ReproError

#: Default cache location, relative to the repository root.
DEFAULT_CACHE_ROOT = Path("benchmarks") / "artifacts" / "cache"

#: Directory (under the cache root) holding digest-mismatched entries.
QUARANTINE_DIRNAME = ".quarantine"

#: Bump when the payload format changes; part of every key.
_FORMAT_VERSION = 1


def _fsync_replace(tmp: Path, path: Path) -> None:
    """Durably publish ``tmp`` as ``path``: fsync the data, then rename."""
    with tmp.open("rb") as handle:
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class CacheError(ReproError):
    """A cache key could not be derived from the given parameters."""


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-encodable form.

    Mappings are key-sorted, sequences become lists, enums become
    ``"ClassName.MEMBER"``, and numpy scalars collapse to Python numbers.
    Floats keep full ``repr`` precision through ``json.dumps``.  Anything
    else (arrays, callables, open handles) is rejected: silently hashing
    an unstable repr would create false cache sharing.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # Normalize -0.0 so it cannot split keys with 0.0.
        return value + 0.0
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, Mapping):
        items = {}
        for key in value:
            if not isinstance(key, (str, int, bool, enum.Enum)):
                raise CacheError(f"unhashable cache-key field name: {key!r}")
            items[str(canonicalize(key))] = canonicalize(value[key])
        return dict(sorted(items.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [canonicalize(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
        return items
    # numpy scalars expose .item(); accept them without importing numpy here.
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return canonicalize(value.item())
    raise CacheError(
        f"cannot build a cache key from {type(value).__name__!r} "
        f"(value {value!r}); reduce it to plain JSON types first"
    )


def cache_key(namespace: str, params: Mapping[str, Any]) -> str:
    """SHA-256 hex digest identifying ``(namespace, params)``.

    The namespace is part of the hashed material, so equal parameter sets
    in different namespaces (e.g. ``svm`` vs ``tree``) never collide.
    """
    if not namespace or "/" in namespace:
        raise CacheError(f"invalid cache namespace {namespace!r}")
    payload = json.dumps(
        {
            "format": _FORMAT_VERSION,
            "namespace": namespace,
            "params": canonicalize(dict(params)),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntryInfo:
    """Staleness metadata for one stored entry.

    ``created_at`` and ``age`` are in the cache clock's units (wall seconds
    by default, simulated seconds when a sim clock is injected).  Entries
    written before creation stamps existed report ``None`` for both.
    """

    namespace: str
    key: str
    created_at: float | None
    age: float | None
    bytes: int | None
    sha256: str | None

    @property
    def stamped(self) -> bool:
        return self.created_at is not None


class ArtifactCache:
    """Filesystem-backed artifact store keyed by :func:`cache_key`.

    ``clock`` is a zero-argument callable returning the current time used
    to stamp entries at :meth:`put` and to compute ages in
    :meth:`entry_info`/:meth:`stats`.  It defaults to wall time; a serving
    daemon injects its simulation clock so entry ages are deterministic.
    """

    def __init__(
        self,
        root: str | Path = DEFAULT_CACHE_ROOT,
        *,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self._clock_is_default = clock is None
        self._clock = clock if clock is not None else time.time
        #: :class:`CacheEntryInfo` of the most recent :meth:`lookup` hit.
        self.last_entry_info: CacheEntryInfo | None = None

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Swap the timestamp source (e.g. to a simulation clock)."""
        self._clock = clock
        self._clock_is_default = False

    # -- paths -----------------------------------------------------------------
    def path_for(self, namespace: str, params: Mapping[str, Any]) -> Path:
        key = cache_key(namespace, params)
        return self.root / namespace / f"{key}.pkl"

    def _meta_path(self, payload_path: Path) -> Path:
        return payload_path.with_suffix(".json")

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    # -- integrity -------------------------------------------------------------
    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt payload (and sidecar) aside instead of deleting it.

        The entry stops satisfying lookups immediately, but the evidence
        survives for a post-mortem: the payload, its sidecar, and a
        ``.reason`` file land under ``<root>/.quarantine/<namespace>/``.
        """
        target_dir = self.quarantine_root / path.parent.name
        target_dir.mkdir(parents=True, exist_ok=True)
        for artifact in (path, self._meta_path(path)):
            if artifact.exists():
                os.replace(artifact, target_dir / artifact.name)
        (target_dir / f"{path.stem}.reason").write_text(reason + "\n")
        self.quarantined += 1

    def digest_of(self, namespace: str, params: Mapping[str, Any]) -> str | None:
        """The stored payload digest from the sidecar, or ``None``."""
        meta_path = self._meta_path(self.path_for(namespace, params))
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            return None
        digest = meta.get("sha256")
        return str(digest) if digest is not None else None

    # -- access ----------------------------------------------------------------
    def lookup(self, namespace: str, params: Mapping[str, Any]) -> tuple[Any, bool]:
        """``(artifact, found)`` — digest-verified, quarantining on corruption.

        Unlike :meth:`get`, the ``found`` flag distinguishes a cached
        ``None`` from a miss.
        """
        path = self.path_for(namespace, params)
        if not path.exists():
            self.misses += 1
            return None, False
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None, False
        try:
            meta = json.loads(self._meta_path(path).read_text())
        except (OSError, ValueError) as exc:
            self._quarantine(path, f"missing or unreadable sidecar: {exc}")
            self.misses += 1
            return None, False
        expected = meta.get("sha256")
        if expected is not None:
            actual = hashlib.sha256(data).hexdigest()
            if actual != expected:
                self._quarantine(
                    path, f"payload digest mismatch: sidecar {expected}, "
                    f"payload {actual}"
                )
                self.misses += 1
                return None, False
        try:
            value = pickle.loads(data)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ValueError, TypeError) as exc:
            self._quarantine(path, f"unpicklable payload: {exc}")
            self.misses += 1
            return None, False
        self.hits += 1
        self.last_entry_info = self._info_from_meta(meta)
        return value, True

    def get(self, namespace: str, params: Mapping[str, Any]) -> Any | None:
        """The cached artifact, or ``None`` on miss (or quarantined entry).

        ``None`` is ambiguous for caches that store ``None`` artifacts —
        use :meth:`lookup` when that matters.
        """
        value, found = self.lookup(namespace, params)
        return value if found else None

    def put(
        self,
        namespace: str,
        params: Mapping[str, Any],
        value: Any,
        *,
        extra_meta: Mapping[str, Any] | None = None,
    ) -> Path:
        """Store ``value`` with a digest-bearing sidecar; returns the path.

        Both files publish atomically (tmp sibling + ``os.replace`` after
        fsync), sidecar first: a crash between the two leaves either a
        stale pair (digest mismatch -> quarantined on next read) or a
        sidecar without payload (a plain miss) — never a silently-wrong
        artifact.
        """
        path = self.path_for(namespace, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        meta = {
            "namespace": namespace,
            "key": path.stem,
            "format": _FORMAT_VERSION,
            "params": canonicalize(dict(params)),
            "payload": path.name,
            "bytes": len(data),
            "sha256": hashlib.sha256(data).hexdigest(),
            "created_at": float(self._clock()),
        }
        if extra_meta:
            meta.update(canonicalize(dict(extra_meta)))
        meta_path = self._meta_path(path)
        meta_tmp = meta_path.with_suffix(".json.tmp")
        meta_tmp.write_text(json.dumps(meta, indent=2, sort_keys=True))
        _fsync_replace(meta_tmp, meta_path)
        tmp = path.with_suffix(".pkl.tmp")
        tmp.write_bytes(data)
        _fsync_replace(tmp, path)
        return path

    def get_or_compute(
        self,
        namespace: str,
        params: Mapping[str, Any],
        compute: Callable[[], Any],
        *,
        extra_meta: Mapping[str, Any] | None = None,
    ) -> tuple[Any, bool]:
        """``(artifact, hit)`` — computing and storing on miss."""
        cached, found = self.lookup(namespace, params)
        if found:
            return cached, True
        value = compute()
        self.put(namespace, params, value, extra_meta=extra_meta)
        return value, False

    # -- staleness -------------------------------------------------------------
    def _info_from_meta(self, meta: Mapping[str, Any]) -> CacheEntryInfo:
        created = meta.get("created_at")
        created_at = float(created) if created is not None else None
        age = None
        if created_at is not None:
            age = max(0.0, float(self._clock()) - created_at)
        size = meta.get("bytes")
        return CacheEntryInfo(
            namespace=str(meta.get("namespace", "")),
            key=str(meta.get("key", "")),
            created_at=created_at,
            age=age,
            bytes=int(size) if size is not None else None,
            sha256=meta.get("sha256"),
        )

    def entry_info(
        self, namespace: str, params: Mapping[str, Any]
    ) -> CacheEntryInfo | None:
        """Staleness metadata for ``(namespace, params)``, or ``None``.

        Reads only the sidecar — no payload verification, no hit/miss
        accounting — so probing an entry's age is cheap and side-effect
        free.
        """
        meta_path = self._meta_path(self.path_for(namespace, params))
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            return None
        return self._info_from_meta(meta)

    def _entry_ages(self) -> list[float]:
        ages = []
        for payload in self.entries():
            try:
                meta = json.loads(self._meta_path(payload).read_text())
            except (OSError, ValueError):
                continue
            info = self._info_from_meta(meta)
            if info.age is not None:
                ages.append(info.age)
        return ages

    # -- maintenance -----------------------------------------------------------
    def entries(self, namespace: str | None = None) -> list[Path]:
        """Payload paths currently stored (optionally one namespace).

        Quarantined payloads are evidence, not inventory — excluded.
        """
        base = self.root if namespace is None else self.root / namespace
        if not base.exists():
            return []
        return sorted(
            path for path in base.rglob("*.pkl")
            if QUARANTINE_DIRNAME not in path.parts
        )

    def clear(self, namespace: str | None = None) -> int:
        """Delete stored artifacts; returns the number removed."""
        removed = 0
        for payload in self.entries(namespace):
            meta = self._meta_path(payload)
            payload.unlink(missing_ok=True)
            meta.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, float]:
        """Hit/miss counters plus the age profile of stored entries.

        ``age_tracked`` counts entries carrying a creation stamp;
        ``age_min``/``age_max``/``age_mean`` summarize their ages on the
        cache clock (all 0.0 when nothing is stamped).
        """
        ages = self._entry_ages()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "stored": len(self.entries()),
            "age_tracked": len(ages),
            "age_min": round(min(ages), 6) if ages else 0.0,
            "age_max": round(max(ages), 6) if ages else 0.0,
            "age_mean": round(sum(ages) / len(ages), 6) if ages else 0.0,
        }

    def metrics(self, registry=None):
        """The :meth:`stats` dict normalized onto a ``MetricsRegistry``.

        Built on demand (the cache itself stays free of registry state so
        it remains picklable across process-pool boundaries): tallies
        become ``cache_*_total`` counters, the age profile becomes
        ``cache_age_*`` gauges.  Returns the registry.
        """
        from repro.observability.instrument import cache_to_metrics

        return cache_to_metrics(self, registry)
