"""Parallel execution + artifact caching for the pipeline hot paths.

:class:`WorkPool` is a deterministic executor: results always come back in
input order, tasks must be pure functions of their arguments, ``jobs=1``
*is* the serial reference path.  :class:`ArtifactCache` is a
content-addressed store keyed on the full configuration (corpus seed +
hyperparameters) of each artifact.  Together they make repeat pipeline
runs fast by default while staying bit-for-bit equivalent to the serial,
cold-cache run — a property enforced by ``tests/test_parallel_equivalence.py``.
"""

from repro.parallel.cache import (
    DEFAULT_CACHE_ROOT,
    QUARANTINE_DIRNAME,
    ArtifactCache,
    CacheEntryInfo,
    CacheError,
    cache_key,
    canonicalize,
)
from repro.parallel.executor import PoisonTaskError, WorkPool

__all__ = [
    "ArtifactCache",
    "CacheEntryInfo",
    "CacheError",
    "DEFAULT_CACHE_ROOT",
    "PoisonTaskError",
    "QUARANTINE_DIRNAME",
    "WorkPool",
    "cache_key",
    "canonicalize",
]
