"""Code model: the structural graph the smell detectors analyze.

This is what Designite extracts from Java source before computing metrics —
packages containing classes, classes containing methods, plus class-level
dependency edges and inheritance links.  Building it explicitly lets the
analyzer run on synthetic release models (and, in principle, on any language
for which a front-end produces this graph — lifting the Java-only limitation
the paper notes in SS VIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CodeModelError


@dataclass(frozen=True)
class Method:
    """A method with the attributes the metrics need."""

    name: str
    complexity: int = 1  # cyclomatic complexity
    is_public: bool = True
    #: Number of switch/if-else chains that branch on an object's *type* —
    #: the tell-tale of a Missing Hierarchy smell.
    type_switches: int = 0

    def __post_init__(self) -> None:
        if self.complexity < 1:
            raise CodeModelError(f"method {self.name}: complexity must be >= 1")


@dataclass
class ClassModel:
    """A class: methods, size, inheritance, and outgoing dependencies."""

    name: str  # fully qualified, e.g. "org.onos.net.intent.impl.Compiler"
    package: str
    methods: list[Method] = field(default_factory=list)
    fields: int = 0
    loc: int = 0
    supertype: str | None = None  # fully qualified class name
    #: Names of supertype methods this class overrides or calls.
    inherited_members_used: frozenset[str] = frozenset()
    #: Fully qualified names of classes this class depends on.
    dependencies: frozenset[str] = frozenset()

    @property
    def method_count(self) -> int:
        return len(self.methods)

    @property
    def public_method_count(self) -> int:
        return sum(1 for m in self.methods if m.is_public)

    @property
    def type_switch_count(self) -> int:
        return sum(m.type_switches for m in self.methods)


@dataclass
class PackageModel:
    """A package (Designite's 'component'): a named set of classes."""

    name: str
    classes: dict[str, ClassModel] = field(default_factory=dict)

    @property
    def class_count(self) -> int:
        return len(self.classes)

    @property
    def total_loc(self) -> int:
        return sum(c.loc for c in self.classes.values())


class CodeModel:
    """A whole-codebase structural graph."""

    def __init__(self, name: str, version: str) -> None:
        self.name = name
        self.version = version
        self._packages: dict[str, PackageModel] = {}
        self._classes: dict[str, ClassModel] = {}

    # -- construction ---------------------------------------------------------
    def add_class(self, cls: ClassModel) -> None:
        """Register a class; its package is created on demand."""
        if cls.name in self._classes:
            raise CodeModelError(f"duplicate class {cls.name!r}")
        package = self._packages.setdefault(cls.package, PackageModel(cls.package))
        package.classes[cls.name] = cls
        self._classes[cls.name] = cls

    def validate(self) -> None:
        """Check referential integrity of supertype/dependency edges.

        External references (JDK, third-party libraries) are allowed — an
        edge pointing outside the model is simply not a modeled class — but a
        class must not depend on itself, and supertypes that *are* in the
        model must exist under the recorded name.
        """
        for cls in self._classes.values():
            if cls.name in cls.dependencies:
                raise CodeModelError(f"{cls.name} depends on itself")

    # -- lookup ------------------------------------------------------------------
    @property
    def packages(self) -> dict[str, PackageModel]:
        return dict(self._packages)

    @property
    def classes(self) -> dict[str, ClassModel]:
        return dict(self._classes)

    def package(self, name: str) -> PackageModel:
        try:
            return self._packages[name]
        except KeyError:
            raise CodeModelError(f"no such package {name!r}") from None

    def get_class(self, name: str) -> ClassModel:
        try:
            return self._classes[name]
        except KeyError:
            raise CodeModelError(f"no such class {name!r}") from None

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._classes

    def iter_classes(self) -> Iterator[ClassModel]:
        return iter(self._classes.values())

    # -- derived edges --------------------------------------------------------
    def subclasses_of(self, class_name: str) -> list[ClassModel]:
        """All modeled classes whose supertype is ``class_name``."""
        return [c for c in self._classes.values() if c.supertype == class_name]

    def package_dependencies(self) -> dict[str, set[str]]:
        """Package -> set of packages it depends on (class edges lifted)."""
        deps: dict[str, set[str]] = {name: set() for name in self._packages}
        for cls in self._classes.values():
            for target_name in cls.dependencies:
                target = self._classes.get(target_name)
                if target is not None and target.package != cls.package:
                    deps[cls.package].add(target.package)
        return deps

    def class_count(self) -> int:
        return len(self._classes)

    def average_classes_per_package(self) -> float:
        if not self._packages:
            return 0.0
        return len(self._classes) / len(self._packages)
