"""Code-smell analysis (SS VI-A), a from-scratch Designite-style analyzer.

Operates on an explicit code model (packages -> classes -> methods with
dependency and inheritance edges) and implements the two architecture smells
and four design smells the paper plots in Fig 8.
"""

from repro.smells.model import ClassModel, CodeModel, Method, PackageModel
from repro.smells.metrics import (
    class_fan_in,
    class_fan_out,
    package_instability,
    weighted_methods_per_class,
)
from repro.smells.detectors import (
    SmellInstance,
    SmellKind,
    SmellReport,
    analyze,
)

__all__ = [
    "ClassModel",
    "CodeModel",
    "Method",
    "PackageModel",
    "class_fan_in",
    "class_fan_out",
    "package_instability",
    "weighted_methods_per_class",
    "SmellInstance",
    "SmellKind",
    "SmellReport",
    "analyze",
]
