"""Structural metrics underlying the smell detectors."""

from __future__ import annotations

from repro.smells.model import ClassModel, CodeModel


def class_fan_out(model: CodeModel, class_name: str) -> int:
    """Number of *modeled* classes ``class_name`` depends on."""
    cls = model.get_class(class_name)
    return sum(1 for dep in cls.dependencies if dep in model)


def class_fan_in(model: CodeModel, class_name: str) -> int:
    """Number of modeled classes that depend on ``class_name``."""
    return sum(
        1 for other in model.iter_classes() if class_name in other.dependencies
    )


def weighted_methods_per_class(cls: ClassModel) -> int:
    """WMC: sum of method cyclomatic complexities."""
    return sum(m.complexity for m in cls.methods)


def package_efferent_coupling(model: CodeModel, package: str) -> int:
    """Ce: count of packages this package depends on."""
    return len(model.package_dependencies()[package])


def package_afferent_coupling(model: CodeModel, package: str) -> int:
    """Ca: count of packages depending on this package."""
    deps = model.package_dependencies()
    return sum(1 for source, targets in deps.items() if package in targets)


def package_instability(model: CodeModel, package: str) -> float:
    """Martin's instability ``I = Ce / (Ca + Ce)``.

    0 = maximally stable (everyone depends on it, it depends on nothing);
    1 = maximally unstable.  Packages with no couplings report 1.0
    (conventionally unstable: nothing pins them down).
    """
    deps = model.package_dependencies()
    ce = len(deps[package])
    ca = sum(1 for source, targets in deps.items() if package in targets)
    if ca + ce == 0:
        return 1.0
    return ce / (ca + ce)


def all_package_instabilities(model: CodeModel) -> dict[str, float]:
    """Instability for every package, computed from one dependency pass."""
    deps = model.package_dependencies()
    afferent: dict[str, int] = {name: 0 for name in deps}
    for source, targets in deps.items():
        for target in targets:
            if target in afferent:
                afferent[target] += 1
    result: dict[str, float] = {}
    for name in deps:
        ce = len(deps[name])
        ca = afferent[name]
        result[name] = 1.0 if ca + ce == 0 else ce / (ca + ce)
    return result
