"""The six smell detectors plotted in Fig 8.

Architecture smells (system level):
  * God Component — a package concentrating too much functionality.
  * Unstable Dependency — a package depending on a less stable package
    (violates Martin's Stable Dependencies Principle).
  * Hub-like Modularization — a class that is both heavily depended-upon and
    heavily dependent (high fan-in AND fan-out).  Designite files this under
    design smells; the paper plots it with the others, so we keep the label
    but report it in the same way.

Design smells (component level):
  * Insufficient Modularization — a class too large/complex to be one unit.
  * Broken Hierarchy — a subtype that shares no IS-A behaviour with its
    supertype (e.g. the paper's ``Run extends ElectionOperation`` example,
    Fig 9, fixed by re-parenting under ``AsyncLeaderElector`` in ONOS-6594).
  * Missing Hierarchy — conditional type-switching where a hierarchy should
    exist.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import CodeModelError
from repro.smells.metrics import (
    all_package_instabilities,
    class_fan_in,
    class_fan_out,
    weighted_methods_per_class,
)
from repro.smells.model import CodeModel


class SmellKind(enum.Enum):
    """The six smells of Fig 8."""

    GOD_COMPONENT = "god_component"
    UNSTABLE_DEPENDENCY = "unstable_dependency"
    HUB_LIKE_MODULARIZATION = "hub_like_modularization"
    INSUFFICIENT_MODULARIZATION = "insufficient_modularization"
    BROKEN_HIERARCHY = "broken_hierarchy"
    MISSING_HIERARCHY = "missing_hierarchy"

    @property
    def is_architecture_smell(self) -> bool:
        return self in (SmellKind.GOD_COMPONENT, SmellKind.UNSTABLE_DEPENDENCY)


@dataclass(frozen=True)
class SmellInstance:
    """One detected smell occurrence."""

    kind: SmellKind
    subject: str  # package or class name
    detail: str


@dataclass
class Thresholds:
    """Detector thresholds (Designite-inspired defaults)."""

    god_component_classes: int = 30
    god_component_loc: int = 27_000
    unstable_dependency_margin: float = 0.0  # I(dependee) > I(depender) + margin
    hub_fan_in: int = 8
    hub_fan_out: int = 8
    insufficient_methods: int = 24
    insufficient_wmc: int = 110
    insufficient_loc: int = 1_000
    missing_hierarchy_switches: int = 3


@dataclass
class SmellReport:
    """All smells found in one code model, with per-kind counts."""

    model_name: str
    version: str
    instances: list[SmellInstance] = field(default_factory=list)

    def count(self, kind: SmellKind) -> int:
        return sum(1 for inst in self.instances if inst.kind is kind)

    def counts(self) -> dict[SmellKind, int]:
        return {kind: self.count(kind) for kind in SmellKind}

    def by_kind(self, kind: SmellKind) -> list[SmellInstance]:
        return [inst for inst in self.instances if inst.kind is kind]


def analyze(
    model: CodeModel,
    thresholds: Thresholds | None = None,
    *,
    kinds: Iterable[SmellKind] | None = None,
) -> SmellReport:
    """Run smell detectors over ``model``.

    ``kinds`` selects a subset of the six detectors (default: all), in the
    canonical :class:`SmellKind` order regardless of the order given — so
    a filtered report is always a sub-report of the full one.
    """
    model.validate()
    t = thresholds or Thresholds()
    selected = set(SmellKind) if kinds is None else set(kinds)
    unknown = selected - set(SmellKind)
    if unknown:
        raise CodeModelError(f"unknown smell kinds: {sorted(map(repr, unknown))}")
    report = SmellReport(model_name=model.name, version=model.version)
    for kind in SmellKind:
        if kind in selected:
            _DETECTORS[kind](model, t, report)
    return report


def _detect_god_components(
    model: CodeModel, t: Thresholds, report: SmellReport
) -> None:
    for package in model.packages.values():
        if (
            package.class_count > t.god_component_classes
            or package.total_loc > t.god_component_loc
        ):
            report.instances.append(
                SmellInstance(
                    kind=SmellKind.GOD_COMPONENT,
                    subject=package.name,
                    detail=(
                        f"{package.class_count} classes, {package.total_loc} LOC "
                        f"(thresholds: {t.god_component_classes} classes / "
                        f"{t.god_component_loc} LOC)"
                    ),
                )
            )


def _detect_unstable_dependencies(
    model: CodeModel, t: Thresholds, report: SmellReport
) -> None:
    instabilities = all_package_instabilities(model)
    for source, targets in sorted(model.package_dependencies().items()):
        for target in sorted(targets):
            if instabilities[target] > instabilities[source] + t.unstable_dependency_margin:
                report.instances.append(
                    SmellInstance(
                        kind=SmellKind.UNSTABLE_DEPENDENCY,
                        subject=source,
                        detail=(
                            f"depends on {target} "
                            f"(I={instabilities[target]:.2f} > I={instabilities[source]:.2f})"
                        ),
                    )
                )


def _detect_hubs(model: CodeModel, t: Thresholds, report: SmellReport) -> None:
    for cls in model.iter_classes():
        fan_in = class_fan_in(model, cls.name)
        fan_out = class_fan_out(model, cls.name)
        if fan_in >= t.hub_fan_in and fan_out >= t.hub_fan_out:
            report.instances.append(
                SmellInstance(
                    kind=SmellKind.HUB_LIKE_MODULARIZATION,
                    subject=cls.name,
                    detail=f"fan-in={fan_in}, fan-out={fan_out}",
                )
            )


def _detect_insufficient_modularization(
    model: CodeModel, t: Thresholds, report: SmellReport
) -> None:
    for cls in model.iter_classes():
        wmc = weighted_methods_per_class(cls)
        if (
            cls.public_method_count > t.insufficient_methods
            or wmc > t.insufficient_wmc
            or cls.loc > t.insufficient_loc
        ):
            report.instances.append(
                SmellInstance(
                    kind=SmellKind.INSUFFICIENT_MODULARIZATION,
                    subject=cls.name,
                    detail=(
                        f"{cls.public_method_count} public methods, WMC={wmc}, "
                        f"LOC={cls.loc}"
                    ),
                )
            )


def _detect_broken_hierarchy(
    model: CodeModel, t: Thresholds, report: SmellReport
) -> None:
    for cls in model.iter_classes():
        if cls.supertype is None or cls.supertype not in model:
            continue
        supertype = model.get_class(cls.supertype)
        if not supertype.methods:
            continue
        if not cls.inherited_members_used:
            report.instances.append(
                SmellInstance(
                    kind=SmellKind.BROKEN_HIERARCHY,
                    subject=cls.name,
                    detail=(
                        f"extends {cls.supertype} but uses/overrides none of its "
                        f"{len(supertype.methods)} methods (no IS-A relation)"
                    ),
                )
            )


def _detect_missing_hierarchy(
    model: CodeModel, t: Thresholds, report: SmellReport
) -> None:
    for cls in model.iter_classes():
        switches = cls.type_switch_count
        if switches >= t.missing_hierarchy_switches:
            report.instances.append(
                SmellInstance(
                    kind=SmellKind.MISSING_HIERARCHY,
                    subject=cls.name,
                    detail=f"{switches} type-switch sites (polymorphism missing)",
                )
            )


_DETECTORS = {
    SmellKind.GOD_COMPONENT: _detect_god_components,
    SmellKind.UNSTABLE_DEPENDENCY: _detect_unstable_dependencies,
    SmellKind.HUB_LIKE_MODULARIZATION: _detect_hubs,
    SmellKind.INSUFFICIENT_MODULARIZATION: _detect_insufficient_modularization,
    SmellKind.BROKEN_HIERARCHY: _detect_broken_hierarchy,
    SmellKind.MISSING_HIERARCHY: _detect_missing_hierarchy,
}
