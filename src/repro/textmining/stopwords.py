"""English stop-word list used by the bug-description tokenizer.

A compact list tuned for issue-tracker text: common function words plus
tracker boilerplate ("steps", "reproduce", "version") that carries no class
signal.  Domain words ("controller", "switch", "flow") are deliberately kept.
"""

from __future__ import annotations

ENGLISH_STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are aren as at be
    because been before being below between both but by can cannot could
    couldn did didn do does doesn doing don down during each few for from
    further had hadn has hasn have haven having he her here hers herself him
    himself his how i if in into is isn it its itself just me more most
    mustn my myself no nor not now of off on once only or other our ours
    ourselves out over own same shan she should shouldn so some such than
    that the their theirs them themselves then there these they this those
    through to too under until up very was wasn we were weren what when
    where which while who whom why will with won would wouldn you your yours
    yourself yourselves
    also seems seem like get got getting see saw want try tried trying
    please thanks thank hi hello issue problem bug report reported following
    steps step reproduce reproduced version versions using use used user
    run running ran
    """.split()
)
