"""TF-IDF vectorization (SS II-C step 1).

The paper extracts features with Term Frequency - Inverse Document Frequency
and feeds them to NMF for keyword extraction.  This implementation follows
the common smoothed formulation::

    tf(t, d)  = count of t in d
    idf(t)    = ln((1 + N) / (1 + df(t))) + 1
    tfidf     = tf * idf, rows optionally L2-normalized
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.parallel import WorkPool
from repro.textmining.vocabulary import Vocabulary


class TfidfVectorizer:
    """Fit a vocabulary + IDF weights, transform token lists to dense rows.

    Dense output is deliberate: the bug corpora here are a few thousand
    documents with vocabularies of a few thousand stems, well within memory,
    and dense rows keep the downstream from-scratch ML code simple.
    """

    def __init__(
        self,
        *,
        min_count: int = 1,
        max_size: int | None = None,
        sublinear_tf: bool = False,
        normalize: bool = True,
    ) -> None:
        self.min_count = min_count
        self.max_size = max_size
        self.sublinear_tf = sublinear_tf
        self.normalize = normalize
        self.vocabulary_: Vocabulary | None = None
        self.idf_: np.ndarray | None = None

    def fit(self, documents: Sequence[Sequence[str]]) -> "TfidfVectorizer":
        """Learn vocabulary and IDF weights from tokenized ``documents``."""
        vocab = Vocabulary(
            documents, min_count=self.min_count, max_size=self.max_size
        )
        n_docs = max(vocab.n_documents, 1)
        df = np.array(
            [vocab.document_frequency(tok) for tok in vocab.tokens], dtype=np.float64
        )
        self.idf_ = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        self.vocabulary_ = vocab
        return self

    def transform(
        self,
        documents: Sequence[Sequence[str]],
        *,
        pool: WorkPool | None = None,
    ) -> np.ndarray:
        """Return the ``(n_docs, n_terms)`` TF-IDF matrix.

        Rows are independent, so with a :class:`~repro.parallel.WorkPool`
        the documents are split into contiguous shards, transformed
        concurrently, and re-stacked in shard order — bit-for-bit the
        serial matrix for any worker count.  Weighting (sublinear TF, IDF,
        L2 norm) is strictly per-row, so it composes with sharding.
        """
        if self.vocabulary_ is None or self.idf_ is None:
            raise NotFittedError("TfidfVectorizer.transform called before fit")
        documents = list(documents)
        if not documents:
            return np.zeros((0, len(self.vocabulary_)), dtype=np.float64)
        if pool is None or pool.jobs == 1 or len(documents) < 2:
            return self._transform_rows(documents)
        bounds = np.linspace(0, len(documents), pool.jobs + 1).astype(int)
        shards = [
            documents[start:stop]
            for start, stop in zip(bounds[:-1], bounds[1:])
            if start < stop
        ]
        return np.vstack(pool.map(self._transform_rows, shards))

    def _transform_rows(self, documents: Sequence[Sequence[str]]) -> np.ndarray:
        """Serial transform of one document shard."""
        assert self.vocabulary_ is not None and self.idf_ is not None
        vocab = self.vocabulary_
        matrix = np.zeros((len(documents), len(vocab)), dtype=np.float64)
        for row, doc in enumerate(documents):
            for token in doc:
                idx = vocab.get(token)
                if idx >= 0:
                    matrix[row, idx] += 1.0
        if self.sublinear_tf:
            nonzero = matrix > 0
            matrix[nonzero] = 1.0 + np.log(matrix[nonzero])
        matrix *= self.idf_
        if self.normalize:
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            norms[norms == 0.0] = 1.0
            matrix /= norms
        return matrix

    def fit_transform(
        self,
        documents: Sequence[Sequence[str]],
        *,
        pool: WorkPool | None = None,
    ) -> np.ndarray:
        """Equivalent to ``fit(documents).transform(documents)``."""
        return self.fit(documents).transform(documents, pool=pool)

    @property
    def feature_names(self) -> list[str]:
        """Vocabulary tokens in column order."""
        if self.vocabulary_ is None:
            raise NotFittedError("TfidfVectorizer has not been fitted")
        return self.vocabulary_.tokens
