"""Porter stemming algorithm (M. F. Porter, 1980), implemented from scratch.

The classic five-step suffix-stripping stemmer.  Used to normalize bug
descriptions before vectorization so that "crashed", "crashes", and
"crashing" share one vocabulary entry.
"""

from __future__ import annotations


_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        # 'y' is a consonant at the start or after a vowel position that was
        # itself a consonant.
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter measure m: the number of VC sequences in the stem."""
    forms = []
    for i in range(len(stem)):
        forms.append("c" if _is_consonant(stem, i) else "v")
    collapsed = []
    for f in forms:
        if not collapsed or collapsed[-1] != f:
            collapsed.append(f)
    pattern = "".join(collapsed)
    if pattern.startswith("c"):
        pattern = pattern[1:]
    if pattern.endswith("v"):
        pattern = pattern[:-1]
    return pattern.count("vc")


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """consonant-vowel-consonant where final consonant is not w, x, or y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


class PorterStemmer:
    """Stateless Porter stemmer.  ``stem`` is safe to call concurrently."""

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (lower-cased)."""
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- step 1a: plurals ---------------------------------------------------
    @staticmethod
    def _step1a(word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    # -- step 1b: -ed / -ing ------------------------------------------------
    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            if _measure(word[:-3]) > 0:
                return word[:-1]
            return word
        stripped = None
        if word.endswith("ed") and _contains_vowel(word[:-2]):
            stripped = word[:-2]
        elif word.endswith("ing") and _contains_vowel(word[:-3]):
            stripped = word[:-3]
        if stripped is None:
            return word
        if stripped.endswith(("at", "bl", "iz")):
            return stripped + "e"
        if _ends_double_consonant(stripped) and not stripped.endswith(("l", "s", "z")):
            return stripped[:-1]
        if _measure(stripped) == 1 and _ends_cvc(stripped):
            return stripped + "e"
        return stripped

    # -- step 1c: -y -> -i --------------------------------------------------
    @staticmethod
    def _step1c(word: str) -> str:
        if word.endswith("y") and _contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_RULES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_RULES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_RULES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        if word.endswith("ion") and len(word) > 4 and word[-4] in ("s", "t"):
            stem = word[:-3]
            if _measure(stem) > 1:
                return stem
            return word
        # Longest-match first so "-ement" beats "-ent".
        for suffix in sorted(self._STEP4_SUFFIXES, key=len, reverse=True):
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) > 1:
                    return stem
                return word
        return word

    @staticmethod
    def _step5a(word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = _measure(stem)
            if m > 1 or (m == 1 and not _ends_cvc(stem)):
                return stem
        return word

    @staticmethod
    def _step5b(word: str) -> str:
        if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word
