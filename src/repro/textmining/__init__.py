"""Text-mining substrate for the NLP autoclassification pipeline (SS II-C).

Implements tokenization, stemming, stop-word filtering, vocabulary indexing,
and TF-IDF vectorization from scratch (the offline environment has no
scikit-learn or gensim).
"""

from repro.textmining.stemmer import PorterStemmer
from repro.textmining.stopwords import ENGLISH_STOPWORDS
from repro.textmining.tfidf import TfidfVectorizer
from repro.textmining.tokenizer import Tokenizer, ngrams, sliding_windows
from repro.textmining.vocabulary import Vocabulary

__all__ = [
    "PorterStemmer",
    "ENGLISH_STOPWORDS",
    "TfidfVectorizer",
    "Tokenizer",
    "ngrams",
    "sliding_windows",
    "Vocabulary",
]
