"""Vocabulary: bidirectional token <-> index mapping with frequency stats."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence


class Vocabulary:
    """Frequency-ordered vocabulary built from tokenized documents.

    Tokens are assigned contiguous indices ``0..len-1`` in order of
    decreasing corpus frequency (ties broken lexicographically) so that
    truncation by ``max_size`` keeps the most frequent tokens and index
    assignment is deterministic.
    """

    def __init__(
        self,
        documents: Iterable[Sequence[str]],
        *,
        min_count: int = 1,
        max_size: int | None = None,
    ) -> None:
        counts: Counter[str] = Counter()
        n_docs = 0
        doc_freq: Counter[str] = Counter()
        for doc in documents:
            n_docs += 1
            counts.update(doc)
            doc_freq.update(set(doc))
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if max_size is not None:
            ordered = ordered[:max_size]
        self._index: dict[str, int] = {}
        self._tokens: list[str] = []
        self._counts: list[int] = []
        self._doc_freq: list[int] = []
        for token, count in ordered:
            if count < min_count:
                continue
            self._index[token] = len(self._tokens)
            self._tokens.append(token)
            self._counts.append(count)
            self._doc_freq.append(doc_freq[token])
        self.n_documents = n_docs

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def index(self, token: str) -> int:
        """Index of ``token``; raises KeyError if absent."""
        return self._index[token]

    def get(self, token: str, default: int = -1) -> int:
        """Index of ``token`` or ``default`` if absent."""
        return self._index.get(token, default)

    def token(self, index: int) -> str:
        """Token at ``index``."""
        return self._tokens[index]

    def count(self, token: str) -> int:
        """Total corpus occurrences of ``token`` (0 if absent)."""
        i = self._index.get(token)
        return 0 if i is None else self._counts[i]

    def document_frequency(self, token: str) -> int:
        """Number of documents containing ``token`` (0 if absent)."""
        i = self._index.get(token)
        return 0 if i is None else self._doc_freq[i]

    def encode(self, tokens: Sequence[str]) -> list[int]:
        """Map tokens to indices, silently dropping out-of-vocabulary tokens."""
        return [self._index[t] for t in tokens if t in self._index]

    @property
    def tokens(self) -> list[str]:
        """All tokens in index order (copy)."""
        return list(self._tokens)

    @property
    def counts(self) -> list[int]:
        """Corpus frequencies aligned with :attr:`tokens` (copy)."""
        return list(self._counts)
