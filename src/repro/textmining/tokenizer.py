"""Tokenization for issue-tracker text.

Bug descriptions mix prose with identifiers (``NullPointerException``),
file paths, stack traces, and version strings.  The tokenizer keeps
alphanumeric identifier tokens, splits camelCase, lowercases, and can apply
stop-word removal and Porter stemming.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Sequence

from repro.textmining.stemmer import PorterStemmer
from repro.textmining.stopwords import ENGLISH_STOPWORDS

_WORD_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")
_CAMEL_RE = re.compile(r"[A-Z]+(?=[A-Z][a-z])|[A-Z]?[a-z0-9]+|[A-Z]+")


def split_identifier(token: str) -> list[str]:
    """Split a camelCase / snake_case identifier into lowercase parts.

    >>> split_identifier("NullPointerException")
    ['null', 'pointer', 'exception']
    >>> split_identifier("flow_mod")
    ['flow', 'mod']
    """
    parts: list[str] = []
    for chunk in token.split("_"):
        parts.extend(m.group(0).lower() for m in _CAMEL_RE.finditer(chunk))
    return parts


class Tokenizer:
    """Configurable text -> token-list transformer.

    Parameters
    ----------
    lowercase:
        Lowercase tokens (after identifier splitting).
    split_identifiers:
        Break camelCase / snake_case identifiers into their parts.
    remove_stopwords:
        Drop tokens in :data:`ENGLISH_STOPWORDS`.
    stem:
        Apply the Porter stemmer.
    min_length:
        Drop tokens shorter than this many characters.
    """

    def __init__(
        self,
        *,
        lowercase: bool = True,
        split_identifiers: bool = True,
        remove_stopwords: bool = True,
        stem: bool = True,
        min_length: int = 2,
    ) -> None:
        self.lowercase = lowercase
        self.split_identifiers = split_identifiers
        self.remove_stopwords = remove_stopwords
        self.stem = stem
        self.min_length = min_length
        self._stemmer = PorterStemmer() if stem else None

    def tokenize(self, text: str) -> list[str]:
        """Tokenize ``text`` according to the configured options."""
        tokens: list[str] = []
        for match in _WORD_RE.finditer(text):
            raw = match.group(0)
            parts = split_identifier(raw) if self.split_identifiers else [raw]
            for part in parts:
                token = part.lower() if self.lowercase else part
                if len(token) < self.min_length:
                    continue
                if self.remove_stopwords and token in ENGLISH_STOPWORDS:
                    continue
                if self._stemmer is not None:
                    token = self._stemmer.stem(token)
                    if len(token) < self.min_length:
                        continue
                tokens.append(token)
        return tokens

    def tokenize_all(self, texts: Iterable[str]) -> list[list[str]]:
        """Tokenize a corpus of documents."""
        return [self.tokenize(text) for text in texts]


def ngrams(tokens: Sequence[str], n: int) -> list[tuple[str, ...]]:
    """All contiguous n-grams of ``tokens``; empty list when len < n."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def sliding_windows(
    tokens: Sequence[str], window: int
) -> Iterator[tuple[str, list[str]]]:
    """Yield ``(center, context)`` pairs for skip-gram training.

    ``context`` holds up to ``window`` tokens on each side of ``center``.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    for i, center in enumerate(tokens):
        lo = max(0, i - window)
        context = list(tokens[lo:i]) + list(tokens[i + 1 : i + 1 + window])
        yield center, context
