"""Document vectors: map a bug description to a point in Euclidean space.

SS II-C: "these two steps allow us to map each bug to a numerical vector in a
Euclidean space".  We combine per-token Word2Vec embeddings into a single
document vector by IDF-weighted averaging (plain averaging available too).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.embeddings.word2vec import Word2Vec
from repro.errors import NotFittedError


class DocumentVectorizer:
    """Average the Word2Vec vectors of a document's in-vocabulary tokens.

    With ``idf_weighting=True``, tokens common across the corpus contribute
    less, sharpening class-discriminative keywords (mirrors the paper's
    TF-IDF step feeding the embedding stage).
    """

    def __init__(self, model: Word2Vec, *, idf_weighting: bool = True) -> None:
        if model.vocabulary_ is None or model.vectors_ is None:
            raise NotFittedError("DocumentVectorizer requires a fitted Word2Vec")
        self.model = model
        self.idf_weighting = idf_weighting
        vocab = model.vocabulary_
        n_docs = max(vocab.n_documents, 1)
        self._idf = {
            token: float(np.log((1 + n_docs) / (1 + vocab.document_frequency(token))) + 1)
            for token in vocab.tokens
        }

    @property
    def dimension(self) -> int:
        """Output vector dimensionality."""
        assert self.model.vectors_ is not None
        return self.model.vectors_.shape[1]

    def transform_one(self, tokens: Sequence[str]) -> np.ndarray:
        """Document vector for one tokenized description (zeros if nothing
        in vocabulary)."""
        acc = np.zeros(self.dimension)
        total_weight = 0.0
        for token in tokens:
            if token not in self.model:
                continue
            weight = self._idf[token] if self.idf_weighting else 1.0
            acc += weight * self.model.vector(token)
            total_weight += weight
        if total_weight > 0:
            acc /= total_weight
        return acc

    def transform(self, documents: Sequence[Sequence[str]]) -> np.ndarray:
        """Stack of document vectors, shape ``(n_docs, dimension)``."""
        return np.vstack([self.transform_one(doc) for doc in documents])
