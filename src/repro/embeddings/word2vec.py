"""Skip-gram Word2Vec with negative sampling (Mikolov et al., 2013).

Pure-numpy implementation: for each ``(center, context)`` pair drawn from a
sliding window, the model pushes the center vector toward the context output
vector and away from ``negative`` sampled noise words.  Noise words are drawn
from the unigram distribution raised to the 3/4 power, as in the original
paper.  Training is deterministic for a fixed seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.textmining.tokenizer import sliding_windows
from repro.textmining.vocabulary import Vocabulary


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clipped for numerical stability at large |x|.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class Word2Vec:
    """Skip-gram with negative sampling.

    Parameters
    ----------
    vector_size:
        Embedding dimensionality.
    window:
        Max distance between center and context token.
    negative:
        Number of noise samples per positive pair.
    epochs:
        Passes over the pair stream.
    learning_rate:
        Initial SGD step size, linearly decayed to 10% across training.
    min_count:
        Tokens rarer than this are dropped from the vocabulary.
    seed:
        Seed for init and noise sampling.
    """

    def __init__(
        self,
        *,
        vector_size: int = 64,
        window: int = 4,
        negative: int = 5,
        epochs: int = 5,
        learning_rate: float = 0.025,
        min_count: int = 2,
        seed: int = 0,
    ) -> None:
        if vector_size < 1:
            raise ValueError("vector_size must be >= 1")
        self.vector_size = vector_size
        self.window = window
        self.negative = negative
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.min_count = min_count
        self.seed = seed
        self.vocabulary_: Vocabulary | None = None
        self.vectors_: np.ndarray | None = None  # input vectors (the embeddings)
        self._output: np.ndarray | None = None  # context vectors

    def fit(self, documents: Sequence[Sequence[str]]) -> "Word2Vec":
        """Train on tokenized ``documents``."""
        vocab = Vocabulary(documents, min_count=self.min_count)
        if len(vocab) == 0:
            raise ValueError("empty vocabulary; lower min_count or add documents")
        rng = np.random.default_rng(self.seed)
        n = len(vocab)
        vectors = (rng.random((n, self.vector_size)) - 0.5) / self.vector_size
        output = np.zeros((n, self.vector_size))

        # Noise distribution: unigram^(3/4).
        counts = np.array(vocab.counts, dtype=np.float64)
        noise = counts**0.75
        noise /= noise.sum()

        # Pre-encode documents once.
        encoded = [vocab.encode(doc) for doc in documents]
        pairs: list[tuple[int, int]] = []
        for doc in encoded:
            for center, context in sliding_windows(doc, self.window):
                for ctx in context:
                    pairs.append((center, ctx))
        if not pairs:
            raise ValueError("no training pairs; documents too short for window")
        pair_array = np.array(pairs, dtype=np.int64)

        total_steps = self.epochs * len(pair_array)
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(len(pair_array))
            negatives = rng.choice(
                n, size=(len(pair_array), self.negative), p=noise
            )
            for row, i in enumerate(order):
                center, ctx = pair_array[i]
                lr = self.learning_rate * max(
                    0.1, 1.0 - step / max(total_steps, 1)
                )
                step += 1
                v = vectors[center]
                # Positive sample.
                targets = np.concatenate(([ctx], negatives[row]))
                labels = np.zeros(len(targets))
                labels[0] = 1.0
                out = output[targets]
                scores = _sigmoid(out @ v)
                gradient = (scores - labels)[:, None]
                v_grad = (gradient * out).sum(axis=0)
                output[targets] -= lr * gradient * v
                vectors[center] -= lr * v_grad
        self.vocabulary_ = vocab
        self.vectors_ = vectors
        self._output = output
        return self

    def __contains__(self, token: str) -> bool:
        return self.vocabulary_ is not None and token in self.vocabulary_

    def vector(self, token: str) -> np.ndarray:
        """Embedding for ``token``; raises KeyError if out of vocabulary."""
        if self.vocabulary_ is None or self.vectors_ is None:
            raise NotFittedError("Word2Vec.vector called before fit")
        return self.vectors_[self.vocabulary_.index(token)]

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two in-vocabulary tokens."""
        va, vb = self.vector(a), self.vector(b)
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, token: str, *, topn: int = 10) -> list[tuple[str, float]]:
        """The ``topn`` most cosine-similar vocabulary tokens to ``token``."""
        if self.vocabulary_ is None or self.vectors_ is None:
            raise NotFittedError("Word2Vec.most_similar called before fit")
        query = self.vector(token)
        norms = np.linalg.norm(self.vectors_, axis=1)
        qn = np.linalg.norm(query)
        denom = norms * qn
        denom[denom == 0] = 1.0
        sims = (self.vectors_ @ query) / denom
        order = np.argsort(sims)[::-1]
        results: list[tuple[str, float]] = []
        for idx in order:
            candidate = self.vocabulary_.token(int(idx))
            if candidate == token:
                continue
            results.append((candidate, float(sims[idx])))
            if len(results) >= topn:
                break
        return results
