"""Word embeddings (SS II-C step 2): skip-gram Word2Vec from scratch."""

from repro.embeddings.word2vec import Word2Vec
from repro.embeddings.docvec import DocumentVectorizer

__all__ = ["Word2Vec", "DocumentVectorizer"]
