"""The chaos monkey: random perturbation sequences against a scenario."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.adversary.interposer import MessageInterposer
from repro.adversary.schedule import CHANNEL_ACTIONS, FaultAction, FaultSchedule
from repro.errors import ReproError
from repro.faultinjection.scenario import (
    HOSTS,
    ScenarioResult,
    build_scenario,
    resilience_context,
    run_workload,
)
from repro.resilience.ledger import ResilienceLedger
from repro.resilience.policies import ResilienceConfig
from repro.sdnsim.messages import BROADCAST_MAC, Packet, PacketIn, PortStatus
from repro.sdnsim.observers import Outcome
from repro.taxonomy import Symptom, Trigger


@dataclass(frozen=True)
class Perturbation:
    """One chaos action: a named environment disturbance.

    ``apply`` receives the scenario and a seeded RNG and schedules or
    injects the disturbance; ``trigger`` records which taxonomy trigger
    class the disturbance exercises (for coverage accounting).
    """

    name: str
    trigger: Trigger
    apply: Callable[[ScenarioResult, random.Random], None]


def _reboot_olt(scenario: ScenarioResult, rng: random.Random) -> None:
    at = rng.uniform(5.0, 30.0)
    scenario.scheduler.schedule(at, lambda: scenario.adapter.notify_reboot("olt-1"))


def _flap_port(scenario: ScenarioResult, rng: random.Random) -> None:
    port = rng.choice([1, 2, 3])
    scenario.switch.set_port_state(port, False)
    scenario.runtime.handle_message(PortStatus(dpid=1, port=port, is_up=False))
    restore_at = rng.uniform(2.0, 20.0)

    def restore() -> None:
        scenario.switch.set_port_state(port, True)
        scenario.runtime.handle_message(PortStatus(dpid=1, port=port, is_up=True))

    scenario.scheduler.schedule(restore_at, restore)


def _tsdb_outage(scenario: ScenarioResult, rng: random.Random) -> None:
    down_at = rng.uniform(0.0, 40.0)
    up_at = down_at + rng.uniform(1.0, 15.0)
    scenario.scheduler.schedule(
        down_at, lambda: setattr(scenario.tsdb, "available", False)
    )
    scenario.scheduler.schedule(
        up_at, lambda: setattr(scenario.tsdb, "available", True)
    )


def _broadcast_storm(scenario: ScenarioResult, rng: random.Random) -> None:
    for i in range(rng.randint(30, 120)):
        mac = f"02:{rng.randrange(256):02x}:00:00:00:{i % 256:02x}"
        scenario.switch.receive(
            rng.choice([2, 3]),
            Packet(src_mac=mac, dst_mac=BROADCAST_MAC, payload="storm"),
        )


def _malformed_frame(scenario: ScenarioResult, rng: random.Random) -> None:
    scenario.switch.receive(
        rng.choice([1, 2, 3]),
        Packet(src_mac=HOSTS[2], dst_mac=None, payload="fuzz"),  # type: ignore[arg-type]
    )


def _multicast_probe(scenario: ScenarioResult, rng: random.Random) -> None:
    scenario.switch.receive(
        2,
        Packet(
            src_mac=HOSTS[2],
            dst_mac=f"01:00:5e:00:00:{rng.randrange(8):02x}",
            payload="mcast-probe",
        ),
    )


def _config_mutation(scenario: ScenarioResult, rng: random.Random) -> None:
    """Flip a random configuration knob at runtime (no validation —
    exactly how latent misconfigurations reach production)."""
    mutation = rng.choice(["workers", "drop_multicast", "acl_garbage"])
    raw = scenario.runtime.config.raw
    if mutation == "workers":
        raw["workers"] = rng.choice([0, 1, 16, "many"])
    elif mutation == "drop_multicast":
        raw.pop("multicast", None)
    else:
        raw.setdefault("acls", []).append(
            {"src_mac": "any", "dst_mac": rng.choice(list(HOSTS.values()))}
        )


def _corrupt_control_message(message):
    """Adversary CORRUPT semantics against the single-controller scenario.

    A corrupted ``PacketIn`` carries a type-confused frame (``dst_mac`` of
    ``None`` — the malformed-input crash class); a corrupted ``PortStatus``
    reports the opposite link state; anything else is unparseable and
    dropped.
    """
    if isinstance(message, PacketIn):
        return PacketIn(
            dpid=message.dpid,
            in_port=message.in_port,
            packet=Packet(
                src_mac=message.packet.src_mac,
                dst_mac=None,  # type: ignore[arg-type]
                payload="corrupt",
            ),
        )
    if isinstance(message, PortStatus):
        return PortStatus(dpid=message.dpid, port=message.port, is_up=not message.is_up)
    return None


def default_perturbations() -> list[Perturbation]:
    """The standard chaos arsenal, one or more per trigger class."""
    return [
        Perturbation("olt-reboot", Trigger.HARDWARE_REBOOTS, _reboot_olt),
        Perturbation("port-flap", Trigger.NETWORK_EVENTS, _flap_port),
        Perturbation("tsdb-outage", Trigger.EXTERNAL_CALLS, _tsdb_outage),
        Perturbation("broadcast-storm", Trigger.NETWORK_EVENTS, _broadcast_storm),
        Perturbation("malformed-frame", Trigger.NETWORK_EVENTS, _malformed_frame),
        Perturbation("multicast-probe", Trigger.NETWORK_EVENTS, _multicast_probe),
        Perturbation("config-mutation", Trigger.CONFIGURATION, _config_mutation),
    ]


@dataclass(frozen=True)
class ChaosFinding:
    """One chaos run that surfaced a symptomatic outcome."""

    run_index: int
    perturbations: tuple[str, ...]
    outcome: Outcome


@dataclass
class ChaosReport:
    """Results of a chaos campaign."""

    runs: int
    findings: list[ChaosFinding] = field(default_factory=list)
    triggers_exercised: dict[Trigger, int] = field(default_factory=dict)
    #: Populated when the monkey ran hardened: every resilience action taken.
    ledger: ResilienceLedger | None = None

    @property
    def finding_rate(self) -> float:
        return len(self.findings) / self.runs if self.runs else 0.0

    def symptoms_found(self) -> set[Symptom]:
        return {f.outcome.symptom for f in self.findings if f.outcome.symptom}

    def first_finding(self, symptom: Symptom) -> ChaosFinding | None:
        """The earliest run exposing ``symptom`` (None if never found)."""
        for finding in self.findings:
            if finding.outcome.symptom is symptom:
                return finding
        return None


class ChaosMonkey:
    """Throw random perturbation sequences at a scenario factory.

    Parameters
    ----------
    scenario_factory:
        Zero-argument callable producing a fresh (pre-workload) scenario.
        Pass a factory with buggy knobs to hunt bugs, or the default fixed
        build to measure the hardened system's resilience.
    perturbations:
        The arsenal; defaults to :func:`default_perturbations`.
    intensity:
        Perturbations sampled (with replacement) per run.
    seed:
        Campaign seed; runs are deterministic given it.
    hardened:
        ``True`` (or a :class:`ResilienceConfig`) builds every scenario
        inside :func:`resilience_context`, so the factory produces hardened
        scenarios — guarded TSDB, breaker, shared ledger — letting the same
        arsenal measure the resilience runtime instead of hunting bugs.
    schedule:
        Schedule-driven mode: instead of sampling random perturbations, run
        the explicit :class:`FaultSchedule` through a message interposer in
        front of the controller — every southbound message passes the armed
        drop/duplicate/delay/reorder/corrupt rules.  This is how a minimized
        adversary trace is replayed against the app-stack scenario.
    """

    def __init__(
        self,
        scenario_factory: Callable[[], ScenarioResult] = build_scenario,
        *,
        perturbations: list[Perturbation] | None = None,
        intensity: int = 3,
        seed: int = 0,
        hardened: bool | ResilienceConfig = False,
        schedule: FaultSchedule | None = None,
    ) -> None:
        if intensity < 1:
            raise ReproError("intensity must be >= 1")
        self.scenario_factory = scenario_factory
        self.perturbations = (
            list(perturbations) if perturbations is not None else default_perturbations()
        )
        if not self.perturbations:
            raise ReproError("at least one perturbation is required")
        self.intensity = intensity
        self.seed = seed
        self.schedule = schedule
        if hardened is True:
            self.resilience: ResilienceConfig | None = ResilienceConfig.default()
        elif isinstance(hardened, ResilienceConfig):
            self.resilience = hardened
        else:
            self.resilience = None
        self.ledger = ResilienceLedger() if self.resilience is not None else None

    def run_once(self, run_index: int) -> tuple[tuple[str, ...], Outcome]:
        """One chaos run: sample (or replay the schedule), drive, classify.

        For a fixed seed this is bit-for-bit deterministic across fresh
        monkeys: the per-run RNG is derived only from ``(seed, run_index)``
        and everything downstream runs on the sim clock, so the perturbation
        tuple and the classified :class:`Outcome` are reproducible — the
        property trace minimization depends on.
        """
        rng = random.Random((self.seed << 16) ^ run_index)
        chosen = (
            []
            if self.schedule is not None
            else [
                self.perturbations[rng.randrange(len(self.perturbations))]
                for _ in range(self.intensity)
            ]
        )
        if self.resilience is not None:
            with resilience_context(self.resilience, self.ledger):
                scenario = self.scenario_factory()
        else:
            scenario = self.scenario_factory()

        names: tuple[str, ...]
        if self.schedule is not None:
            names = self._install_schedule(scenario)
            apply_all = None
        else:
            names = tuple(p.name for p in chosen)

            def apply_all(result: ScenarioResult) -> None:
                for perturbation in chosen:
                    perturbation.apply(result, rng)

        try:
            run_workload(scenario, extra_events=apply_all, seed=run_index)
        except Exception as exc:  # noqa: BLE001 - chaos fault boundary
            # An exception escaping the runtime is a controller crash: the
            # process would have died (e.g. a type-confused config value
            # reaching the worker-pool sizing).
            scenario.runtime.crashed = True
            scenario.runtime.crash_reason = f"{type(exc).__name__}: {exc}"
        return names, scenario.outcome()

    def _install_schedule(self, scenario: ScenarioResult) -> tuple[str, ...]:
        """Interpose the controller inbox and arm the schedule's rules.

        Message-level actions arm the interposer at their scheduled times;
        ``KILL`` fail-stops the controller; cluster-only actions (partition,
        heal, clock skew) have no single-controller analogue and are
        recorded as skipped.
        """
        runtime = scenario.runtime
        original = runtime.handle_message
        interposer = MessageInterposer(
            scenario.scheduler,
            lambda message, _source: original(message),
            name="controller",
            corrupter=_corrupt_control_message,
        )
        runtime.handle_message = interposer.feed  # type: ignore[method-assign]
        names: list[str] = []
        for event in self.schedule or ():
            if event.action in CHANNEL_ACTIONS:
                names.append(f"{event.action.value}@{event.time:g}")
                scenario.scheduler.schedule_at(
                    event.time,
                    lambda a=event.action, p=event.param: interposer.arm(a, p),
                )
            elif event.action is FaultAction.KILL:
                names.append(f"kill@{event.time:g}")

                def kill(at: float = event.time) -> None:
                    runtime.crashed = True
                    runtime.crash_reason = f"adversary killed controller at t={at:g}"

                scenario.scheduler.schedule_at(event.time, kill)
            else:
                names.append(f"skipped:{event.action.value}@{event.time:g}")
        return tuple(names)

    def run_campaign(self, runs: int = 30) -> ChaosReport:
        """Run ``runs`` independent chaos runs and collect findings."""
        if runs < 1:
            raise ReproError("runs must be >= 1")
        report = ChaosReport(runs=runs, ledger=self.ledger)
        name_to_trigger = {p.name: p.trigger for p in self.perturbations}
        for run_index in range(runs):
            names, outcome = self.run_once(run_index)
            for name in names:
                # Schedule-driven runs perturb the message stream, which is
                # the taxonomy's network-event trigger class.
                trigger = name_to_trigger.get(name, Trigger.NETWORK_EVENTS)
                report.triggers_exercised[trigger] = (
                    report.triggers_exercised.get(trigger, 0) + 1
                )
            if outcome.symptom is not None:
                report.findings.append(
                    ChaosFinding(
                        run_index=run_index, perturbations=names, outcome=outcome
                    )
                )
        return report
