"""Chaos-Monkey-style fuzz testing for SDN controllers (SS V-A takeaway).

The paper: "anecdotal evidence suggests that such bugs exist because testing
environments lack representative failures and equipment ... emerging
approaches to apply Chaos-Monkey style fuzz testing to SDNs are needed".
This package is that fuzzer: randomized sequences of environment
perturbations (reboots, port flaps, service outages, config mutations,
traffic anomalies) thrown at a simulator scenario, with outcomes classified
through the same taxonomy observer the fault injector uses.
"""

from repro.chaos.monkey import (
    ChaosFinding,
    ChaosMonkey,
    ChaosReport,
    Perturbation,
    default_perturbations,
)

__all__ = [
    "ChaosFinding",
    "ChaosMonkey",
    "ChaosReport",
    "Perturbation",
    "default_perturbations",
]
