"""Capability models for published SDN fault-tolerance systems.

Each model captures what the paper's survey (Table VI / SS VII-C) records:
which trigger classes the system observes, which symptoms it can detect,
which triggers it can *recover* from, and whether its recovery story works
for deterministic bugs (replay-style recovery does not: replaying the same
inputs re-executes the same bug, SS III)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FrameworkError
from repro.taxonomy import BugType, Symptom, Trigger


@dataclass(frozen=True)
class FrameworkModel:
    """One fault-tolerance / diagnosis system."""

    name: str
    venue: str
    approach: str
    detect_triggers: frozenset[Trigger]
    detect_symptoms: frozenset[Symptom]
    recover_triggers: frozenset[Trigger]
    recovers_nondeterministic: bool
    recovers_deterministic: bool
    #: Diagnosis-only systems detect/localize but never recover.
    diagnosis_only: bool = False

    def can_detect(self, trigger: Trigger, symptom: Symptom) -> bool:
        return trigger in self.detect_triggers and symptom in self.detect_symptoms

    def can_recover(self, trigger: Trigger, bug_type: BugType) -> bool:
        if self.diagnosis_only or trigger not in self.recover_triggers:
            return False
        if bug_type is BugType.DETERMINISTIC:
            return self.recovers_deterministic
        return self.recovers_nondeterministic


_ALL_SYMPTOMS = frozenset(Symptom)
_NET = frozenset({Trigger.NETWORK_EVENTS})
_NONE: frozenset[Trigger] = frozenset()


def default_registry() -> dict[str, FrameworkModel]:
    """The surveyed systems, keyed by name."""
    models = [
        FrameworkModel(
            name="Ravana",
            venue="SOSR'15",
            approach="replicated state machine with event-log replay",
            detect_triggers=_NET,
            detect_symptoms=frozenset({Symptom.FAIL_STOP}),
            recover_triggers=_NET,
            recovers_nondeterministic=True,
            recovers_deterministic=False,
        ),
        FrameworkModel(
            name="LegoSDN",
            venue="SoCC'16",
            approach="app-crash isolation + event transformation",
            detect_triggers=_NET,
            detect_symptoms=frozenset({Symptom.FAIL_STOP, Symptom.ERROR_MESSAGE}),
            recover_triggers=_NET,
            recovers_nondeterministic=True,
            recovers_deterministic=True,  # transforms the triggering event
        ),
        FrameworkModel(
            name="SCL",
            venue="NSDI'17",
            approach="coordination-free consistency layer",
            detect_triggers=_NET,
            detect_symptoms=frozenset({Symptom.BYZANTINE}),
            recover_triggers=_NET,
            recovers_nondeterministic=True,
            recovers_deterministic=False,
        ),
        FrameworkModel(
            name="RoseMary",
            venue="CCS'14",
            approach="resource-isolated app sandboxing",
            detect_triggers=frozenset({Trigger.NETWORK_EVENTS, Trigger.EXTERNAL_CALLS}),
            detect_symptoms=frozenset(
                {Symptom.FAIL_STOP, Symptom.PERFORMANCE, Symptom.ERROR_MESSAGE}
            ),
            recover_triggers=_NET,
            recovers_nondeterministic=True,
            recovers_deterministic=False,
        ),
        FrameworkModel(
            name="SCOUT",
            venue="ICNP'17",
            approach="cross-layer performance diagnosis",
            detect_triggers=frozenset({Trigger.NETWORK_EVENTS, Trigger.CONFIGURATION}),
            detect_symptoms=frozenset({Symptom.PERFORMANCE, Symptom.ERROR_MESSAGE}),
            recover_triggers=_NONE,
            recovers_nondeterministic=False,
            recovers_deterministic=False,
            diagnosis_only=True,
        ),
        FrameworkModel(
            name="JURY",
            venue="DSN'17",
            approach="validates distributed controller decisions",
            detect_triggers=_NET,
            detect_symptoms=frozenset({Symptom.BYZANTINE}),
            recover_triggers=_NET,
            recovers_nondeterministic=True,
            recovers_deterministic=False,
        ),
        FrameworkModel(
            name="DPQoAP",
            venue="ANCS'16",
            approach="data-plane probing for policy deviation",
            detect_triggers=_NET,
            detect_symptoms=frozenset({Symptom.BYZANTINE, Symptom.PERFORMANCE}),
            recover_triggers=_NONE,
            recovers_nondeterministic=False,
            recovers_deterministic=False,
            diagnosis_only=True,
        ),
        FrameworkModel(
            name="STS",
            venue="SIGCOMM'14",
            approach="input minimization / troubleshooting",
            detect_triggers=_NET,
            detect_symptoms=_ALL_SYMPTOMS,
            recover_triggers=_NONE,
            recovers_nondeterministic=False,
            recovers_deterministic=False,
            diagnosis_only=True,
        ),
        FrameworkModel(
            name="SPHINX",
            venue="NDSS'15",
            approach="flow-graph-based behaviour verification",
            detect_triggers=_NET,
            detect_symptoms=frozenset({Symptom.BYZANTINE}),
            recover_triggers=_NONE,
            recovers_nondeterministic=False,
            recovers_deterministic=False,
            diagnosis_only=True,
        ),
        FrameworkModel(
            name="Bouncer",
            venue="(input filtering)",
            approach="filters inputs known to trigger crashes",
            detect_triggers=_NET,
            detect_symptoms=frozenset({Symptom.FAIL_STOP}),
            recover_triggers=_NET,
            recovers_nondeterministic=False,
            recovers_deterministic=True,  # the filter removes the bad input
        ),
        FrameworkModel(
            name="Lock-in-Pop",
            venue="ATC'17 (non-SDN)",
            approach="kernel-interface isolation (popular paths only)",
            detect_triggers=frozenset({Trigger.EXTERNAL_CALLS, Trigger.CONFIGURATION}),
            detect_symptoms=frozenset({Symptom.FAIL_STOP, Symptom.ERROR_MESSAGE}),
            recover_triggers=frozenset({Trigger.EXTERNAL_CALLS}),
            recovers_nondeterministic=True,
            recovers_deterministic=False,
        ),
    ]
    return {m.name: m for m in models}


def get_framework(name: str) -> FrameworkModel:
    """Look up a framework by name (case-sensitive)."""
    registry = default_registry()
    if name not in registry:
        raise FrameworkError(f"unknown framework {name!r}; known: {sorted(registry)}")
    return registry[name]
