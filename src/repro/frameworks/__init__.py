"""Fault-tolerance framework models and coverage evaluation (RQ5, SS VII-C).

Capability models for the systems the paper surveys (Ravana, LegoSDN, SCL,
RoseMary, SCOUT, JURY, DPQoAP, STS, SPHINX, Bouncer, plus the non-SDN
Lock-in-Pop), executable recovery strategies (restart, replay, input
filtering), and an evaluator that runs them against the fault-injection
campaign to reproduce the paper's headline gap: most systems can *detect*
bugs, recovery works for non-deterministic bugs, and recovery from
*deterministic* bugs — the vast majority — remains largely unsolved.
"""

from repro.frameworks.registry import FrameworkModel, default_registry
from repro.frameworks.strategies import (
    InputFilterStrategy,
    RecoveryAttempt,
    ReplayStrategy,
    RestartStrategy,
    SupervisedRestartStrategy,
)
from repro.frameworks.evaluator import CoverageCell, CoverageReport, evaluate_coverage

__all__ = [
    "FrameworkModel",
    "default_registry",
    "InputFilterStrategy",
    "RecoveryAttempt",
    "ReplayStrategy",
    "RestartStrategy",
    "SupervisedRestartStrategy",
    "CoverageCell",
    "CoverageReport",
    "evaluate_coverage",
]
