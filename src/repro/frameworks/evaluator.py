"""Coverage evaluation: frameworks x fault catalog (Table VI + SS VII-C).

Two layers:

* the *capability matrix* — for every framework and fault, whether the
  framework's published capability model claims detection/recovery;
* the *mechanical validation* — running the executable strategies against
  the actual fault scenarios, which reproduces the paper's conclusion that
  detection is broadly available while recovery from deterministic bugs is
  essentially limited to input transformation on network events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faultinjection.faults import FaultSpec, default_catalog
from repro.frameworks.registry import FrameworkModel, default_registry
from repro.frameworks.strategies import (
    InputFilterStrategy,
    RecoveryAttempt,
    ReplayStrategy,
    RestartStrategy,
    STSMinimizationStrategy,
    SupervisedRestartStrategy,
)
from repro.taxonomy import BugType, Trigger


@dataclass(frozen=True)
class CoverageCell:
    """One (framework, fault) cell of the coverage matrix."""

    framework: str
    fault_id: str
    trigger: Trigger
    bug_type: BugType
    detects: bool
    recovers: bool


@dataclass
class CoverageReport:
    """The full matrix plus aggregate rates."""

    cells: list[CoverageCell] = field(default_factory=list)

    def for_framework(self, name: str) -> list[CoverageCell]:
        return [c for c in self.cells if c.framework == name]

    def detection_rate(self, name: str) -> float:
        cells = self.for_framework(name)
        return sum(1 for c in cells if c.detects) / len(cells)

    def recovery_rate(self, name: str, *, bug_type: BugType | None = None) -> float:
        cells = self.for_framework(name)
        if bug_type is not None:
            cells = [c for c in cells if c.bug_type is bug_type]
        if not cells:
            return 0.0
        return sum(1 for c in cells if c.recovers) / len(cells)

    def trigger_coverage(self, trigger: Trigger) -> dict[str, bool]:
        """Per framework: can it recover *any* fault with this trigger?"""
        coverage: dict[str, bool] = {}
        for cell in self.cells:
            if cell.trigger is trigger:
                coverage[cell.framework] = coverage.get(cell.framework, False) or cell.recovers
        return coverage

    def frameworks(self) -> list[str]:
        return sorted({c.framework for c in self.cells})


def evaluate_coverage(
    registry: dict[str, FrameworkModel] | None = None,
    catalog: list[FaultSpec] | None = None,
    *,
    seed: int = 0,
) -> CoverageReport:
    """Build the capability coverage matrix over the fault catalog.

    Detection uses each fault's *observed* outcome (executed once per fault),
    so a framework only gets detection credit for symptoms that actually
    manifest in the simulator.
    """
    registry = registry or default_registry()
    catalog = catalog if catalog is not None else default_catalog()
    report = CoverageReport()
    outcomes = {spec.fault_id: spec.execute(seed) for spec in catalog}
    for name, model in sorted(registry.items()):
        for spec in catalog:
            outcome = outcomes[spec.fault_id]
            if outcome.symptom is None:
                # The fault did not manifest for this seed; nothing to
                # detect.  (Non-deterministic faults may be silent.)
                detects = False
            else:
                detects = model.can_detect(spec.trigger, outcome.symptom)
            recovers = detects and model.can_recover(spec.trigger, spec.bug_type)
            report.cells.append(
                CoverageCell(
                    framework=name,
                    fault_id=spec.fault_id,
                    trigger=spec.trigger,
                    bug_type=spec.bug_type,
                    detects=detects,
                    recovers=recovers,
                )
            )
    return report


def mechanical_validation(
    catalog: list[FaultSpec] | None = None, *, seed: int = 0
) -> dict[str, list[RecoveryAttempt]]:
    """Run the executable strategies against every catalog fault."""
    catalog = catalog if catalog is not None else default_catalog()
    strategies = [
        RestartStrategy(),
        ReplayStrategy(),
        InputFilterStrategy(),
        SupervisedRestartStrategy(),
        STSMinimizationStrategy(),
    ]
    results: dict[str, list[RecoveryAttempt]] = {}
    for strategy in strategies:
        results[strategy.name] = [
            strategy.attempt(spec, seed=seed) for spec in catalog
        ]
    return results


def deterministic_recovery_gap(report: CoverageReport) -> dict[str, float]:
    """Per framework, recovery rate on deterministic faults — the paper's
    headline gap (most are ~0)."""
    return {
        name: report.recovery_rate(name, bug_type=BugType.DETERMINISTIC)
        for name in report.frameworks()
    }
