"""Framework composition analysis (SS VII-C takeaway).

The paper warns that layering fault-tolerance systems "may introduce
inefficiencies or impact accuracy": SPHINX requires *all* input OpenFlow
messages to maintain its flow-graph model, while Bouncer proactively filters
some inputs out — composing them silently corrupts SPHINX's model.  And
systems with fundamentally different inputs (SOFT analyzes vendor switch
outputs, CHIMP analyzes SDN application outputs) cannot be meaningfully
fused at all.

This module mechanizes those checks: each framework declares its stream
*requirements* and *effects*; the analyzer reports conflicts and
non-composable pairs for any stack the operator proposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import FrameworkError


class StreamProperty(enum.Enum):
    """Properties of the control-message stream a framework cares about."""

    COMPLETE_INPUT_STREAM = "complete_input_stream"  # sees every message
    ORDERED_INPUT_STREAM = "ordered_input_stream"  # original ordering
    UNMODIFIED_PAYLOADS = "unmodified_payloads"  # no rewriting upstream
    EXCLUSIVE_RECOVERY = "exclusive_recovery"  # sole recovery authority


class StreamEffect(enum.Enum):
    """Ways a framework perturbs the stream for everything downstream."""

    FILTERS_INPUTS = "filters_inputs"  # drops messages (Bouncer)
    REORDERS_INPUTS = "reorders_inputs"  # buffering/replay (Ravana)
    REWRITES_INPUTS = "rewrites_inputs"  # transformation (LegoSDN)
    TAKES_RECOVERY_ACTIONS = "takes_recovery_actions"


#: Which effect violates which requirement.
_CONFLICTS: dict[StreamEffect, frozenset[StreamProperty]] = {
    StreamEffect.FILTERS_INPUTS: frozenset(
        {StreamProperty.COMPLETE_INPUT_STREAM}
    ),
    StreamEffect.REORDERS_INPUTS: frozenset(
        {StreamProperty.ORDERED_INPUT_STREAM}
    ),
    StreamEffect.REWRITES_INPUTS: frozenset(
        {StreamProperty.UNMODIFIED_PAYLOADS, StreamProperty.COMPLETE_INPUT_STREAM}
    ),
    StreamEffect.TAKES_RECOVERY_ACTIONS: frozenset(
        {StreamProperty.EXCLUSIVE_RECOVERY}
    ),
}


class InputDomain(enum.Enum):
    """What kind of system output a framework analyzes (SOFT vs CHIMP)."""

    OPENFLOW_MESSAGES = "openflow_messages"
    SWITCH_IMPLEMENTATION_OUTPUT = "switch_implementation_output"
    APPLICATION_OUTPUT = "application_output"
    CONFIGURATION = "configuration"


@dataclass(frozen=True)
class CompositionProfile:
    """Stream requirements/effects + input domain for one framework."""

    name: str
    requires: frozenset[StreamProperty]
    effects: frozenset[StreamEffect]
    domain: InputDomain


@dataclass(frozen=True)
class CompositionConflict:
    """One detected interference between two stacked frameworks."""

    upstream: str
    downstream: str
    effect: StreamEffect
    violated: StreamProperty
    explanation: str


def default_composition_profiles() -> dict[str, CompositionProfile]:
    """Profiles for the systems the paper's composition discussion names."""
    profiles = [
        CompositionProfile(
            name="SPHINX",
            requires=frozenset(
                {
                    StreamProperty.COMPLETE_INPUT_STREAM,
                    StreamProperty.ORDERED_INPUT_STREAM,
                }
            ),
            effects=frozenset(),
            domain=InputDomain.OPENFLOW_MESSAGES,
        ),
        CompositionProfile(
            name="Bouncer",
            requires=frozenset(),
            effects=frozenset({StreamEffect.FILTERS_INPUTS}),
            domain=InputDomain.OPENFLOW_MESSAGES,
        ),
        CompositionProfile(
            name="LegoSDN",
            requires=frozenset({StreamProperty.EXCLUSIVE_RECOVERY}),
            effects=frozenset(
                {StreamEffect.REWRITES_INPUTS, StreamEffect.TAKES_RECOVERY_ACTIONS}
            ),
            domain=InputDomain.OPENFLOW_MESSAGES,
        ),
        CompositionProfile(
            name="Ravana",
            requires=frozenset(
                {
                    StreamProperty.COMPLETE_INPUT_STREAM,
                    StreamProperty.ORDERED_INPUT_STREAM,
                    StreamProperty.EXCLUSIVE_RECOVERY,
                }
            ),
            effects=frozenset(
                {StreamEffect.REORDERS_INPUTS, StreamEffect.TAKES_RECOVERY_ACTIONS}
            ),
            domain=InputDomain.OPENFLOW_MESSAGES,
        ),
        CompositionProfile(
            name="SOFT",
            requires=frozenset(),
            effects=frozenset(),
            domain=InputDomain.SWITCH_IMPLEMENTATION_OUTPUT,
        ),
        CompositionProfile(
            name="CHIMP",
            requires=frozenset(),
            effects=frozenset(),
            domain=InputDomain.APPLICATION_OUTPUT,
        ),
    ]
    return {p.name: p for p in profiles}


def analyze_stack(
    stack: list[str],
    profiles: dict[str, CompositionProfile] | None = None,
) -> list[CompositionConflict]:
    """Check a proposed stack (listed upstream-first) for interference.

    A conflict arises when an upstream framework's effect violates a
    downstream framework's stream requirement, or when two recovery
    authorities coexist anywhere in the stack.
    """
    profiles = profiles or default_composition_profiles()
    resolved: list[CompositionProfile] = []
    for name in stack:
        if name not in profiles:
            raise FrameworkError(
                f"no composition profile for {name!r}; known: {sorted(profiles)}"
            )
        resolved.append(profiles[name])

    conflicts: list[CompositionConflict] = []
    for i, upstream in enumerate(resolved):
        for downstream in resolved[i + 1 :]:
            for effect in sorted(upstream.effects, key=lambda e: e.value):
                for violated in sorted(
                    _CONFLICTS.get(effect, frozenset()) & downstream.requires,
                    key=lambda p: p.value,
                ):
                    conflicts.append(
                        CompositionConflict(
                            upstream=upstream.name,
                            downstream=downstream.name,
                            effect=effect,
                            violated=violated,
                            explanation=(
                                f"{upstream.name} {effect.value.replace('_', ' ')}, "
                                f"but {downstream.name} requires "
                                f"{violated.value.replace('_', ' ')}"
                            ),
                        )
                    )
    # Dual recovery authorities conflict regardless of order.
    recoverers = [
        p.name
        for p in resolved
        if StreamEffect.TAKES_RECOVERY_ACTIONS in p.effects
    ]
    if len(recoverers) > 1:
        for a, b in zip(recoverers, recoverers[1:]):
            conflicts.append(
                CompositionConflict(
                    upstream=a,
                    downstream=b,
                    effect=StreamEffect.TAKES_RECOVERY_ACTIONS,
                    violated=StreamProperty.EXCLUSIVE_RECOVERY,
                    explanation=(
                        f"{a} and {b} both take recovery actions; their "
                        "repairs can race and undo each other"
                    ),
                )
            )
    return conflicts


def composable(name_a: str, name_b: str) -> bool:
    """Can two frameworks' *results* even be fused?  (SOFT vs CHIMP: no —
    their input domains differ, so there is no common object to agree on.)"""
    profiles = default_composition_profiles()
    for name in (name_a, name_b):
        if name not in profiles:
            raise FrameworkError(f"no composition profile for {name!r}")
    return profiles[name_a].domain is profiles[name_b].domain
