"""Executable recovery strategies, validated against real fault re-execution.

These mechanize the three recovery archetypes the surveyed systems use:

* **Restart** (crash-restart, watchdogs): re-run after a failure.  The
  environment — configuration files, library versions, device state — is
  untouched, so a *deterministic* bug re-manifests immediately; only timing-
  dependent bugs are masked.
* **Replay** (Ravana-style replicated state machines): a replica replays the
  event log.  Same property, stronger guarantee on ordering: deterministic
  bugs replay deterministically, i.e. recovery fails.
* **Input filtering / transformation** (Bouncer, LegoSDN): suppress or alter
  the triggering input.  This *does* break deterministic bugs — but only
  when the trigger is an observable input event (network events), not a
  configuration or environment interaction.

The evaluator uses these to ground the capability matrix mechanically
instead of taking the literature's claims on faith.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faultinjection.faults import FaultSpec
from repro.resilience.ledger import ResilienceEvent, ResilienceLedger
from repro.resilience.policies import ResilienceConfig
from repro.resilience.supervisor import SupervisedRestart
from repro.sdnsim.observers import Outcome
from repro.taxonomy import Symptom, Trigger


@dataclass(frozen=True)
class RecoveryAttempt:
    """The result of one detect-and-recover cycle against a fault."""

    strategy: str
    fault_id: str
    detected: bool
    recovered: bool
    detail: str


def _is_healthy(outcome: Outcome) -> bool:
    return outcome.symptom is None or outcome.symptom is Symptom.ERROR_MESSAGE


class RestartStrategy:
    """Heartbeat detection + process restart.

    Detection: fail-stop only (a heartbeat notices a dead process; stalls,
    gray failures and wrong behaviour keep answering heartbeats).
    Recovery: re-execute the scenario with a fresh process but the same
    environment.  ``retries`` models supervised restart loops.
    """

    name = "restart"

    def __init__(self, *, retries: int = 2) -> None:
        self.retries = retries

    def attempt(self, fault: FaultSpec, *, seed: int = 0) -> RecoveryAttempt:
        first = fault.execute(seed)
        detected = first.symptom is Symptom.FAIL_STOP
        if not detected:
            return RecoveryAttempt(
                strategy=self.name,
                fault_id=fault.fault_id,
                detected=False,
                recovered=False,
                detail=f"heartbeat saw nothing (outcome: {first.detail})",
            )
        for retry in range(1, self.retries + 1):
            # A restart re-runs with new timing (different seed); the
            # persistent environment (config, library versions) is identical,
            # which is exactly why deterministic bugs come right back.
            outcome = fault.execute(seed + retry)
            if _is_healthy(outcome):
                return RecoveryAttempt(
                    strategy=self.name,
                    fault_id=fault.fault_id,
                    detected=True,
                    recovered=True,
                    detail=f"restart #{retry} came up healthy",
                )
        return RecoveryAttempt(
            strategy=self.name,
            fault_id=fault.fault_id,
            detected=True,
            recovered=False,
            detail=f"crashed again on every restart (x{self.retries})",
        )


class ReplayStrategy:
    """Replicated-state-machine failover with event-log replay (Ravana).

    Detection: fail-stop and stalls of the primary (the replica's liveness
    protocol notices both).  Recovery: the replica replays the exact logged
    events — same inputs, same order — so a deterministic bug re-executes
    identically and the failover fails; only timing-dependent bugs are
    masked by the replica's different runtime interleaving.
    """

    name = "replay"

    def attempt(self, fault: FaultSpec, *, seed: int = 0) -> RecoveryAttempt:
        first = fault.execute(seed)
        detected = first.symptom is Symptom.FAIL_STOP or (
            first.byzantine_mode is not None
            and first.byzantine_mode.value == "stall"
        )
        if not detected:
            return RecoveryAttempt(
                strategy=self.name,
                fault_id=fault.fault_id,
                detected=False,
                recovered=False,
                detail=f"liveness protocol saw nothing (outcome: {first.detail})",
            )
        # Exact replay: identical seed = identical event sequence.  For a
        # non-deterministic bug the *runtime* interleaving differs on the
        # replica, modeled by perturbing the seed component that controls
        # interleaving only.
        replay_seed = seed if fault.bug_type.value == "deterministic" else seed + 101
        outcome = fault.execute(replay_seed)
        recovered = _is_healthy(outcome)
        return RecoveryAttempt(
            strategy=self.name,
            fault_id=fault.fault_id,
            detected=True,
            recovered=recovered,
            detail=(
                "replica replay healthy"
                if recovered
                else "replica replayed the same failure"
            ),
        )


class SupervisedRestartStrategy:
    """The resilience runtime as a recovery strategy.

    Plain :class:`RestartStrategy` with the whole supervision layer
    switched on: scenarios re-execute *hardened* (guarded TSDB, breaker —
    via :func:`~repro.faultinjection.scenario.resilience_context`), the
    watchdog detects stalls as well as fail-stop crashes, and restarts run
    under the restart-intensity budget with backoff.  The strategy thus
    additionally absorbs transient external-call symptoms, but inherits
    restart's blind spot: deterministic bugs re-manifest on every restart.
    """

    name = "supervised_restart"

    def __init__(self, *, config: ResilienceConfig | None = None) -> None:
        self.config = config if config is not None else ResilienceConfig.default()

    def attempt(self, fault: FaultSpec, *, seed: int = 0) -> RecoveryAttempt:
        from repro.faultinjection.scenario import resilience_context

        ledger = ResilienceLedger()
        harness = SupervisedRestart(
            backoff=self.config.restart_backoff,
            ledger=ledger,
            component=fault.fault_id,
        )
        with resilience_context(self.config, ledger):
            run = harness.run(fault.execute, seed, trigger=fault.trigger)
        absorbed = ledger.count(ResilienceEvent.RETRY)
        if run.detected:
            if run.recovered:
                detail = (
                    f"supervised restart #{run.restarts} came up healthy "
                    f"after {run.recovery_latency:.1f}s backoff"
                )
            else:
                detail = (
                    f"restart-intensity budget spent (x{run.restarts}); "
                    "the fault is deterministic in the environment"
                )
            return RecoveryAttempt(
                strategy=self.name,
                fault_id=fault.fault_id,
                detected=True,
                recovered=run.recovered and _is_healthy(run.outcome),
                detail=detail,
            )
        if run.outcome.symptom is None and absorbed:
            # The guard layer ate the failure before the watchdog ever saw
            # it — detection and recovery happened below the supervisor.
            return RecoveryAttempt(
                strategy=self.name,
                fault_id=fault.fault_id,
                detected=True,
                recovered=True,
                detail=f"breaker/retry absorbed {absorbed} transient external failure(s)",
            )
        return RecoveryAttempt(
            strategy=self.name,
            fault_id=fault.fault_id,
            detected=False,
            recovered=False,
            detail=f"watchdog saw nothing (outcome: {run.outcome.detail})",
        )


class STSMinimizationStrategy:
    """STS-style troubleshooting: invariant monitors + trace minimization.

    STS (Scott et al., SIGCOMM'14) is a *diagnosis* framework: it detects
    invariant violations in a replayable control-plane trace and applies
    delta debugging to shrink the triggering event sequence to a minimal
    causal reproducer.  It never repairs the running system, so recovery is
    always ``False`` — the row the paper's Table VI marks "diagnosis only".

    Detection here is grounded in the real implementation: any manifest
    symptom counts as detectable because the adversary's monitor set
    (:mod:`repro.adversary.invariants`) observes mastership, quorum,
    orphaned-device, liveness and convergence properties at runtime.  The
    :meth:`minimize` method exposes the actual machinery — find a violating
    :class:`~repro.adversary.schedule.FaultSchedule` and ddmin it down.
    """

    name = "sts_minimization"

    def attempt(self, fault: FaultSpec, *, seed: int = 0) -> RecoveryAttempt:
        first = fault.execute(seed)
        if first.symptom is None:
            return RecoveryAttempt(
                strategy=self.name,
                fault_id=fault.fault_id,
                detected=False,
                recovered=False,
                detail="no invariant violated; nothing to minimize",
            )
        return RecoveryAttempt(
            strategy=self.name,
            fault_id=fault.fault_id,
            detected=True,
            recovered=False,
            detail=(
                f"invariant monitor flagged {first.symptom.value}; "
                "minimized reproducer handed to the operator (diagnosis only)"
            ),
        )

    def minimize(self, *, seed: int = 0, events: int = 20, horizon: float = 60.0):
        """Find a violating schedule from ``seed`` and shrink it with ddmin.

        Returns the :class:`~repro.adversary.minimizer.MinimizationResult`;
        this is the executable grounding for the table row above.
        """
        from repro.adversary import find_violating_schedule, minimize_schedule

        _seed, schedule, _result = find_violating_schedule(
            seed, events=events, horizon=horizon
        )
        return minimize_schedule(schedule)


class InputFilterStrategy:
    """Input filtering / transformation (Bouncer, LegoSDN).

    Detection: any symptomatic outcome that follows an observable input
    event.  Recovery: re-run with the offending input suppressed — which is
    only *possible* when the trigger is an input the filter sits in front
    of (network events).  Configuration and environment triggers are not
    inputs flowing through the filter, so the strategy cannot act on them —
    the coverage gap the paper highlights.
    """

    name = "input_filter"

    def attempt(self, fault: FaultSpec, *, seed: int = 0) -> RecoveryAttempt:
        first = fault.execute(seed)
        if first.symptom is None:
            return RecoveryAttempt(
                strategy=self.name,
                fault_id=fault.fault_id,
                detected=False,
                recovered=False,
                detail="no symptomatic outcome to correlate with an input",
            )
        if fault.trigger is not Trigger.NETWORK_EVENTS:
            return RecoveryAttempt(
                strategy=self.name,
                fault_id=fault.fault_id,
                detected=True,
                recovered=False,
                detail=(
                    f"trigger {fault.trigger.value} does not pass through the "
                    "input filter; nothing to suppress"
                ),
            )
        if not fault.filterable:
            return RecoveryAttempt(
                strategy=self.name,
                fault_id=fault.fault_id,
                detected=True,
                recovered=False,
                detail=(
                    "the triggering event is a network state change, not a "
                    "filterable input message"
                ),
            )
        # Suppressing the triggering event class: mechanically, the scenario
        # without the fault's extra network events is the healthy baseline.
        from repro.faultinjection.scenario import build_scenario, run_workload

        baseline = run_workload(build_scenario(), seed=seed)
        # Filtering sacrifices the (buggy) feature the input exercised, so
        # feature checks tied to the suppressed input are waived: keep only
        # core forwarding checks.
        baseline.checks = [c for c in baseline.checks if c[0].startswith("forward")]
        outcome = baseline.outcome()
        recovered = _is_healthy(outcome)
        return RecoveryAttempt(
            strategy=self.name,
            fault_id=fault.fault_id,
            detected=True,
            recovered=recovered,
            detail=(
                "suppressing the trigger restored core forwarding"
                if recovered
                else "core forwarding still broken after filtering"
            ),
        )
