"""Plain-text table and distribution rendering for benches and examples."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_percent(value: float | None, *, digits: int = 1) -> str:
    """``0.147 -> '14.7%'``; ``None -> 'NA'``."""
    if value is None:
        return "NA"
    return f"{value * 100:.{digits}f}%"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a boxed ASCII table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(
        "|" + "|".join(f" {h:<{w}} " for h, w in zip(headers, widths)) + "|"
    )
    lines.append(sep)
    for row in rows:
        lines.append(
            "|" + "|".join(f" {c:<{w}} " for c, w in zip(row, widths)) + "|"
        )
    lines.append(sep)
    return "\n".join(lines)


def render_distribution(
    dist: Mapping[object, float],
    *,
    title: str | None = None,
    bar_width: int = 40,
) -> str:
    """Horizontal bar chart of a share distribution."""
    lines = [title] if title else []
    if not dist:
        return (title or "") + " (empty)"
    peak = max(dist.values()) or 1.0
    for key, value in dist.items():
        name = getattr(key, "value", key)
        bar = "#" * max(1, int(round(bar_width * value / peak))) if value > 0 else ""
        lines.append(f"  {str(name):<24s} {format_percent(value):>7s}  {bar}")
    return "\n".join(lines)


def render_cdf_series(
    series: Sequence[tuple[float, float]],
    *,
    title: str | None = None,
    points: int = 12,
) -> str:
    """Compact textual rendering of a CDF: value -> cumulative probability."""
    lines = [title] if title else []
    if not series:
        return (title or "") + " (empty)"
    step = max(1, len(series) // points)
    for x, p in series[::step]:
        lines.append(f"  {x:10.2f}  {format_percent(p):>7s}")
    return "\n".join(lines)
