"""Experiment registry: maps every paper table/figure to its bench."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    exp_id: str
    paper_artifact: str
    description: str
    bench: str
    modules: tuple[str, ...]


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "dataset",
        "SS II-B",
        "critical bug counts per controller; bursts near releases",
        "benchmarks/bench_dataset.py",
        ("repro.corpus", "repro.trackers"),
    ),
    Experiment(
        "nlp-validation",
        "SS II-C2",
        "SVM 96% bug-type / 86% symptom accuracy; fixes unpredictable",
        "benchmarks/bench_nlp_validation.py",
        ("repro.pipeline", "repro.ml", "repro.embeddings"),
    ),
    Experiment(
        "determinism",
        "SS III (RQ1)",
        "determinism: FAUCET 96%, ONOS 94%, CORD 94%",
        "benchmarks/bench_determinism.py",
        ("repro.analysis.determinism",),
    ),
    Experiment(
        "symptoms",
        "SS IV / Fig 2",
        "symptom marginals + per-controller root causes per symptom",
        "benchmarks/bench_symptoms.py",
        ("repro.analysis.symptoms",),
    ),
    Experiment(
        "triggers",
        "SS V-A",
        "trigger marginals; config-fix 25%; compatibility fixes 41.4%",
        "benchmarks/bench_triggers.py",
        ("repro.analysis.triggers",),
    ),
    Experiment(
        "config-subcategories",
        "Table III",
        "configuration bug sub-categories per controller",
        "benchmarks/bench_config_subcategories.py",
        ("repro.analysis.triggers",),
    ),
    Experiment(
        "vulnerabilities",
        "Table III-b / SS V-A",
        "ONOS dependency vulnerabilities grow across releases",
        "benchmarks/bench_vulnerabilities.py",
        ("repro.vuln",),
    ),
    Experiment(
        "resolution-cdf",
        "SS V-B / Fig 7",
        "resolution-time CDFs per trigger; config longest tail",
        "benchmarks/bench_resolution_cdf.py",
        ("repro.analysis.resolution",),
    ),
    Experiment(
        "smells",
        "SS VI-A / Fig 8",
        "six code smells across ONOS releases 1.12-2.3",
        "benchmarks/bench_smells.py",
        ("repro.smells", "repro.codebase"),
    ),
    Experiment(
        "commits",
        "Fig 10",
        "ONOS commits per release decline after 1.14",
        "benchmarks/bench_commits.py",
        ("repro.gitmodel",),
    ),
    Experiment(
        "burn-analysis",
        "SS VI-B / Fig 11",
        "FAUCET commit split 38/35/27 across subsystems",
        "benchmarks/bench_burn_analysis.py",
        ("repro.gitmodel.burn",),
    ),
    Experiment(
        "dependency-burndown",
        "Table IV",
        "FAUCET dependency version churn (ryu 28, chewie 19, ...)",
        "benchmarks/bench_dependency_burndown.py",
        ("repro.gitmodel.deps",),
    ),
    Experiment(
        "correlation",
        "SS VII-B / Fig 12",
        "CDF of category correlations; 6.28% strongly correlated tail",
        "benchmarks/bench_correlation.py",
        ("repro.analysis.correlation",),
    ),
    Experiment(
        "whole-dataset",
        "SS VII-B / Fig 13",
        "predicted trigger distribution over the whole dataset",
        "benchmarks/bench_whole_dataset.py",
        ("repro.pipeline", "repro.analysis.triggers"),
    ),
    Experiment(
        "topic-uniqueness",
        "SS VII-B / Fig 14",
        "topic uniqueness of deterministic/byzantine/add-sync/third-party",
        "benchmarks/bench_topic_uniqueness.py",
        ("repro.analysis.topics",),
    ),
    Experiment(
        "controller-selection",
        "SS VII-A (RQ4)",
        "controller stability ranking (ONOS recommended)",
        "benchmarks/bench_controller_selection.py",
        ("repro.guidance.selection",),
    ),
    Experiment(
        "framework-coverage",
        "Table VI / SS VII-C (RQ5)",
        "framework detect/recover coverage; deterministic recovery gap",
        "benchmarks/bench_framework_coverage.py",
        ("repro.frameworks",),
    ),
    Experiment(
        "cross-domain",
        "Table VII",
        "symptom shares: SDN vs Cloud vs BGP",
        "benchmarks/bench_cross_domain.py",
        ("repro.analysis.symptoms",),
    ),
    Experiment(
        "fault-campaign",
        "RQ5 mechanical validation",
        "taxonomy-driven fault injection; named case studies buggy vs fixed",
        "benchmarks/bench_fault_campaign.py",
        ("repro.sdnsim", "repro.faultinjection", "repro.frameworks"),
    ),
    # -- extensions: the research directions the paper calls for -------------
    Experiment(
        "chaos-fuzzing",
        "SS V-A takeaway (extension)",
        "Chaos-Monkey fuzzing across buggy/patched/hardened builds",
        "benchmarks/bench_chaos_fuzzing.py",
        ("repro.chaos", "repro.sdnsim"),
    ),
    Experiment(
        "topic-models",
        "SS II-C design choice (ablation)",
        "NMF vs LDA keyword extraction: purity and fit time",
        "benchmarks/bench_topic_models.py",
        ("repro.ml.nmf", "repro.ml.lda", "repro.textmining"),
    ),
    Experiment(
        "failure-prediction",
        "SS IV research direction (extension)",
        "telemetry-based crash prediction: load/memory predictable, logic not",
        "benchmarks/bench_failure_prediction.py",
        ("repro.prediction", "repro.ml.logistic"),
    ),
    Experiment(
        "patch-classification",
        "SS II-C1 (extension)",
        "fix strategies classifiable from patch metadata, not descriptions",
        "benchmarks/bench_patch_classification.py",
        ("repro.pipeline.patchclassifier",),
    ),
    Experiment(
        "composition",
        "SS VII-C composition takeaway",
        "framework stacking conflicts (SPHINX x Bouncer; SOFT vs CHIMP)",
        "benchmarks/bench_composition.py",
        ("repro.frameworks.composition",),
    ),
    Experiment(
        "severity-extraction",
        "SS II-B methodology",
        "keyword severity recall on FAUCET GitHub issues",
        "benchmarks/bench_severity_extraction.py",
        ("repro.trackers.severity",),
    ),
    Experiment(
        "robustness",
        "SS VIII threats (ablation)",
        "annotator noise, sample-size sensitivity, cross-controller transfer",
        "benchmarks/bench_robustness.py",
        ("repro.pipeline.robustness",),
    ),
    Experiment(
        "resilience",
        "SS VII-C takeaway (extension)",
        "A/B fault campaign: resilience runtime absorbs non-deterministic "
        "faults only",
        "benchmarks/bench_resilience.py",
        ("repro.resilience", "repro.faultinjection", "repro.chaos"),
    ),
    Experiment(
        "adversary",
        "SS VII-C frameworks (extension)",
        "control-plane adversary: invariant violations minimized to STS-style "
        "reproducers; bare vs hardened A/B",
        "benchmarks/bench_adversary.py",
        ("repro.adversary", "repro.faultinjection", "repro.frameworks"),
    ),
    Experiment(
        "parallel-pipeline",
        "SS II-C scaling (extension)",
        "parallel + cached NLP pipeline: jobs=4 SVM fan-out and warm-cache "
        "replay, bit-for-bit equal to the serial run",
        "benchmarks/bench_parallel_pipeline.py",
        ("repro.parallel", "repro.pipeline", "repro.ml"),
    ),
    Experiment(
        "crash-recovery",
        "SS VII-C recovery discipline (extension)",
        "kill-injection campaign: journaled pipeline SIGKILLed at each "
        "event offset resumes bit-for-bit; torn checkpoints quarantined",
        "benchmarks/bench_crash_recovery.py",
        ("repro.recovery", "repro.parallel", "repro.pipeline"),
    ),
    Experiment(
        "static-analysis",
        "Table I as checks (extension)",
        "sdnlint self-scan: taxonomy-mapped AST detectors over src/repro; "
        "Fig-8 smells on the extracted CodeModel",
        "benchmarks/bench_staticanalysis.py",
        ("repro.staticanalysis", "repro.smells"),
    ),
    Experiment(
        "coverage-fuzzing",
        "SS V-A test environments (extension)",
        "coverage-guided fault-schedule fuzzer on a 10x200 fat-tree: "
        ">=1.5x the distinct violation signatures of pure-random under "
        "equal budget; every class ships a ddmin reproducer",
        "benchmarks/bench_coverage_fuzzer.py",
        ("repro.fuzzing", "repro.adversary", "repro.parallel", "repro.recovery"),
    ),
    Experiment(
        "serving-overload",
        "SS IV load/overload bugs (extension)",
        "overload A/B on the serving daemon: admission control + deadline "
        "propagation + degradation tiers hold goodput >=1.5x a bare queue "
        "under the same bursty trace, p99 inside the deadline budget, "
        "every drop priced in the resilience ledger",
        "benchmarks/bench_serving.py",
        ("repro.serving", "repro.resilience", "repro.parallel", "repro.recovery"),
    ),
    Experiment(
        "streaming-ingest",
        "SS II-B at stream scale (extension)",
        "fault-tolerant streaming ingestion: >=1M synthetic tracker events "
        "under outages/corruption/duplication with exact accounting "
        "(applied + deduped + dead-lettered == emitted), SIGKILL-resume "
        "bit-identity, and a partial_fit SVM within 2 points of batch",
        "benchmarks/bench_streaming_ingest.py",
        ("repro.stream", "repro.resilience", "repro.recovery",
         "repro.observability"),
    ),
    Experiment(
        "observability-trajectory",
        "the paper's measurement method, inward (extension)",
        "metrics + span plane over the runtime: deterministic registries, "
        "journal-derived span trees bit-identical across kill/resume, and "
        "a gated goodput/p99 trajectory in BENCH_trajectory.json",
        "benchmarks/bench_serving.py",
        ("repro.observability", "repro.serving", "repro.recovery"),
    ),
)


def experiment(exp_id: str) -> Experiment:
    """Look up one experiment by id."""
    for exp in EXPERIMENTS:
        if exp.exp_id == exp_id:
            return exp
    raise KeyError(f"unknown experiment {exp_id!r}")
