"""Rendering helpers: ASCII tables, distributions, CDF series."""

from repro.reporting.tables import ascii_table, format_percent, render_distribution
from repro.reporting.registry import EXPERIMENTS, Experiment

__all__ = [
    "ascii_table",
    "format_percent",
    "render_distribution",
    "EXPERIMENTS",
    "Experiment",
]
