"""Run-directory observability report (the ``repro metrics`` backend).

A run directory accumulates two kinds of evidence as the runtime works:

* **journals** — PR-4 WAL files (``*.jsonl`` under a ``.journal/``
  directory, bare ``*.journal`` files like the serving request log, or
  any explicitly named journal file), from which span trees are derived;
* **metrics exports** — ``*metrics*.jsonl`` files written by the
  serving daemon, fuzzing campaign, or benches in the registry's JSONL
  format.

:func:`collect_run` scans a directory for both (sorted traversal, so
reports are deterministic for a given tree) and :func:`render_text` /
:func:`render_json` turn the collection into the human and machine
report shapes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ObservabilityError
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import (
    STATUS_TRUNCATED,
    Span,
    spans_from_journal,
)
from repro.recovery.journal import JournalError
from repro.reporting.tables import ascii_table

#: Directory name the recovery layer journals under.
JOURNAL_DIRNAME = ".journal"


@dataclass
class RunReport:
    """Everything :func:`collect_run` found in one run directory."""

    root: Path
    #: journal path -> derived spans (sorted by path).
    traces: dict[Path, list[Span]] = field(default_factory=dict)
    #: metrics file path -> rebuilt registry (sorted by path).
    metrics: dict[Path, MetricsRegistry] = field(default_factory=dict)
    #: files that looked relevant but could not be parsed (path, reason).
    skipped: list[tuple[Path, str]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.traces and not self.metrics


def _iter_journals(root: Path) -> list[Path]:
    found = [
        path
        for path in sorted(root.rglob("*.jsonl"))
        if path.parent.name == JOURNAL_DIRNAME
    ]
    # The serving request log journals to a bare `*.journal` file (the
    # glob also matches `.journal` directories themselves — skip those).
    found.extend(
        path for path in sorted(root.rglob("*.journal")) if path.is_file()
    )
    if not found and root.suffix == ".jsonl" and root.is_file():
        found = [root]
    return found


def _iter_metric_files(root: Path) -> list[Path]:
    return [
        path
        for path in sorted(root.rglob("*.jsonl"))
        if "metrics" in path.name and path.parent.name != JOURNAL_DIRNAME
    ]


def collect_run(root: str | Path) -> RunReport:
    """Scan ``root`` (a run dir, or a single journal file) for evidence."""
    root = Path(root)
    if not root.exists():
        raise ObservabilityError(f"{root}: run directory does not exist")
    report = RunReport(root=root)
    if root.is_file():
        journals = [root] if root.suffix in (".jsonl", ".journal") else []
        metric_files: list[Path] = []
        if "metrics" in root.name and root.suffix == ".jsonl":
            metric_files, journals = journals, []
    else:
        journals = _iter_journals(root)
        metric_files = _iter_metric_files(root)
    for path in journals:
        try:
            report.traces[path] = spans_from_journal(path)
        except (JournalError, ObservabilityError) as exc:  # sdnlint: disable=dataflow.unpriced-exception (skips land in report.skipped, rendered and serialized)
            report.skipped.append((path, str(exc)))
    for path in metric_files:
        try:
            report.metrics[path] = MetricsRegistry.from_jsonl(
                path.read_text(encoding="utf-8")
            )
        except ObservabilityError as exc:  # sdnlint: disable=dataflow.unpriced-exception (skips land in report.skipped, rendered and serialized)
            report.skipped.append((path, str(exc)))
    return report


def _span_rows(spans: list[Span]) -> list[list[object]]:
    rows: list[list[object]] = []
    for span in spans:
        rows.append(
            [
                span.name,
                span.kind,
                span.attempt,
                span.start,
                "-" if span.end is None else span.end,
                "-" if span.duration is None else span.duration,
                span.status,
                span.parent_id or "-",
            ]
        )
    return rows


def _metric_rows(registry: MetricsRegistry) -> list[list[object]]:
    rows: list[list[object]] = []
    for sample in registry.to_dicts():
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(sample["labels"].items())
        )
        if sample["type"] == "histogram":
            value = f"count={sample['count']} sum={sample['sum']:g}"
        else:
            value = f"{sample['value']:g}"
        rows.append([sample["name"], sample["type"], labels or "-", value])
    return rows


def render_text(report: RunReport) -> str:
    """Human-readable report: one span table per journal, one metric
    table per export, truncated-span count called out explicitly."""
    sections: list[str] = [f"observability report: {report.root}"]
    for path, spans in sorted(report.traces.items()):
        truncated = sum(1 for s in spans if s.status == STATUS_TRUNCATED)
        title = f"\ntrace {path.name} ({len(spans)} spans"
        title += f", {truncated} truncated)" if truncated else ")"
        sections.append(title)
        sections.append(
            ascii_table(
                ["span", "kind", "attempt", "start", "end", "dur",
                 "status", "parent"],
                _span_rows(spans),
            )
        )
    for path, registry in sorted(report.metrics.items()):
        sections.append(f"\nmetrics {path.name}")
        sections.append(
            ascii_table(
                ["metric", "type", "labels", "value"],
                _metric_rows(registry),
            )
        )
    for path, reason in report.skipped:
        sections.append(f"\nskipped {path}: {reason}")
    if report.empty:
        sections.append("no journals or metrics exports found")
    return "\n".join(sections) + "\n"


def render_json(report: RunReport) -> str:
    """Machine-readable report mirroring :func:`render_text`."""
    payload: dict[str, Any] = {
        "root": str(report.root),
        "traces": {
            str(path): [span.to_dict() for span in spans]
            for path, spans in sorted(report.traces.items())
        },
        "metrics": {
            str(path): registry.to_dicts()
            for path, registry in sorted(report.metrics.items())
        },
        "skipped": [
            {"path": str(path), "reason": reason}
            for path, reason in report.skipped
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
