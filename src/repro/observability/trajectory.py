"""Persistent benchmark trajectory with a gated regression check.

``benchmarks/BENCH_trajectory.json`` is the repo's performance memory:
one entry per benchmark, refreshed in place when that bench reruns, so
the committed file always states the numbers the current tree earns.
The paper measures projects by their *history* (resolution-time CDFs
over tracker event streams); this file is the analogous history for our
own runtime, and :meth:`TrajectoryStore.check` is what turns it from a
log into a gate.

The check compares a *candidate* trajectory (freshly produced by the CI
bench run) against a *baseline* (the committed file) under per-metric
:class:`GateRule` tolerances — ``higher``-is-better metrics may not drop
more than ``tolerance`` (fractional), ``lower``-is-better ones may not
rise more than it.  Violations raise :class:`TrajectoryGateError` with
every failing metric listed, so a regression is a red CI job, not a
silently refreshed number.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ObservabilityError, TrajectoryGateError

DIRECTION_HIGHER = "higher"
DIRECTION_LOWER = "lower"


@dataclass(frozen=True)
class GateRule:
    """Tolerance for one metric of one benchmark.

    ``tolerance`` is fractional: 0.1 on a ``higher``-is-better metric
    means the candidate may be at most 10% below baseline; on ``lower``
    it may be at most 10% above.
    """

    bench: str
    metric: str
    direction: str
    tolerance: float

    def __post_init__(self) -> None:
        if self.direction not in (DIRECTION_HIGHER, DIRECTION_LOWER):
            raise ObservabilityError(
                f"{self.bench}:{self.metric}: direction must be "
                f"'higher' or 'lower', got {self.direction!r}"
            )
        if self.tolerance < 0:
            raise ObservabilityError(
                f"{self.bench}:{self.metric}: tolerance must be >= 0"
            )

    def evaluate(self, baseline: float, candidate: float) -> "GateResult":
        if self.direction == DIRECTION_HIGHER:
            floor = baseline * (1.0 - self.tolerance)
            passed = candidate >= floor
            bound = floor
        else:
            ceiling = baseline * (1.0 + self.tolerance)
            passed = candidate <= ceiling
            bound = ceiling
        return GateResult(
            rule=self,
            baseline=baseline,
            candidate=candidate,
            bound=bound,
            passed=passed,
        )

    @classmethod
    def parse(cls, spec: str) -> "GateRule":
        """Parse ``BENCH:METRIC:DIRECTION:TOLERANCE`` (the CLI syntax)."""
        parts = spec.split(":")
        if len(parts) != 4:
            raise ObservabilityError(
                f"gate spec {spec!r} is not BENCH:METRIC:DIRECTION:TOL"
            )
        bench, metric, direction, tol = parts
        try:
            tolerance = float(tol)
        except ValueError as exc:
            raise ObservabilityError(
                f"gate spec {spec!r}: bad tolerance {tol!r}"
            ) from exc
        return cls(
            bench=bench, metric=metric, direction=direction,
            tolerance=tolerance,
        )


@dataclass(frozen=True)
class GateResult:
    """Outcome of one rule evaluation."""

    rule: GateRule
    baseline: float
    candidate: float
    bound: float
    passed: bool

    def describe(self) -> str:
        arrow = (
            ">=" if self.rule.direction == DIRECTION_HIGHER else "<="
        )
        verdict = "ok" if self.passed else "REGRESSION"
        return (
            f"{self.rule.bench}:{self.rule.metric} [{verdict}] "
            f"candidate={self.candidate:g} {arrow} bound={self.bound:g} "
            f"(baseline={self.baseline:g}, tol={self.rule.tolerance:g} "
            f"{self.rule.direction}-is-better)"
        )


#: The committed gates.  Tolerances are loose enough for scheduler noise
#: across Python versions but far tighter than a real regression: the
#: sim-clock serving bench is deterministic per seed, so a 10% goodput
#: drop can only mean the code changed behavior.
DEFAULT_GATES: tuple[GateRule, ...] = (
    GateRule("serving_overload_ab", "goodput_hardened", DIRECTION_HIGHER, 0.10),
    GateRule("serving_overload_ab", "goodput_ratio", DIRECTION_HIGHER, 0.10),
    GateRule("serving_overload_ab", "p99_hardened", DIRECTION_LOWER, 0.25),
    # Streaming ingest counters are pure functions of (seed, config), so
    # any drift at all is a behavior change: ``applied`` is gated in both
    # directions (exact equality), the loss counters may only shrink, and
    # ``unaccounted`` is pinned to its committed value of zero.
    # Throughput (events/s wall clock) is recorded in the trajectory but
    # deliberately ungated: CI machines vary, determinism does not.
    GateRule("streaming_ingest", "applied", DIRECTION_HIGHER, 0.0),
    GateRule("streaming_ingest", "applied", DIRECTION_LOWER, 0.0),
    GateRule("streaming_ingest", "dead_lettered", DIRECTION_LOWER, 0.0),
    GateRule("streaming_ingest", "lost_upstream", DIRECTION_LOWER, 0.0),
    GateRule("streaming_ingest", "unaccounted", DIRECTION_LOWER, 0.0),
    # Interprocedural lint: ``speedup_floor`` is min(measured, 5.0), so
    # the committed baseline is exactly 5.0 and any warm-cache slip below
    # the design floor fails the gate without coupling CI to raw machine
    # speed; the self-scan must also stay clean at --fail-on error.
    GateRule("dataflow_lint", "speedup_floor", DIRECTION_HIGHER, 0.0),
    GateRule("dataflow_lint", "unsuppressed_errors", DIRECTION_LOWER, 0.0),
)


class TrajectoryStore:
    """One-entry-per-bench JSON trajectory with atomic refresh.

    The on-disk shape is exactly what PR 7 seeded::

        {"entries": [{"bench": "...", <metric>: <number>, ...}, ...]}

    ``record`` replaces the entry for its bench in place (the file is a
    *current-state* trajectory; git history is the time series) and
    publishes with the repo's fsync-then-rename discipline so a crash
    mid-write can't tear the committed baseline.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- I/O -------------------------------------------------------------------
    def load(self) -> list[dict[str, Any]]:
        if not self.path.exists():
            return []
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except ValueError as exc:
            raise ObservabilityError(
                f"{self.path}: unreadable trajectory file: {exc}"
            ) from exc
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ObservabilityError(
                f"{self.path}: trajectory file has no 'entries' list"
            )
        return [dict(entry) for entry in entries]

    def entry(self, bench: str) -> dict[str, Any] | None:
        for entry in self.load():
            if entry.get("bench") == bench:
                return entry
        return None

    def record(self, entry: Mapping[str, Any]) -> dict[str, Any] | None:
        """Insert or refresh ``entry`` (keyed by ``bench``); return the
        previous entry for that bench, if any."""
        bench = entry.get("bench")
        if not bench:
            raise ObservabilityError("trajectory entry needs a 'bench' key")
        entries = self.load()
        previous = None
        for index, existing in enumerate(entries):
            if existing.get("bench") == bench:
                previous = existing
                entries[index] = dict(entry)
                break
        else:
            entries.append(dict(entry))
        entries.sort(key=lambda e: str(e.get("bench", "")))
        self._write(entries)
        return previous

    def _write(self, entries: list[dict[str, Any]]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump({"entries": entries}, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    # -- gating ----------------------------------------------------------------
    def check(
        self,
        candidate: "TrajectoryStore | str | Path | None" = None,
        *,
        gates: Iterable[GateRule] = DEFAULT_GATES,
    ) -> list[GateResult]:
        """Evaluate ``candidate`` against this store's entries.

        With no candidate the store is compared against itself — a
        freshly committed baseline always passes its own gates (this is
        also how CI validates that the committed file and the committed
        gate rules agree).  A gate whose bench or metric is absent from
        *both* sides is skipped (a bench not run is not a regression);
        present on one side only raises, because a silently vanished
        metric is exactly the drift the gate exists to catch.

        Returns every evaluated :class:`GateResult`; raises
        :class:`TrajectoryGateError` listing all failures if any rule
        failed.
        """
        if candidate is None:
            cand_store: TrajectoryStore = self
        elif isinstance(candidate, TrajectoryStore):
            cand_store = candidate
        else:
            cand_store = TrajectoryStore(candidate)
        results: list[GateResult] = []
        for rule in sorted(
            gates, key=lambda r: (r.bench, r.metric, r.direction)
        ):
            base_entry = self.entry(rule.bench)
            cand_entry = cand_store.entry(rule.bench)
            if base_entry is None and cand_entry is None:
                continue
            base_value = _metric(base_entry, rule, self.path)
            cand_value = _metric(cand_entry, rule, cand_store.path)
            results.append(rule.evaluate(base_value, cand_value))
        failures = [r for r in results if not r.passed]
        if failures:
            raise TrajectoryGateError(
                "trajectory regression:\n"
                + "\n".join(f"  {r.describe()}" for r in failures)
            )
        return results


def _metric(
    entry: Mapping[str, Any] | None, rule: GateRule, path: Path
) -> float:
    if entry is None:
        raise ObservabilityError(
            f"{path}: bench {rule.bench!r} is gated but absent"
        )
    value = entry.get(rule.metric)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ObservabilityError(
            f"{path}: {rule.bench}:{rule.metric} is gated but missing "
            f"or non-numeric (got {value!r})"
        )
    return float(value)
