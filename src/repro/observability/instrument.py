"""Bridges from existing subsystems onto the :class:`MetricsRegistry`.

Each subsystem keeps its own native accounting (the serving daemon's
``ServingStats`` dataclass, the resilience ledger's record list, the
artifact cache's plain-int counters) — those shapes are pinned by
regression tests and by fingerprint contracts, so the observability
layer *projects* them onto registries rather than replacing them.  The
projections here are pure functions: calling them never mutates the
source object, so they are safe to run mid-flight or post-mortem.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.observability.metrics import MetricsRegistry
from repro.resilience.ledger import ResilienceLedger


def ledger_to_metrics(
    ledger: ResilienceLedger,
    registry: MetricsRegistry | None = None,
    *,
    component_label: bool = True,
) -> MetricsRegistry:
    """Project a resilience ledger onto counters.

    Every RETRY/SHED/GIVE_UP/BREAKER_*/RESTART/DEGRADATION record becomes
    an increment of ``resilience_actions_total{event,component}``; retry
    backoff and breaker cool-downs accumulate into
    ``resilience_recovery_seconds_total``; taxonomy-tagged records also
    count into ``resilience_triggers_total{trigger}`` and
    ``resilience_symptoms_total{symptom}``.
    """
    registry = registry if registry is not None else MetricsRegistry()
    labels = ["component", "event"] if component_label else ["event"]
    actions = registry.counter(
        "resilience_actions_total",
        "Resilience actions taken, by event class",
        labels=labels,
    )
    cost = registry.counter(
        "resilience_recovery_seconds_total",
        "Backoff and cool-down seconds spent recovering",
        labels=labels,
    )
    triggers = registry.counter(
        "resilience_triggers_total",
        "Resilience actions per taxonomy trigger",
        labels=["trigger"],
    )
    symptoms = registry.counter(
        "resilience_symptoms_total",
        "Resilience actions per absorbed taxonomy symptom",
        labels=["symptom"],
    )
    for record in ledger.records:
        tags = {"event": record.event.value}
        if component_label:
            tags["component"] = record.component
        actions.labels(**tags).inc()
        if record.delay:
            cost.labels(**tags).inc(record.delay)
        if record.trigger is not None:
            triggers.labels(trigger=record.trigger.value).inc()
        if record.symptom is not None:
            symptoms.labels(symptom=record.symptom.value).inc()
    return registry


def counters_to_metrics(
    counts: Mapping[str, Any],
    registry: MetricsRegistry,
    *,
    prefix: str,
    help_prefix: str = "",
    gauges: tuple[str, ...] = (),
) -> MetricsRegistry:
    """Project a flat name->number mapping onto ``<prefix>_<name>``.

    Keys listed in ``gauges`` (or carrying non-cumulative level values)
    become gauges; everything else becomes a counter incremented to the
    mapped value.  Non-numeric and ``None`` values are skipped — the
    source dicts legitimately carry ``None`` for "not yet measured".
    """
    for name in sorted(counts):
        value = counts[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        metric_name = f"{prefix}_{name}"
        help_text = f"{help_prefix}{name.replace('_', ' ')}".strip()
        if name in gauges:
            registry.gauge(metric_name, help_text).set(float(value))
        else:
            registry.counter(metric_name, help_text).inc(float(value))
    return registry


def cache_to_metrics(
    cache: Any, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Normalize ``ArtifactCache.stats()`` onto a registry.

    Hit/miss/quarantine/store tallies become ``cache_*_total`` counters;
    the entry-age aggregates (levels, not totals) become gauges.  The
    ``stats()`` dict itself stays the cache's public API — this is the
    report-facing projection.
    """
    registry = registry if registry is not None else MetricsRegistry()
    stats = dict(cache.stats())
    ages = {
        name: stats.pop(name)
        for name in ("age_min", "age_max", "age_mean", "age_tracked")
        if name in stats
    }
    for name in sorted(stats):
        value = stats[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        registry.counter(
            f"cache_{name}_total", f"Artifact cache {name}"
        ).inc(float(value))
    for name in sorted(ages):
        value = ages[name]
        if value is None or isinstance(value, bool):
            continue
        registry.gauge(
            f"cache_{name}", f"Artifact cache entry {name.replace('_', ' ')}"
        ).set(float(value))
    return registry


def requestlog_to_metrics(
    recovered: Mapping[str, list[int]],
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Normalize :func:`repro.serving.requestlog.recover` output.

    The recover dict's public keys (``finished``/``inflight``) are pinned
    by regression tests; here they become
    ``requestlog_requests{state=...}`` gauges for the report layer.
    """
    registry = registry if registry is not None else MetricsRegistry()
    gauge = registry.gauge(
        "requestlog_requests",
        "Requests classified from the durable request log",
        labels=["state"],
    )
    for state in sorted(recovered):
        gauge.labels(state=state).set(float(len(recovered[state])))
    return registry
