"""Counters, gauges and fixed-bucket histograms for the repro runtime.

The paper's whole method is *measurement*: symptom distributions,
resolution-time CDFs, framework-coverage tables — all mined from event
streams the projects already produced.  This module gives our own runtime
the same discipline.  A :class:`MetricsRegistry` holds three instrument
kinds (Prometheus's core trio):

* **Counter** — monotone total (requests served, tokens discovered);
* **Gauge** — point-in-time level (queue depth, corpus energy);
* **Histogram** — fixed-bucket distribution with exact ``sum``/``count``
  (per-class latency, batch sizes).

Design constraints, in order:

1. **Determinism.**  Instruments are timestamped by an injectable clock
   (the serving daemon binds its simulation clock; the default is a
   constant ``0.0``, never wall time), families export in sorted name
   order, label names are sorted at registration, and label *sets* export
   in sorted value order — so two same-seed runs export **byte-identical**
   text.  Wall-clock stamps would silently break the crash-resume and
   A/B fingerprint contracts, which is why they are not even the default.
2. **Thread safety.**  One registry lock guards every mutation, so
   instruments can be updated from :class:`~repro.parallel.executor.WorkPool`
   thread workers without torn read-modify-write updates.
3. **Exportability.**  ``export_prometheus()`` emits the text exposition
   format; ``export_jsonl()``/``from_jsonl()`` round-trip the full state
   (the shape the ``repro metrics`` report and the trajectory gate
   consume).  ``merge()`` folds per-worker registries into one.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ObservabilityError

#: Default histogram upper bounds (simulated seconds), spanning the
#: serving daemon's observed latency range (~10 ms queries to ~100 s
#: bare-arm collapse).  ``+Inf`` is always implied as the final bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_KINDS = ("counter", "gauge", "histogram")


def _fmt_number(value: float) -> str:
    """Canonical text form: integral floats lose the ``.0``, others keep
    full ``repr`` precision — stable across platforms for golden tests."""
    if value != value or value in (math.inf, -math.inf):
        return {math.inf: "+Inf", -math.inf: "-Inf"}.get(value, "NaN")
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _parse_le(text: str) -> float:
    return math.inf if text == "+Inf" else float(text)


class _Instrument:
    """One family: a named instrument plus its labeled children."""

    kind = ""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
    ) -> None:
        self._registry = registry
        self._lock = registry._lock
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **labels: str) -> Any:
        """The child for this label set, created on first use."""
        if sorted(labels) != list(self.label_names):
            raise ObservabilityError(
                f"{self.name}: expected labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default_child(self) -> Any:
        if self.label_names:
            raise ObservabilityError(
                f"{self.name}: labeled instrument needs .labels(...) first"
            )
        return self.labels()

    def _make_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def _sorted_children(self) -> list[tuple[tuple[str, ...], Any]]:
        return sorted(self._children.items())


class _CounterChild:
    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Counter(_Instrument):
    """Monotonically increasing total."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)


class _GaugeChild:
    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Gauge(_Instrument):
    """Point-in-time level that can move both ways."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)


class _HistogramChild:
    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]) -> None:
        self._lock = lock
        self.buckets = buckets
        #: Per-bucket (non-cumulative) counts; index len(buckets) is +Inf.
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (``le`` semantics)."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


class Histogram(_Instrument):
    """Fixed-bucket distribution with exact sum and count."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(registry, name, help_text, label_names)
        if not buckets:
            raise ObservabilityError(f"{name}: histogram needs >= 1 bucket bound")
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ObservabilityError(
                f"{name}: bucket bounds must be strictly increasing: {buckets}"
            )
        if any(b == math.inf for b in buckets):
            raise ObservabilityError(
                f"{name}: +Inf bucket is implicit, do not pass it"
            )
        self.buckets = tuple(float(b) for b in buckets)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


class MetricsRegistry:
    """A deterministic, thread-safe instrument registry.

    ``clock`` is a zero-argument callable stamping exported samples; it
    defaults to a constant ``0.0`` (never wall time) so exports stay
    byte-identical across same-seed runs unless a caller deliberately
    binds a clock (the serving daemon binds its simulation clock).
    """

    def __init__(self, *, clock: Callable[[], float] | None = None) -> None:
        self._lock = threading.Lock()
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._families: dict[str, _Instrument] = {}

    # -- registration ----------------------------------------------------------
    def _register(self, instrument: _Instrument) -> _Instrument:
        name = instrument.name
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        for label in instrument.label_names:
            if not _LABEL_RE.match(label):
                raise ObservabilityError(
                    f"{name}: invalid label name {label!r}"
                )
        with self._lock:
            existing = self._families.get(name)
            if existing is None:
                self._families[name] = instrument
                return instrument
        if existing.kind != instrument.kind:
            raise ObservabilityError(
                f"{name}: already registered as a {existing.kind}, "
                f"cannot re-register as a {instrument.kind}"
            )
        if existing.label_names != instrument.label_names:
            raise ObservabilityError(
                f"{name}: label names {existing.label_names} != "
                f"{instrument.label_names}"
            )
        if (
            isinstance(existing, Histogram)
            and isinstance(instrument, Histogram)
            and existing.buckets != instrument.buckets
        ):
            raise ObservabilityError(
                f"{name}: bucket bounds {existing.buckets} != "
                f"{instrument.buckets}"
            )
        return existing

    def counter(
        self, name: str, help_text: str = "", *, labels: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter (idempotent for an identical spec)."""
        family = self._register(
            Counter(self, name, help_text, tuple(sorted(labels)))
        )
        assert isinstance(family, Counter)
        return family

    def gauge(
        self, name: str, help_text: str = "", *, labels: Sequence[str] = ()
    ) -> Gauge:
        family = self._register(
            Gauge(self, name, help_text, tuple(sorted(labels)))
        )
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        family = self._register(
            Histogram(
                self, name, help_text, tuple(sorted(labels)),
                tuple(float(b) for b in buckets),
            )
        )
        assert isinstance(family, Histogram)
        return family

    # -- introspection ---------------------------------------------------------
    def families(self) -> list[_Instrument]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter/gauge child (0.0 if never touched)."""
        family = self.get(name)
        if family is None:
            raise ObservabilityError(f"unknown metric {name!r}")
        if isinstance(family, Histogram):
            raise ObservabilityError(f"{name}: use sample dicts for histograms")
        key = tuple(str(labels[n]) for n in family.label_names)
        with self._lock:
            child = family._children.get(key)
            return child.value if child is not None else 0.0

    # -- export ----------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """One JSON-safe sample dict per labeled child, in export order."""
        now = float(self._clock())
        samples: list[dict[str, Any]] = []
        for family in self.families():
            with self._lock:
                children = family._sorted_children()
            for key, child in children:
                labels = dict(zip(family.label_names, key))
                sample: dict[str, Any] = {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "labels": labels,
                    "time": now,
                }
                if isinstance(child, _HistogramChild):
                    bounds = [_fmt_number(b) for b in child.buckets] + ["+Inf"]
                    sample["buckets"] = [
                        [bound, count]
                        for bound, count in zip(bounds, child.cumulative())
                    ]
                    sample["sum"] = child.sum
                    sample["count"] = child.count
                else:
                    sample["value"] = child.value
                samples.append(sample)
        return samples

    def export_jsonl(self) -> str:
        """One canonical JSON object per sample, newline-terminated."""
        lines = [
            json.dumps(sample, sort_keys=True, separators=(",", ":"))
            for sample in self.to_dicts()
        ]
        return "".join(line + "\n" for line in lines)

    def export_prometheus(self) -> str:
        """The Prometheus text exposition format (no timestamps)."""
        out: list[str] = []
        for family in self.families():
            if family.help:
                out.append(f"# HELP {family.name} {family.help}")
            out.append(f"# TYPE {family.name} {family.kind}")
            with self._lock:
                children = family._sorted_children()
            for key, child in children:
                labels = dict(zip(family.label_names, key))
                if isinstance(child, _HistogramChild):
                    bounds = [_fmt_number(b) for b in child.buckets] + ["+Inf"]
                    for bound, count in zip(bounds, child.cumulative()):
                        out.append(
                            f"{family.name}_bucket"
                            f"{_label_text(labels, le=bound)} {count}"
                        )
                    out.append(
                        f"{family.name}_sum{_label_text(labels)} "
                        f"{_fmt_number(child.sum)}"
                    )
                    out.append(
                        f"{family.name}_count{_label_text(labels)} {child.count}"
                    )
                else:
                    out.append(
                        f"{family.name}{_label_text(labels)} "
                        f"{_fmt_number(child.value)}"
                    )
        return "".join(line + "\n" for line in out)

    # -- merge / import --------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (for per-worker registries).

        Counters and histograms add; gauges take ``other``'s value
        (last-writer-wins, the merge order being the caller's contract).
        Histogram bucket bounds must agree exactly.
        """
        self.ingest(other.to_dicts())
        return self

    def ingest(self, samples: Iterable[Mapping[str, Any]]) -> None:
        """Fold exported sample dicts into this registry's instruments."""
        for sample in samples:
            name = str(sample["name"])
            kind = str(sample["type"])
            if kind not in _KINDS:
                raise ObservabilityError(f"{name}: unknown sample type {kind!r}")
            help_text = str(sample.get("help", ""))
            labels = {str(k): str(v) for k, v in dict(sample["labels"]).items()}
            label_names = sorted(labels)
            if kind == "counter":
                family = self.counter(name, help_text, labels=label_names)
                family.labels(**labels).inc(float(sample["value"]))
            elif kind == "gauge":
                family = self.gauge(name, help_text, labels=label_names)
                family.labels(**labels).set(float(sample["value"]))
            else:
                pairs = [(str(le), int(count)) for le, count in sample["buckets"]]
                bounds = tuple(
                    _parse_le(le) for le, _ in pairs if le != "+Inf"
                )
                family = self.histogram(
                    name, help_text, labels=label_names, buckets=bounds
                )
                child = family.labels(**labels)
                with self._lock:
                    previous = 0
                    for index, (_le, cumulative) in enumerate(pairs):
                        child.counts[index] += cumulative - previous
                        previous = cumulative
                    child.sum += float(sample["sum"])
                    child.count += int(sample["count"])

    @classmethod
    def from_jsonl(
        cls, text: str, *, clock: Callable[[], float] | None = None
    ) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`export_jsonl` output."""
        registry = cls(clock=clock)
        samples = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                samples.append(json.loads(line))
            except ValueError as exc:
                raise ObservabilityError(
                    f"metrics JSONL line {lineno}: {exc}"
                ) from exc
        registry.ingest(samples)
        return registry


def _label_text(labels: Mapping[str, str], *, le: str | None = None) -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in labels.items()]
    if le is not None:
        parts.append(f'le="{le}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
