"""Observability core: metrics, journal-derived spans, perf trajectory.

The plane has three legs, all deterministic by construction:

* :mod:`repro.observability.metrics` — counters/gauges/histograms with
  Prometheus-text and JSONL export, clocked by an injectable (sim)
  clock, thread-safe under the WorkPool;
* :mod:`repro.observability.spans` — span trees derived from the PR-4
  run journal (the WAL already records begin/commit/skip durably, so
  tracing costs no second event stream and survives crashes);
* :mod:`repro.observability.trajectory` — the per-PR benchmark
  trajectory file with tolerance-gated regression checks
  (``repro trajectory --check``).
"""

from repro.observability.instrument import (
    cache_to_metrics,
    counters_to_metrics,
    ledger_to_metrics,
    requestlog_to_metrics,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.report import (
    RunReport,
    collect_run,
    render_json,
    render_text,
)
from repro.observability.spans import (
    KIND_RUN,
    KIND_STAGE,
    STATUS_OK,
    STATUS_OPEN,
    STATUS_SKIPPED,
    STATUS_TRUNCATED,
    Span,
    SpanBuilder,
    Tracer,
    span_tree,
    spans_from_journal,
    spans_to_jsonl,
)
from repro.observability.trajectory import (
    DEFAULT_GATES,
    GateResult,
    GateRule,
    TrajectoryStore,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_GATES",
    "Counter",
    "Gauge",
    "GateResult",
    "GateRule",
    "Histogram",
    "KIND_RUN",
    "KIND_STAGE",
    "MetricsRegistry",
    "RunReport",
    "STATUS_OK",
    "STATUS_OPEN",
    "STATUS_SKIPPED",
    "STATUS_TRUNCATED",
    "Span",
    "SpanBuilder",
    "Tracer",
    "TrajectoryStore",
    "cache_to_metrics",
    "collect_run",
    "counters_to_metrics",
    "ledger_to_metrics",
    "render_json",
    "render_text",
    "requestlog_to_metrics",
    "span_tree",
    "spans_from_journal",
    "spans_to_jsonl",
]
