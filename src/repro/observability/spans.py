"""Span tracing derived from the PR-4 run journal.

The journal is already a trace: every stage durably records *intent*
(``begin``) before computing and *completion* (``commit``/``skip``)
after, and every attempt opens with ``run-start``/``run-resume``.  This
module makes that structure first-class — OpenTelemetry-shaped spans
with explicit parent ids — without asking any subsystem to emit a second
event stream that could drift from the WAL.

Two entry points:

* :class:`SpanBuilder` consumes :class:`~repro.recovery.journal.JournalEvent`
  records one at a time, so it plugs straight into ``RunJournal``'s
  post-fsync ``on_event`` hook for live tracing;
* :func:`spans_from_journal` replays a journal file (or an existing
  :class:`~repro.recovery.journal.JournalReplay`) through a builder —
  the offline path the ``repro metrics`` report uses.

The time axis is the journal's ``seq`` number, not wall time: journal
records deliberately carry no clock (wall time would break bit-identical
resume), so span start/end are event ordinals and ``duration`` counts
durable events inside the span.  Crash-truncated work is visible, not
dropped: a ``begin`` with no terminal record before the next attempt (or
end of log) closes as ``status="truncated"`` — exactly the in-flight
window a resume must re-execute.

Mapping (journal event -> span effect):

================  ==========================================================
``run-start``     opens root span ``run`` (attempt 0)
``run-resume``    truncates any open spans, opens root ``run`` (attempt n)
``begin``         opens stage span, parent = current root
``commit``        closes the stage's open span with ``status="ok"``
``skip``          closes the stage's open span as ``skipped``; with no
                  open ``begin`` it records an instantaneous ``skipped``
                  span (resume re-assertions, shed/expired requests)
``run-end``       closes the root with ``status="ok"``
end of journal    any still-open span closes as ``truncated``
================  ==========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ObservabilityError
from repro.recovery.journal import (
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_RUN_END,
    EVENT_RUN_RESUME,
    EVENT_RUN_START,
    EVENT_SKIP,
    JournalEvent,
    JournalReplay,
    replay_journal,
)

#: Terminal statuses a span may carry.
STATUS_OK = "ok"
STATUS_SKIPPED = "skipped"
STATUS_TRUNCATED = "truncated"
STATUS_OPEN = "open"

KIND_RUN = "run"
KIND_STAGE = "stage"


@dataclass(frozen=True)
class Span:
    """One unit of journaled work, with an explicit parent id.

    ``start``/``end`` are journal sequence numbers (the WAL's only
    honest time axis); ``end`` is ``None`` while the span is open or
    when a crash truncated it before a terminal record.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    kind: str
    start: int
    end: int | None
    status: str
    attempt: int
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int | None:
        """Durable events spanned, or ``None`` if never closed."""
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attempt": self.attempt,
            "attrs": dict(self.attrs),
        }


def _span_id(trace_id: str, seq: int) -> str:
    """Deterministic span id: position in the WAL is identity."""
    return f"{trace_id}:{seq:06d}"


class Tracer:
    """Explicit-parent span recorder for code that isn't journal-backed.

    A minimal manual API (``start``/``end``) over the same :class:`Span`
    shape, clocked by an injectable monotonic callable (default: span
    count, so traces stay deterministic without a wall clock).
    """

    def __init__(self, trace_id: str, *, clock: Any = None) -> None:
        self.trace_id = trace_id
        self._clock = clock
        self._ticks = 0
        self._ids = 0
        self._finished: list[Span] = []
        self._open: dict[str, Span] = {}

    def _now(self) -> int:
        if self._clock is not None:
            return int(self._clock())
        return self._ticks

    def start(
        self,
        name: str,
        *,
        parent_id: str | None = None,
        kind: str = KIND_STAGE,
        attempt: int = 0,
        attrs: Mapping[str, Any] | None = None,
    ) -> Span:
        start = self._now()
        self._ticks += 1
        self._ids += 1
        span = Span(
            trace_id=self.trace_id,
            span_id=_span_id(self.trace_id, self._ids - 1),
            parent_id=parent_id,
            name=name,
            kind=kind,
            start=start,
            end=None,
            status=STATUS_OPEN,
            attempt=attempt,
            attrs=dict(attrs or {}),
        )
        self._open[span.span_id] = span
        return span

    def end(self, span: Span, *, status: str = STATUS_OK) -> Span:
        if span.span_id not in self._open:
            raise ObservabilityError(
                f"span {span.span_id} is not open in this tracer"
            )
        end = self._now()
        self._ticks += 1
        closed = replace(span, end=end, status=status)
        del self._open[span.span_id]
        self._finished.append(closed)
        return closed

    def finished(self) -> list[Span]:
        return sorted(self._finished, key=lambda s: (s.start, s.span_id))


class SpanBuilder:
    """Incremental journal-event -> span converter.

    Feed it events in order (e.g. as a ``RunJournal`` ``on_event`` hook);
    ``spans()`` returns finished plus still-open spans at any point.  The
    builder never mutates already-finished spans, so live consumers can
    stream ``finished`` safely.
    """

    def __init__(self, trace_id: str = "") -> None:
        self.trace_id = trace_id
        self.attempt = -1
        self._root: Span | None = None
        self._open_stages: dict[str, Span] = {}
        self._finished: list[Span] = []
        self._last_seq = -1

    # -- feeding ---------------------------------------------------------------
    def feed(self, event: JournalEvent) -> None:
        """Consume one journal event (usable directly as ``on_event``)."""
        self._last_seq = event.seq
        if event.event in (EVENT_RUN_START, EVENT_RUN_RESUME):
            self._truncate_open(event.seq)
            self.attempt += 1
            self._root = Span(
                trace_id=self.trace_id,
                span_id=_span_id(self.trace_id, event.seq),
                parent_id=None,
                name="run",
                kind=KIND_RUN,
                start=event.seq,
                end=None,
                status=STATUS_OPEN,
                attempt=self.attempt,
                attrs={"event": event.event, **dict(event.meta)},
            )
        elif event.event == EVENT_BEGIN:
            span = Span(
                trace_id=self.trace_id,
                span_id=_span_id(self.trace_id, event.seq),
                parent_id=self._root.span_id if self._root else None,
                name=event.stage,
                kind=KIND_STAGE,
                start=event.seq,
                end=None,
                status=STATUS_OPEN,
                attempt=max(self.attempt, 0),
                attrs=_stage_attrs(event),
            )
            self._open_stages[event.stage] = span
        elif event.event in (EVENT_COMMIT, EVENT_SKIP):
            status = STATUS_OK if event.event == EVENT_COMMIT else STATUS_SKIPPED
            open_span = self._open_stages.pop(event.stage, None)
            if open_span is not None:
                self._finish(
                    replace(
                        open_span,
                        end=event.seq,
                        status=status,
                        attrs={**open_span.attrs, **_stage_attrs(event)},
                    )
                )
            else:
                # Terminal with no begin: a resume re-assertion or a
                # shed/expired request — an instantaneous skipped span.
                self._finish(
                    Span(
                        trace_id=self.trace_id,
                        span_id=_span_id(self.trace_id, event.seq),
                        parent_id=self._root.span_id if self._root else None,
                        name=event.stage,
                        kind=KIND_STAGE,
                        start=event.seq,
                        end=event.seq,
                        status=STATUS_SKIPPED,
                        attempt=max(self.attempt, 0),
                        attrs=_stage_attrs(event),
                    )
                )
        elif event.event == EVENT_RUN_END:
            self._truncate_open(event.seq, stages_only=True)
            if self._root is not None:
                self._finish(
                    replace(
                        self._root,
                        end=event.seq,
                        status=STATUS_OK,
                        attrs={**self._root.attrs, **dict(event.meta)},
                    )
                )
                self._root = None
        else:  # pragma: no cover - journal validates event types upstream
            raise ObservabilityError(f"unknown journal event {event.event!r}")

    def _stage_truncated(self, span: Span) -> Span:
        return replace(span, status=STATUS_TRUNCATED)

    def _truncate_open(self, seq: int, *, stages_only: bool = False) -> None:
        """Close everything still open as crash-truncated (``end=None``)."""
        for stage in sorted(self._open_stages):
            self._finish(self._stage_truncated(self._open_stages[stage]))
        self._open_stages.clear()
        if not stages_only and self._root is not None:
            self._finish(replace(self._root, status=STATUS_TRUNCATED))
            self._root = None

    def _finish(self, span: Span) -> None:
        self._finished.append(span)

    # -- reading ---------------------------------------------------------------
    def finish(self) -> list[Span]:
        """Seal the trace: open work becomes truncated; returns all spans."""
        self._truncate_open(self._last_seq)
        return self.spans()

    def spans(self) -> list[Span]:
        """Finished spans plus any still-open ones, ordered by start seq."""
        live = [self._open_stages[s] for s in sorted(self._open_stages)]
        if self._root is not None:
            live.append(self._root)
        return sorted(
            self._finished + live, key=lambda s: (s.start, s.span_id)
        )


def spans_from_journal(
    source: str | Path | JournalReplay, *, trace_id: str | None = None
) -> list[Span]:
    """Reconstruct the span tree of a journal file or replay.

    The journal's torn-tail handling applies (a partial final line is
    dropped before derivation), so the same physical file yields the
    same spans before a crash and after a resume appended to it — the
    bit-identical-resume property, lifted to traces.
    """
    if isinstance(source, JournalReplay):
        replay = source
    else:
        replay = replay_journal(source)
    builder = SpanBuilder(
        trace_id if trace_id is not None else replay.run_id
    )
    for event in replay.events:
        builder.feed(event)
    return builder.finish()


def spans_to_jsonl(spans: list[Span]) -> str:
    """Canonical one-object-per-line serialization (golden-testable)."""
    return "".join(
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
        + "\n"
        for span in spans
    )


def span_tree(spans: list[Span]) -> dict[str | None, list[Span]]:
    """Parent id -> children, each child list in start order."""
    tree: dict[str | None, list[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent_id, []).append(span)
    for children in tree.values():
        children.sort(key=lambda s: (s.start, s.span_id))
    return tree


def _stage_attrs(event: JournalEvent) -> dict[str, Any]:
    attrs: dict[str, Any] = dict(event.meta)
    if event.key:
        attrs["key"] = event.key
    if event.digest:
        attrs["digest"] = event.digest
    return attrs
