"""Incremental interprocedural lint: the summary cache must pay >= 5x.

The dataflow engine's contract is that per-module summaries are pure
functions of one module's source bytes, so a warm cache turns the whole
summarize phase into digest lookups — no ``ast.parse`` at all.  This
bench runs the full self-scan (every module under ``src/repro``) twice
against a fresh cache directory and gates three facts in
``benchmarks/BENCH_trajectory.json``:

* **warm >= 5x cold** — ``speedup_floor`` records ``min(speedup, 5.0)``
  so the committed value is exactly the floor and any slip below it is a
  gate failure, while the raw ``speedup`` rides along ungated (CI
  machines vary; the floor is what the design owes);
* **the self-scan stays clean** — ``unsuppressed_errors`` is pinned at
  zero: every ``dataflow.*`` error in this repo is either fixed or
  carries an inline justification;
* **cold and warm reports are byte-identical** — the cache changes cost,
  never answers.
"""

from __future__ import annotations

import pathlib
import time

from conftest import once

from repro.observability import TrajectoryStore
from repro.staticanalysis import Severity, run_interprocedural, to_json

TRAJECTORY = pathlib.Path(__file__).parent / "BENCH_trajectory.json"
REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: The design floor: a warm self-scan must be at least this much faster.
SPEEDUP_FLOOR = 5.0


def test_bench_summary_cache_speedup(benchmark, tmp_path):
    """Cold vs warm self-scan over ``src/repro`` with a fresh cache."""
    cache = tmp_path / "summary-cache"

    def run():
        start = time.perf_counter()
        cold = run_interprocedural([SRC], root=REPO, cache_root=cache, jobs=2)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_interprocedural([SRC], root=REPO, cache_root=cache, jobs=2)
        warm_s = time.perf_counter() - start
        return cold, cold_s, warm, warm_s

    cold, cold_s, warm, warm_s = once(benchmark, run)
    speedup = cold_s / warm_s
    errors = [
        f for f in warm.report.active if f.severity is Severity.ERROR
    ]
    print()
    print(f"  cold {cold_s:.2f}s ({cold.stats['cache_misses']} summarized), "
          f"warm {warm_s:.2f}s ({warm.stats['cache_hits']} cache hits): "
          f"{speedup:.1f}x")
    print(f"  {warm.stats['modules']} modules, "
          f"{warm.stats['functions']} functions, "
          f"{warm.stats['resolved_edges']} resolved edges, "
          f"{len(warm.report.findings)} finding(s), {len(errors)} error(s)")

    # Gate 1: the cache actually skipped every re-parse.
    assert cold.stats["cache_misses"] == cold.stats["modules"]
    assert warm.stats["cache_hits"] == warm.stats["modules"]
    assert warm.stats["cache_misses"] == 0
    # Gate 2: caching changes cost, never answers.
    assert to_json(cold.report) == to_json(warm.report)
    # Gate 3: the warm path pays for itself five times over.
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm self-scan only {speedup:.1f}x over cold "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    # Gate 4: the self-scan is clean at --fail-on error.
    assert not errors, f"unsuppressed dataflow errors: {errors}"

    entry = {
        "bench": "dataflow_lint",
        "modules": warm.stats["modules"],
        "functions": warm.stats["functions"],
        "resolved_edges": warm.stats["resolved_edges"],
        "findings": len(warm.report.findings),
        "unsuppressed_errors": len(errors),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(speedup, 2),
        "speedup_floor": min(round(speedup, 2), SPEEDUP_FLOOR),
    }
    TrajectoryStore(TRAJECTORY).record(entry)
