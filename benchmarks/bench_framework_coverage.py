"""Table VI / SS VII-C (RQ5): fault-tolerance framework coverage.

Paper: no single technique recovers across all root causes; most systems
target OpenFlow-message (network-event) triggers; recovery works for
non-deterministic bugs but remains unsolved for deterministic ones — the
overwhelming majority.
"""

from __future__ import annotations

from conftest import once

from repro.frameworks.evaluator import (
    deterministic_recovery_gap,
    evaluate_coverage,
)
from repro.reporting import ascii_table, format_percent
from repro.taxonomy import BugType, Trigger


def test_bench_coverage_matrix(benchmark):
    report = once(benchmark, evaluate_coverage, seed=0)
    rows = [
        [
            name,
            format_percent(report.detection_rate(name)),
            format_percent(report.recovery_rate(name, bug_type=BugType.DETERMINISTIC)),
            format_percent(
                report.recovery_rate(name, bug_type=BugType.NON_DETERMINISTIC)
            ),
        ]
        for name in report.frameworks()
    ]
    print()
    print(ascii_table(
        ["framework", "detects", "recovers (det)", "recovers (non-det)"],
        rows, title="Table VI: framework coverage over the fault catalog",
    ))
    # No one technique covers everything.
    assert all(report.recovery_rate(name) < 0.5 for name in report.frameworks())
    # Detection is broader than recovery for every framework.
    for name in report.frameworks():
        assert report.detection_rate(name) >= report.recovery_rate(name)


def test_bench_trigger_coverage_gap(benchmark):
    report = once(benchmark, evaluate_coverage, seed=0)

    rows = []
    for trigger in Trigger:
        coverage = report.trigger_coverage(trigger)
        recovering = sorted(name for name, ok in coverage.items() if ok)
        rows.append([trigger.value, len(recovering), ", ".join(recovering) or "-"])
    print()
    print(ascii_table(
        ["trigger", "# frameworks recovering", "which"], rows,
        title="SS VII-C: recovery coverage per trigger",
    ))
    per_trigger = {
        trigger: sum(report.trigger_coverage(trigger).values())
        for trigger in Trigger
    }
    assert per_trigger[Trigger.NETWORK_EVENTS] == max(per_trigger.values())
    # Configuration and reboot triggers are the unaddressed gap.
    assert per_trigger[Trigger.HARDWARE_REBOOTS] == 0
    assert per_trigger[Trigger.CONFIGURATION] == 0


def test_bench_deterministic_gap(benchmark):
    report = once(benchmark, evaluate_coverage, seed=0)
    gap = deterministic_recovery_gap(report)
    rows = [[name, format_percent(rate)] for name, rate in sorted(gap.items())]
    print()
    print(ascii_table(
        ["framework", "deterministic recovery"], rows,
        title="SS VII-C: the deterministic-recovery gap",
    ))
    nonzero = {name for name, rate in gap.items() if rate > 0}
    assert nonzero <= {"LegoSDN", "Bouncer"}, (
        "only input-transformation systems touch deterministic bugs"
    )
