"""SS II-C1/C2 completion: fixes are classifiable from patches, not text.

The paper found no algorithm predicts fix strategies from bug descriptions
(we measure ~40%), yet its own methodology verified fixes by reading the
source patches.  This bench closes the loop: a rule-based classifier over
Gerrit metadata (files touched, subject wording, diff shape) recovers the
fix strategy with high accuracy — quantifying why the authors had to read
patches rather than descriptions.
"""

from __future__ import annotations

from conftest import once

from repro.pipeline import validate_pipeline
from repro.pipeline.patchclassifier import evaluate_patch_classifier
from repro.reporting import ascii_table, format_percent


def test_bench_patch_vs_text_fix_classification(benchmark, corpus):
    def run():
        patch_eval = evaluate_patch_classifier(corpus.dataset)
        text_report = validate_pipeline(corpus.manual_sample, "fix", seed=0)
        return patch_eval, text_report

    patch_eval, text_report = once(benchmark, run)
    rows = [
        ["bug description (SVM text classifier)", format_percent(text_report.accuracy)],
        ["patch metadata (rule-based)", format_percent(patch_eval.strategy_accuracy)],
        ["patch metadata, fix *family* only", format_percent(patch_eval.category_accuracy)],
    ]
    print()
    print(ascii_table(
        ["fix-strategy signal source", "accuracy"], rows,
        title="SS II-C: where the fix signal lives",
    ))
    print()
    per_rows = [
        [strategy.value, f"{hits}/{total}", format_percent(hits / total)]
        for strategy, (hits, total) in sorted(
            patch_eval.per_strategy.items(), key=lambda kv: kv[0].value
        )
    ]
    print(ascii_table(
        ["fix strategy", "recovered", "recall"], per_rows,
        title=f"Patch-based recall per strategy (n={patch_eval.n_bugs})",
    ))
    # Descriptions do not predict fixes; patches do.
    assert text_report.accuracy < 0.65
    assert patch_eval.strategy_accuracy > 0.75
    assert patch_eval.strategy_accuracy > text_report.accuracy + 0.25
