"""SS II-B: dataset sizes and release-burst structure.

Paper: 251 (FAUCET), 186 (ONOS), 358 (CORD) critical bugs as of April 2020;
bug filing bursts around release dates (e.g. CORD in 2017-Q1).
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.corpus import CorpusGenerator
from repro.reporting import ascii_table


def test_bench_dataset_sizes(benchmark):
    corpus = once(benchmark, lambda: CorpusGenerator(seed=2020).generate())
    counts = corpus.dataset.split_counts()
    rows = [
        [name, paperdata.CRITICAL_BUG_COUNTS[name], counts[name]]
        for name in sorted(counts)
    ]
    print()
    print(ascii_table(["controller", "paper", "measured"], rows,
                      title="SS II-B: critical bugs per controller"))
    assert counts == dict(paperdata.CRITICAL_BUG_COUNTS)


def test_bench_release_bursts(benchmark, corpus):
    def burst_ratio():
        histogram = corpus.jira.quarterly_histogram(project="CORD")
        profile = corpus.profiles["CORD"]
        release_quarters = {
            f"{d.year}-Q{(d.month - 1) // 3 + 1}" for d in profile.release_dates
        }
        burst = [v for q, v in histogram.items() if q in release_quarters]
        quiet = [v for q, v in histogram.items() if q not in release_quarters]
        return (sum(burst) / len(burst)) / (sum(quiet) / len(quiet))

    ratio = once(benchmark, burst_ratio)
    print(f"\nCORD release-quarter filing rate vs quiet quarters: {ratio:.2f}x")
    assert ratio > 1.2, "release quarters should be visibly busier (SS II-B)"
