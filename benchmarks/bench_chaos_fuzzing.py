"""SS V-A takeaway: Chaos-Monkey-style fuzz testing for SDN controllers.

The paper argues reboot-class bugs persist "because testing environments
lack representative failures and equipment" and calls for applying Chaos-
Monkey-style fuzzing to SDNs.  This bench runs that fuzzer against three
builds of the simulated controller:

* **buggy** — all five named historical bugs present;
* **patched** — the historical fixes applied (the default build);
* **hardened** — patched + input-boundary validation (the paper's
  "better error-guarding logic" recommendation).

Expected shape: chaos finds the most on the buggy build; the patched build
still crashes on *new* bug classes the named fixes never covered (malformed
inputs, config type confusion); hardening the input boundary eliminates the
malformed-input crash class, leaving only configuration-triggered crashes —
the trigger class that no input filter can guard (SS VII-C's coverage gap).
"""

from __future__ import annotations

from conftest import once

from repro.chaos import ChaosMonkey
from repro.faultinjection.scenario import build_scenario
from repro.reporting import ascii_table, format_percent
from repro.taxonomy import Symptom

RUNS = 25


def _buggy():
    return build_scenario(
        mirror_broadcast=False,
        multicast_guard=False,
        gauge_cast_types=False,
        adapter_timeout=None,
    )


def _hardened():
    return build_scenario(input_validation=True)


def _crashes(report) -> int:
    return sum(
        1 for f in report.findings if f.outcome.symptom is Symptom.FAIL_STOP
    )


def test_bench_chaos_three_builds(benchmark):
    def run():
        builds = {
            "buggy": _buggy,
            "patched": build_scenario,
            "hardened": _hardened,
        }
        return {
            name: ChaosMonkey(factory, seed=1).run_campaign(runs=RUNS)
            for name, factory in builds.items()
        }

    reports = once(benchmark, run)
    rows = [
        [
            name,
            format_percent(report.finding_rate),
            _crashes(report),
            ", ".join(sorted(s.value for s in report.symptoms_found())) or "-",
        ]
        for name, report in reports.items()
    ]
    print()
    print(ascii_table(
        ["build", "finding rate", "crashes", "symptoms found"], rows,
        title=f"Chaos campaign ({RUNS} runs x 3 perturbations)",
    ))
    buggy, patched, hardened = (
        reports["buggy"], reports["patched"], reports["hardened"],
    )
    assert buggy.finding_rate >= patched.finding_rate >= hardened.finding_rate
    # The named patches do not stop chaos: new crash classes remain.
    assert _crashes(patched) > 0
    # Input-boundary validation eliminates most crashes...
    assert _crashes(hardened) < _crashes(patched)
    # ...but not configuration-triggered ones (the unguardable class).
    config_crashes = [
        f for f in hardened.findings
        if f.outcome.symptom is Symptom.FAIL_STOP
        and "config-mutation" in f.perturbations
    ]
    assert len(config_crashes) == _crashes(hardened)


def test_bench_chaos_finds_named_bugs(benchmark):
    """On the buggy build, chaos rediscovers the named bug symptoms without
    being told where they are."""
    report = once(
        benchmark,
        lambda: ChaosMonkey(_buggy, seed=2, intensity=4).run_campaign(runs=30),
    )
    symptoms = {s.value for s in report.symptoms_found()}
    print(f"\nchaos-found symptom classes on the buggy build: {sorted(symptoms)}")
    first_crash = report.first_finding(Symptom.FAIL_STOP)
    if first_crash:
        print(
            f"first crash at run {first_crash.run_index} via "
            f"{first_crash.perturbations}: {first_crash.outcome.detail[:70]}"
        )
    assert "fail_stop" in symptoms
    assert "byzantine" in symptoms
