"""SS VII-C: why combining fault-tolerance systems is non-trivial.

The paper's two composition examples, mechanized:

* SPHINX builds its flow-graph model from *all* input OpenFlow messages,
  so stacking Bouncer's input filter in front of it corrupts the model;
* SOFT analyzes switch-implementation outputs while CHIMP analyzes SDN
  application outputs — their results have no common object to fuse.
"""

from __future__ import annotations

from itertools import permutations

from conftest import once

from repro.frameworks.composition import (
    analyze_stack,
    composable,
    default_composition_profiles,
)
from repro.reporting import ascii_table


def test_bench_pairwise_stacks(benchmark):
    names = sorted(default_composition_profiles())

    def run():
        results = {}
        for upstream, downstream in permutations(names, 2):
            results[(upstream, downstream)] = analyze_stack([upstream, downstream])
        return results

    results = once(benchmark, run)
    rows = []
    for (upstream, downstream), conflicts in sorted(results.items()):
        if conflicts:
            rows.append(
                [f"{upstream} -> {downstream}", len(conflicts),
                 conflicts[0].explanation[:64]]
            )
    print()
    print(ascii_table(
        ["stack (upstream -> downstream)", "conflicts", "first conflict"],
        rows, title="SS VII-C: pairwise stacking conflicts",
    ))
    # The paper's example pair conflicts in the order it describes...
    assert results[("Bouncer", "SPHINX")]
    # ...and the conflict is order-dependent (verification before filtering
    # is sound).
    assert not results[("SPHINX", "Bouncer")]
    # Dual recovery authorities conflict both ways.
    assert results[("Ravana", "LegoSDN")] and results[("LegoSDN", "Ravana")]


def test_bench_result_fusion(benchmark):
    def run():
        return {
            ("SOFT", "CHIMP"): composable("SOFT", "CHIMP"),
            ("SPHINX", "Bouncer"): composable("SPHINX", "Bouncer"),
            ("SOFT", "SPHINX"): composable("SOFT", "SPHINX"),
        }

    results = once(benchmark, run)
    rows = [[f"{a} + {b}", "yes" if ok else "NO"] for (a, b), ok in results.items()]
    print()
    print(ascii_table(
        ["result fusion", "meaningful?"], rows,
        title="SS VII-C: can two systems' findings be fused at all?",
    ))
    assert not results[("SOFT", "CHIMP")], "different input domains cannot fuse"
    assert results[("SPHINX", "Bouncer")]
