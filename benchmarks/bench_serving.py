"""Overload A/B evidence for the serving daemon (extension).

The paper's overload bug classes — unbounded queues, no backpressure,
head-of-line blocking behind slow peers, work completed after its
deadline — are inverted into explicit mechanisms in
:mod:`repro.serving`.  This bench is the acceptance gate for that claim:

* under the same seeded bursty heavy-tail trace (with slow-client and
  poison faults injected), the hardened daemon's goodput is >= 1.5x the
  bare daemon's (it is far higher in practice, because the bare arm
  spends the burst windows computing answers nobody can use anymore);
* the hardened arm's p99 answered latency stays inside the largest
  configured deadline budget, while the bare arm's p99 blows past it;
* every deliberately dropped request (shed or expired) carries a priced
  resilience-ledger entry — nothing vanishes silently;
* the whole replay is bit-for-bit deterministic: two same-seed runs
  produce identical response-stream fingerprints.

Results land in ``benchmarks/BENCH_trajectory.json`` so future PRs can
see whether the goodput/p99 trajectory regressed.
"""

from __future__ import annotations

import json
import pathlib

from conftest import once

from repro.observability import TrajectoryStore
from repro.serving import (
    DEFAULT_BUDGETS,
    StubBackend,
    TrafficConfig,
    TriageBackend,
    run_ab,
    run_arm,
)

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"
TRAJECTORY = pathlib.Path(__file__).parent / "BENCH_trajectory.json"

#: The gate trace: 60 simulated seconds, three flash-crowd bursts,
#: slow clients and poison payloads injected.
GATE_TRAFFIC = TrafficConfig(
    seed=2020,
    duration=60.0,
    base_rate=6.0,
    burst_rate=40.0,
    bursts=3,
    burst_length=4.0,
    slow_client_rate=0.03,
    poison_rate=0.02,
)


def test_bench_overload_ab_gate(benchmark, tmp_path):
    """Hardened >= 1.5x bare goodput; p99 bounded; drops all priced."""

    def run():
        return run_ab(
            lambda: TriageBackend(seed=2020, lint_workspace=tmp_path / "lint"),
            traffic=GATE_TRAFFIC,
        )

    report = once(benchmark, run)
    hardened, bare = report.hardened, report.bare
    print()
    print(f"trace: {report.trace_requests} requests over "
          f"{report.duration:.0f}s simulated")
    for arm in (hardened, bare):
        print(f"  {arm.name:9s} goodput {arm.goodput:7.3f}/s  "
              f"p50 {arm.p50:7.3f}s  p99 {arm.p99:7.3f}s  "
              f"answered {arm.answered}  in-deadline {arm.deadline_met}")
    print(f"  ratio {report.goodput_ratio:.2f}x")

    # Gate 1: goodput ratio.
    assert report.goodput_ratio >= 1.5, (
        f"hardened goodput only {report.goodput_ratio:.2f}x bare"
    )
    # Gate 2: hardened p99 stays inside the largest deadline budget; the
    # bare arm demonstrably does not (that is the collapse being shown).
    max_budget = max(DEFAULT_BUDGETS.values())
    assert hardened.p99 <= max_budget, (
        f"hardened p99 {hardened.p99:.2f}s exceeds max budget {max_budget}s"
    )
    assert bare.p99 > max_budget, (
        "bare arm unexpectedly met deadlines; the overload trace is too soft"
    )
    # Gate 3: accounting — no silent drops.
    assert hardened.unaccounted_drops == 0
    # Gate 4: protections actually fired under this trace.
    assert hardened.stats["shed"] > 0
    assert hardened.stats["served_heuristic"] + hardened.stats["served_stale"] > 0
    assert hardened.stats["slow_clients_aborted"] > 0

    _record_trajectory(report)
    out = ARTIFACTS / "serving_ab.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    # Full observability export (daemon metrics + ledger bridge) per arm —
    # the artifact CI uploads alongside the summary.
    metrics_out = ARTIFACTS / "serving_metrics.jsonl"
    metrics_out.write_text(
        hardened.metrics_jsonl + bare.metrics_jsonl, encoding="utf-8"
    )


def test_bench_replay_determinism(benchmark):
    """Two same-seed runs produce identical response fingerprints."""

    def run():
        first, _ = run_arm(
            name="run1", hardened=True, backend=StubBackend(),
            traffic=GATE_TRAFFIC,
        )
        second, _ = run_arm(
            name="run2", hardened=True, backend=StubBackend(),
            traffic=GATE_TRAFFIC,
        )
        return first, second

    first, second = once(benchmark, run)
    print()
    print(f"fingerprint: {first.fingerprint[:16]}... x2")
    assert first.fingerprint == second.fingerprint
    assert first.stats == second.stats


def _record_trajectory(report) -> None:
    """Refresh this bench's entry in the committed trajectory file.

    One entry per bench id (reruns replace in place; history stays in
    git); CI gates the refreshed file against the committed baseline with
    ``repro trajectory --check``.
    """
    entry = {
        "bench": "serving_overload_ab",
        "trace_requests": report.trace_requests,
        "duration": report.duration,
        "goodput_hardened": round(report.hardened.goodput, 6),
        "goodput_bare": round(report.bare.goodput, 6),
        "goodput_ratio": round(report.goodput_ratio, 6),
        "p99_hardened": round(report.hardened.p99, 6),
        "p99_bare": round(report.bare.p99, 6),
        "shed": report.hardened.stats["shed"],
        "expired": report.hardened.stats["expired"],
        "degraded": (report.hardened.stats["served_stale"]
                     + report.hardened.stats["served_heuristic"]),
    }
    TrajectoryStore(TRAJECTORY).record(entry)
