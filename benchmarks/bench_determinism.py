"""SS III (RQ1): bug determinism per controller.

Paper: FAUCET 96%, ONOS 94%, CORD 94% deterministic — record-and-replay
recovery has limited applicability.
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.analysis import determinism_rates
from repro.reporting import ascii_table, format_percent


def test_bench_determinism(benchmark, dataset):
    rates = once(benchmark, determinism_rates, dataset)
    rows = [
        [
            name,
            format_percent(paperdata.DETERMINISM_RATE[name]),
            format_percent(rate),
        ]
        for name, rate in sorted(rates.items())
    ]
    print()
    print(ascii_table(["controller", "paper", "measured"], rows,
                      title="SS III: share of deterministic bugs"))
    for name, rate in rates.items():
        assert abs(rate - paperdata.DETERMINISM_RATE[name]) < 0.04
    assert min(rates.values()) > 0.9, "determinism must dominate everywhere"
