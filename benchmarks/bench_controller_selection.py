"""SS VII-A (RQ4): controller-selection guideline.

Paper: FAUCET is least stable (52.5% missing-logic bugs); CORD suffers 30%
load bugs vs ONOS's 16%; ONOS is the recommended general-purpose controller;
FAUCET fits only the network-slicing niche.
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.guidance import UseCase, rank_controllers, score_controller
from repro.reporting import ascii_table, format_percent


def test_bench_stability_signals(benchmark, dataset):
    def run():
        return {c: score_controller(dataset, c) for c in dataset.controllers}

    scores = once(benchmark, run)
    rows = [
        [
            name,
            format_percent(s.missing_logic_share),
            format_percent(s.load_share),
            format_percent(s.fail_stop_share),
            f"{s.composite:.3f}",
        ]
        for name, s in sorted(scores.items())
    ]
    print()
    print(ascii_table(
        ["controller", "missing logic", "load", "fail-stop", "instability"],
        rows, title="SS VII-A: stability signals (lower is better)",
    ))
    assert abs(
        scores["FAUCET"].missing_logic_share - paperdata.FAUCET_MISSING_LOGIC_SHARE
    ) < 0.05
    assert abs(scores["CORD"].load_share - 0.30) < 0.05
    assert abs(scores["ONOS"].load_share - 0.16) < 0.05


def test_bench_recommendation(benchmark, dataset):
    ranking = once(benchmark, rank_controllers, dataset)
    names = [s.controller for s in ranking]
    print(f"\ngeneral-purpose recommendation: {' > '.join(names)} "
          f"(paper: {' > '.join(paperdata.CONTROLLER_RECOMMENDATION)})")
    assert names[0] == "ONOS"

    slicing = [
        s.controller
        for s in rank_controllers(dataset, use_case=UseCase.NETWORK_SLICING)
    ]
    print(f"network-slicing recommendation: {' > '.join(slicing)}")
    assert slicing[0] == "FAUCET", "FAUCET wins only in its niche"
