"""Table III-b / SS V-A: ONOS dependency vulnerabilities across releases.

Paper: scanning ONOS with dependency-check against NVD shows vulnerability
exposure increasing over time as dependencies accumulate; the outdated OVSDB
library (CVE-2018-1000615) enabled a DoS.
"""

from __future__ import annotations

from conftest import once

from repro.paperdata import ONOS_RELEASES
from repro.reporting import ascii_table
from repro.vuln import DependencyScanner, onos_release_manifests


def test_bench_vulnerability_growth(benchmark):
    scanner = DependencyScanner()
    results = once(benchmark, scanner.scan_releases, onos_release_manifests())
    rows = [
        [
            release,
            len(onos_release_manifests()[release]),
            len(results[release]),
            ", ".join(sorted({f.package for f in results[release]})[:4]),
        ]
        for release in ONOS_RELEASES
    ]
    print()
    print(ascii_table(
        ["release", "deps", "vulns", "affected (sample)"], rows,
        title="Table III-b: ONOS vulnerability growth",
    ))
    counts = [len(results[r]) for r in ONOS_RELEASES]
    assert counts[-1] > counts[0], "exposure must grow over the release series"
    assert all(b >= a for a, b in zip(counts[:-2], counts[1:-1]))


def test_bench_ovsdb_cve(benchmark):
    scanner = DependencyScanner()
    results = once(benchmark, scanner.scan_releases, onos_release_manifests())
    hit_releases = [
        release
        for release in ONOS_RELEASES
        if any(f.cve.cve_id == "CVE-2018-1000615" for f in results[release])
    ]
    print(f"\nCVE-2018-1000615 (OVSDB DoS) present in: {', '.join(hit_releases)}")
    assert hit_releases == list(ONOS_RELEASES)
