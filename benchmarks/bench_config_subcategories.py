"""Table III: sub-categories of configuration bugs per controller.

Paper: Controller / Data-plane / Third-party = 52.9/11.7/35.4 (FAUCET),
60/15/25 (ONOS), 64.2/14.2/21.6 (CORD).
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.analysis import config_subcategory_distribution
from repro.reporting import ascii_table, format_percent
from repro.taxonomy import ConfigSubcategory


def test_bench_config_subcategories(benchmark, dataset):
    result = once(benchmark, config_subcategory_distribution, dataset)
    rows = []
    for controller in sorted(result):
        paper = paperdata.CONFIG_SUBCATEGORY_SHARE[controller]
        for sub in ConfigSubcategory:
            rows.append(
                [
                    controller,
                    sub.value,
                    format_percent(paper[sub.value]),
                    format_percent(result[controller][sub]),
                ]
            )
    print()
    print(ascii_table(["controller", "sub-category", "paper", "measured"], rows,
                      title="Table III: configuration sub-categories"))
    for controller, dist in result.items():
        # Controller-config bugs dominate in every framework (Table III).
        assert dist[ConfigSubcategory.CONTROLLER] == max(dist.values())
        # Data-plane configuration is the smallest slice.
        assert dist[ConfigSubcategory.DATA_PLANE] == min(dist.values())
        for sub, share in dist.items():
            expected = paperdata.CONFIG_SUBCATEGORY_SHARE[controller][sub.value]
            assert abs(share - expected) < 0.1
