"""SS VII-B / Fig 14: topic uniqueness of key bug categories.

Paper: deterministic, byzantine, add-synchronization, and third-party-call
bugs carry the most unique topics/keywords — exactly the categories that
showed strong correlations, making keyword-driven diagnosis possible.
"""

from __future__ import annotations

from conftest import once

from repro.analysis.topics import uniqueness_ranking
from repro.reporting import ascii_table, format_percent

#: Fig 14's categories: (dimension, tag) plus two control categories that
#: the paper does NOT list among the most unique.
FIG14_PAIRS = [
    ("bug_type", "deterministic"),
    ("symptom", "byzantine"),
    ("fix", "add_synchronization"),
    ("external_kind", "third_party_calls"),
]
CONTROL_PAIRS = [
    ("fix", "workaround"),
    ("fix", "add_logic"),
]


def test_bench_fig14_uniqueness(benchmark, corpus):
    external = corpus.dataset.filter(
        lambda b: b.label.external_kind is not None
    )

    def run():
        main = uniqueness_ranking(
            corpus.manual_sample,
            [p for p in FIG14_PAIRS if p[0] != "external_kind"],
        )
        ext = uniqueness_ranking(external, [("external_kind", "third_party_calls")])
        controls = uniqueness_ranking(corpus.manual_sample, CONTROL_PAIRS)
        return main + ext, controls

    fig14, controls = once(benchmark, run)
    rows = [
        [r.dimension, r.tag, format_percent(r.unique_share),
         ", ".join(r.top_terms[:5])]
        for r in fig14
    ] + [
        [r.dimension, r.tag + " (control)", format_percent(r.unique_share),
         ", ".join(r.top_terms[:5])]
        for r in controls
    ]
    print()
    print(ascii_table(
        ["dimension", "category", "unique topics", "top terms"], rows,
        title="Fig 14: topic uniqueness per category",
    ))
    # The Fig 14 categories carry distinctly unique vocabulary...
    for result in fig14:
        assert result.unique_share > 0.15, (result.dimension, result.tag)
    # ...while a *well-populated* fix-strategy control (add_logic, the most
    # common fix) is less unique than the best Fig 14 category.  Small-N
    # controls like 'workaround' are printed but not asserted: with few
    # documents, NMF topics become idiosyncratic and uniqueness is noisy.
    best = max(r.unique_share for r in fig14)
    add_logic = next(c for c in controls if c.tag == "add_logic")
    assert add_logic.unique_share < best
