"""SS VII-B / Fig 13: predicted trigger distribution over the whole dataset.

Paper: the NLP model trained on the manually labeled sample, applied to the
~5x larger critical-bug population, shows configuration as the dominant
trigger and OpenFlow (network) events as a small contributor — so operators
should examine configuration before attempting network-event replay.
"""

from __future__ import annotations

from conftest import once

from repro.analysis import fine_trigger_distribution
from repro.pipeline import AutoClassifier
from repro.reporting import ascii_table, format_percent, render_distribution


def test_bench_fig13_whole_dataset_prediction(benchmark, corpus):
    def run():
        model = AutoClassifier(seed=0)
        model.fit(
            corpus.manual_sample.texts(), corpus.manual_sample.labels("trigger")
        )
        predictions = model.predict(corpus.dataset.texts())
        return {
            tag: predictions.count(tag) / len(predictions)
            for tag in sorted(set(predictions))
        }

    predicted = once(benchmark, run)
    truth = {
        t.value if hasattr(t, "value") else t: v
        for t, v in fine_trigger_distribution(corpus.dataset).items()
    }
    # Collapse the fine external split for comparison with predictions.
    truth_coarse = {
        "configuration": truth["configuration"],
        "external_calls": truth["system_calls"]
        + truth["third_party_calls"]
        + truth["application_calls"],
        "network_events": truth["network_events"],
        "hardware_reboots": truth["hardware_reboots"],
    }
    rows = [
        [tag, format_percent(truth_coarse.get(tag)), format_percent(share)]
        for tag, share in predicted.items()
    ]
    print()
    print(ascii_table(
        ["trigger", "ground truth", "NLP predicted"], rows,
        title="Fig 13: trigger distribution over the whole dataset",
    ))
    assert max(predicted, key=predicted.get) == "configuration"
    assert predicted.get("network_events", 0.0) < predicted["configuration"]
    for tag, share in predicted.items():
        assert abs(share - truth_coarse[tag]) < 0.08, tag


def test_bench_fig13_fine_split(benchmark, dataset):
    dist = once(benchmark, fine_trigger_distribution, dataset)
    print()
    print(render_distribution(dist, title="Fig 13 (fine): trigger categories"))
    assert dist["configuration"] == max(dist.values())
    assert dist["third_party_calls"] > dist["system_calls"]
    assert dist["third_party_calls"] > dist["application_calls"]
