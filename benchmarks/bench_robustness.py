"""SS VIII ablations: annotator noise, sample size, cross-controller transfer.

The paper's threats-to-validity section raises three empirical questions it
does not quantify; these benches quantify them on the reproduction corpus.
"""

from __future__ import annotations

from conftest import once

from repro.pipeline.robustness import (
    accuracy_under_label_noise,
    accuracy_vs_sample_size,
    cross_controller_transfer,
)
from repro.reporting import ascii_table, format_percent


def test_bench_label_noise(benchmark, manual_sample):
    """Accuracy degrades gracefully under annotator noise — the manual
    analysis tolerates imperfect reports."""
    rates = (0.0, 0.1, 0.2, 0.35)

    def run():
        return {
            rate: accuracy_under_label_noise(manual_sample, "symptom", rate, seed=0)
            for rate in rates
        }

    results = once(benchmark, run)
    rows = [[format_percent(rate), format_percent(acc)] for rate, acc in results.items()]
    print()
    print(ascii_table(
        ["training-label noise", "symptom accuracy"], rows,
        title="SS VIII ablation: annotator-noise robustness",
    ))
    assert results[0.0] >= 0.8
    # Graceful degradation: 10% noise costs little; heavy noise costs more.
    assert results[0.1] >= results[0.0] - 0.15
    assert results[0.35] <= results[0.0] + 1e-9


def test_bench_sample_size(benchmark, dataset):
    """Was 50 bugs/controller enough?  Accuracy saturates around there."""
    sizes = [15, 30, 50, 80]

    def run():
        return accuracy_vs_sample_size(dataset, "symptom", sizes, seed=0)

    results = once(benchmark, run)
    rows = [[size, format_percent(acc)] for size, acc in results.items()]
    print()
    print(ascii_table(
        ["bugs per controller", "symptom accuracy"], rows,
        title="SS VIII ablation: manual-sample size sensitivity",
    ))
    assert results[50] > results[15] - 0.05  # no collapse at the paper's size
    assert results[80] - results[50] < 0.10  # diminishing returns past 50


def test_bench_cross_controller_transfer(benchmark, manual_sample):
    """Generalizability: a model trained on two controllers transfers to
    the third despite never seeing its component vocabulary."""
    results = once(
        benchmark, cross_controller_transfer, manual_sample, "symptom", seed=0
    )
    rows = [
        [r.held_out, r.n_train, r.n_test, format_percent(r.accuracy)]
        for r in results
    ]
    print()
    print(ascii_table(
        ["held-out controller", "train bugs", "test bugs", "accuracy"], rows,
        title="SS VIII ablation: leave-one-controller-out transfer",
    ))
    for result in results:
        assert result.accuracy > 0.6, result.held_out
