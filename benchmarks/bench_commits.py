"""Fig 10: ONOS commits per release.

Paper: a prototyping burst through 1.14, then a steady decline — while the
smell scores of Fig 8 stay constant (constant technical debt per commit).
"""

from __future__ import annotations

from conftest import once

from repro.gitmodel import onos_commits_per_release
from repro.paperdata import ONOS_RELEASES
from repro.reporting import ascii_table


def test_bench_commits_per_release(benchmark):
    counts = once(benchmark, onos_commits_per_release)
    rows = [[release, counts[release]] for release in ONOS_RELEASES]
    print()
    print(ascii_table(["release", "commits"], rows,
                      title="Fig 10: ONOS commits per release"))
    values = list(counts.values())
    peak_index = max(range(len(values)), key=values.__getitem__)
    assert ONOS_RELEASES[peak_index] == "1.14", "burst peaks at 1.14"
    assert values[peak_index:] == sorted(values[peak_index:], reverse=True)
