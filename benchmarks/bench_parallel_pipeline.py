"""Parallel + cached pipeline evidence: serial vs jobs=4 vs warm cache.

Two experiments.  First, the per-class one-vs-rest SVM fan-out — the
pipeline's hottest loop — timed serial vs 4-way, where a ≥2× speedup is
asserted when the host actually has ≥4 cores (a process pool cannot beat
the serial loop on a 1-core container, and that is a property of the
host, not the executor).  Second, the full §IV NLP pipeline (corpus →
TF-IDF → NMF → per-dimension SVM) run serial, 4-way, and against a warm
:class:`ArtifactCache`, where the warm replay must win ≥10× and — the
actual contract — accuracies, topics, and topic errors must match the
serial run bit for bit in every mode.
"""

from __future__ import annotations

import os
import shutil
import time

import numpy as np
from conftest import once

from repro.ml import LinearSVM
from repro.parallel import ArtifactCache
from repro.pipeline import run_pipeline
from repro.reporting import ascii_table

_CACHE_ROOT = "benchmarks/artifacts/cache"
_HAVE_CORES = (os.cpu_count() or 1) >= 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _ovr_blobs(seed=2020, n_classes=8, n_per_class=150, n_features=60):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(n_classes, n_features))
    X = np.vstack(
        [center + rng.normal(size=(n_per_class, n_features)) for center in centers]
    )
    y = [f"class-{c}" for c in range(n_classes) for _ in range(n_per_class)]
    return X, y


def test_bench_svm_ovr_fan_out(benchmark):
    X, y = _ovr_blobs()
    serial_model, serial_s = _timed(lambda: LinearSVM(seed=0, n_jobs=1).fit(X, y))
    parallel_model, parallel_s = once(
        benchmark, lambda: _timed(lambda: LinearSVM(seed=0, n_jobs=4).fit(X, y))
    )
    speedup = serial_s / parallel_s
    print(f"\nSVM OvR ({len(set(y))} classes, {X.shape[0]}x{X.shape[1]}): "
          f"serial {serial_s:.3f}s, jobs=4 {parallel_s:.3f}s "
          f"({speedup:.1f}x, {os.cpu_count()} cores)")

    assert np.array_equal(serial_model.weights_, parallel_model.weights_)
    assert np.array_equal(serial_model.bias_, parallel_model.bias_)
    if _HAVE_CORES:
        assert speedup >= 2.0


def test_bench_parallel_cached_pipeline(benchmark):
    shutil.rmtree(_CACHE_ROOT, ignore_errors=True)
    cache = ArtifactCache(_CACHE_ROOT)

    serial, serial_s = _timed(lambda: run_pipeline(seed=2020, jobs=1))
    parallel, parallel_s = _timed(lambda: run_pipeline(seed=2020, jobs=4))
    cold, cold_s = _timed(lambda: run_pipeline(seed=2020, jobs=4, cache=cache))
    warm, warm_s = once(
        benchmark,
        lambda: _timed(lambda: run_pipeline(seed=2020, jobs=4, cache=cache)),
    )

    rows = [
        ["serial (jobs=1)", f"{serial_s:.3f}s", "1.0x", "-"],
        ["parallel (jobs=4)", f"{parallel_s:.3f}s",
         f"{serial_s / parallel_s:.1f}x", "-"],
        ["cold cache (jobs=4)", f"{cold_s:.3f}s",
         f"{serial_s / cold_s:.1f}x", "0/%d" % len(cold.stages)],
        ["warm cache (jobs=4)", f"{warm_s:.3f}s",
         f"{serial_s / warm_s:.1f}x",
         "%d/%d" % (sum(s.cache_hit for s in warm.stages), len(warm.stages))],
    ]
    print()
    print(ascii_table(
        ["mode", "wall", "speedup", "cache hits"],
        rows, title="NLP pipeline: serial vs parallel vs cached",
    ))
    accuracies = serial.accuracies()
    print("accuracies: " + ", ".join(
        f"{dim}={acc:.1%}" for dim, acc in accuracies.items()
    ))
    print(f"host cores: {os.cpu_count()}; cache {cache.stats()}")

    # Equivalence is unconditional: worker count and cache state are
    # performance knobs, never semantics.
    for run in (parallel, cold, warm):
        assert run.accuracies() == accuracies
        assert run.topics == serial.topics
        assert run.topic_errors == serial.topic_errors

    # A warm cache replaces every stage with a pickle load.
    assert all(stage.cache_hit for stage in warm.stages)
    assert serial_s / warm_s >= 10.0
