"""SS VII-B / Fig 12: correlation between bug categories.

Paper: most bug-category pairs are only fairly correlated (93.72%), with a
strongly-correlated long tail (6.28%); memory bugs correlate with
determinism; third-party triggers correlate with the add-compatibility fix.
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.analysis import correlation_cdf, pairwise_correlations
from repro.analysis.correlation import (
    strongly_correlated_pairs,
    strongly_correlated_share,
)
from repro.reporting import format_percent
from repro.reporting.tables import render_cdf_series


def test_bench_correlation_cdf(benchmark, dataset):
    cdf = once(benchmark, correlation_cdf, dataset)
    print()
    print(render_cdf_series(cdf.series(points=30),
                            title="Fig 12: CDF of |phi| over category pairs"))
    share = strongly_correlated_share(dataset, threshold=0.3)
    print(
        f"strongly correlated tail: paper "
        f"{format_percent(paperdata.STRONGLY_CORRELATED_SHARE)} vs measured "
        f"{format_percent(share)} (|phi| >= 0.3)"
    )
    # Shape: a heavy body of weak correlations with a small strong tail.
    assert cdf.cdf(0.3) > 0.85
    assert 0.0 < share < 0.15


def test_bench_known_strong_pairs(benchmark, dataset):
    strong = once(benchmark, strongly_correlated_pairs, dataset, threshold=0.25)
    print()
    for corr in strong[:8]:
        print("  " + corr.describe())
    pairs = {(c.tag_a, c.tag_b) for c in strong} | {
        (c.tag_b, c.tag_a) for c in strong
    }
    # The paper's called-out correlations surface in the tail.
    assert ("concurrency", "add_synchronization") in pairs
    # Determinism <-> concurrency association is real but its magnitude is
    # sample-sensitive (few concurrency bugs): assert the positive
    # association directly rather than tail membership.
    nondet_conc = next(
        c for c in pairwise_correlations(dataset)
        if {c.tag_a, c.tag_b} == {"non_deterministic", "concurrency"}
    )
    assert nondet_conc.phi > 0.1
