"""Resilience runtime evidence: the A/B fault campaign (§VII extension).

The paper's §VII verdict is that restart/replay-style recovery only helps
against non-deterministic bugs.  This bench runs the whole fault catalog
twice — bare, then under the resilience runtime (guarded TSDB, circuit
breaker, supervised restarts) — and checks that verdict quantitatively:
the hardened arm absorbs the non-deterministic transients while every
deterministic fault survives as a residual symptom.
"""

from __future__ import annotations

from conftest import once

from repro.chaos import ChaosMonkey
from repro.faultinjection import FaultCampaign
from repro.reporting import ascii_table
from repro.resilience import ResilienceEvent
from repro.taxonomy import BugType


def test_bench_ab_campaign(benchmark):
    report = once(
        benchmark, lambda: FaultCampaign(seeds_per_fault=4).run_ab()
    )
    rows = [
        [
            r.spec.fault_id,
            r.spec.bug_type.value,
            f"{r.baseline_symptom_rate:.2f}",
            f"{r.hardened_symptom_rate:.2f}",
            str(r.restarts),
            f"{r.recovery_latency:.1f}s",
            ", ".join(sorted(s.value for s in r.residual_symptoms)) or "-",
        ]
        for r in report.results
    ]
    print()
    print(ascii_table(
        ["fault", "determinism", "bare", "hardened", "restarts",
         "recovery", "residual"],
        rows, title="A/B fault campaign: bare vs resilience runtime",
    ))
    print(f"symptom rate {report.baseline_symptom_rate:.1%} -> "
          f"{report.hardened_symptom_rate:.1%} "
          f"(mean recovery latency {report.mean_recovery_latency:.1f}s, "
          f"{len(report.ledger)} ledger events)")

    # Hardening must measurably reduce the per-run symptom rate...
    assert report.symptom_reduction > 0
    # ...with every improvement coming from non-deterministic faults...
    for result in report.improved_results():
        assert result.spec.bug_type is BugType.NON_DETERMINISTIC, (
            result.spec.fault_id
        )
    # ...while deterministic faults remain fully symptomatic (§VII).
    for result in report.results:
        if result.spec.bug_type is BugType.DETERMINISTIC:
            assert result.hardened_symptom_rate == result.baseline_symptom_rate

    # The ledger priced every recovery action taken.
    assert report.ledger.count(ResilienceEvent.RESTART) > 0
    assert report.ledger.count(ResilienceEvent.GIVE_UP) > 0


def test_bench_residual_breakdown(benchmark):
    report = once(
        benchmark, lambda: FaultCampaign(seeds_per_fault=3).run_ab()
    )
    breakdown = report.residual_by_root_cause()
    rows = [
        [cause.value, str(count)]
        for cause, count in sorted(breakdown.items(), key=lambda kv: -kv[1])
    ]
    print()
    print(ascii_table(
        ["root cause", "residual symptomatic runs"], rows,
        title="What survives retry + breaker + supervised restart",
    ))
    # The residual mass is deterministic root causes the paper says need
    # input-level fixes: missing logic / misconfiguration dominate.
    assert breakdown, "hardening should not absorb every fault"
    top_cause = max(breakdown, key=lambda cause: breakdown[cause])
    assert top_cause.value == "missing_logic"


def test_bench_hardened_chaos(benchmark):
    def run():
        plain = ChaosMonkey(seed=7).run_campaign(runs=15)
        hardened = ChaosMonkey(seed=7, hardened=True).run_campaign(runs=15)
        return plain, hardened

    plain, hardened = once(benchmark, run)
    print()
    print(f"chaos findings: plain {len(plain.findings)}/{plain.runs}, "
          f"hardened {len(hardened.findings)}/{hardened.runs}")
    print(f"resilience ledger: {hardened.ledger.summary()}")
    # The same perturbation schedule must not get worse under hardening.
    assert len(hardened.findings) <= len(plain.findings)
    assert hardened.ledger is not None and plain.ledger is None
