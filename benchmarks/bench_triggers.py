"""SS V-A (RQ3): bug triggers and the fix structure around them.

Paper: configuration 38.8%, external calls 33%, network events 19.8%,
hardware reboots 8.4%; only 25% of configuration bugs are fixed via
configuration change; 41.4% of external-call fixes add compatibility.
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.analysis import (
    config_fixed_by_config_share,
    external_compatibility_fix_share,
    trigger_distribution,
)
from repro.reporting import ascii_table, format_percent
from repro.taxonomy import Trigger


def test_bench_trigger_distribution(benchmark, dataset):
    dist = once(benchmark, trigger_distribution, dataset)
    rows = [
        [
            trigger.value,
            format_percent(paperdata.TRIGGER_SHARE[trigger.value]),
            format_percent(dist[trigger]),
        ]
        for trigger in Trigger
    ]
    print()
    print(ascii_table(["trigger", "paper", "measured"], rows,
                      title="SS V-A: trigger distribution"))
    ordering = sorted(dist, key=dist.get, reverse=True)
    assert ordering == [
        Trigger.CONFIGURATION,
        Trigger.EXTERNAL_CALLS,
        Trigger.NETWORK_EVENTS,
        Trigger.HARDWARE_REBOOTS,
    ]
    for trigger in Trigger:
        assert abs(dist[trigger] - paperdata.TRIGGER_SHARE[trigger.value]) < 0.04


def test_bench_config_fix_share(benchmark, dataset):
    share = once(benchmark, config_fixed_by_config_share, dataset)
    print(
        f"\nconfig bugs fixed by config change: paper "
        f"{format_percent(paperdata.CONFIG_BUGS_FIXED_BY_CONFIG)} vs measured "
        f"{format_percent(share)}"
    )
    assert abs(share - paperdata.CONFIG_BUGS_FIXED_BY_CONFIG) < 0.06
    assert share < 0.5, "most config bugs are NOT fixed in configuration"


def test_bench_external_compatibility_share(benchmark, dataset):
    share = once(benchmark, external_compatibility_fix_share, dataset)
    print(
        f"\nexternal-call bugs fixed by add-compatibility: paper "
        f"{format_percent(paperdata.EXTERNAL_CALL_COMPATIBILITY_FIX)} vs "
        f"measured {format_percent(share)}"
    )
    assert abs(share - paperdata.EXTERNAL_CALL_COMPATIBILITY_FIX) < 0.06
