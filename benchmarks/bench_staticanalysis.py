"""sdnlint self-scan: the paper's taxonomy as enforceable checks.

The static analyzer turns Table I root causes into AST detectors and runs
them over this repo's own source.  The bench reports scan throughput plus
the finding census, and extracts a CodeModel so the Fig-8 smell detectors
(SS VI-A) run over real Python instead of only the synthetic ONOS models.
"""

from __future__ import annotations

from pathlib import Path

from conftest import once

import repro
from repro.reporting import ascii_table
from repro.smells import SmellKind, analyze
from repro.staticanalysis import Severity, extract_code_model, run_lint

PACKAGE_ROOT = Path(repro.__file__).parent


def test_bench_self_scan(benchmark):
    report = once(benchmark, run_lint, [PACKAGE_ROOT], root=PACKAGE_ROOT.parents[1])
    rows = [[det, str(n)] for det, n in report.counts_by_detector().items()]
    print()
    print(ascii_table(
        ["detector", "findings"], rows or [["-", "0"]],
        title=f"sdnlint self-scan: {report.modules_scanned} modules",
    ))
    by_cause = report.counts_by_root_cause()
    print("by Table-I root cause: "
          + (", ".join(f"{c}={n}" for c, n in by_cause.items()) or "none"))
    assert report.modules_scanned > 100
    errors = [f for f in report.active if f.severity >= Severity.ERROR]
    assert not errors, [f.location for f in errors]


def test_bench_extract_and_smell(benchmark):
    def run():
        model = extract_code_model(PACKAGE_ROOT, name="repro")
        return model, analyze(model)

    model, report = once(benchmark, run)
    counts = report.counts()
    rows = [[kind.value, str(counts[kind])] for kind in SmellKind]
    print()
    print(ascii_table(
        ["smell", "count"], rows,
        title=(f"Fig-8 smells over src/repro: {len(model.classes)} classes, "
               f"{len(model.packages)} packages"),
    ))
    assert len(model.classes) > 200
    assert report.instances, "smells must be non-empty over src/repro"
    assert report.count(SmellKind.GOD_COMPONENT) >= 1
