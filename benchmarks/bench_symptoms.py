"""SS IV / Fig 2 (RQ2): operational impact of bugs.

Paper marginals: byzantine 61.33% (gray 52.17 / stall 20.65 / incorrect
27.18 within byzantine), fail-stop 20%, error message 14.7%, performance 4%.
Fig 2: FAUCET fail-stops stem from human/ecosystem causes, ONOS/CORD from
controller logic; performance bugs: FAUCET<-ecosystem, ONOS<-concurrency,
CORD<-memory.
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.analysis import (
    byzantine_mode_distribution,
    root_cause_by_symptom,
    symptom_distribution,
)
from repro.analysis.symptoms import controller_logic_share_of_symptom
from repro.reporting import ascii_table, format_percent
from repro.taxonomy import RootCause, Symptom


def test_bench_symptom_marginals(benchmark, dataset):
    dist = once(benchmark, symptom_distribution, dataset)
    rows = [
        [
            symptom.value,
            format_percent(paperdata.SYMPTOM_SHARE[symptom.value]),
            format_percent(dist[symptom]),
        ]
        for symptom in Symptom
    ]
    print()
    print(ascii_table(["symptom", "paper", "measured"], rows,
                      title="SS IV: symptom distribution"))
    assert dist[Symptom.BYZANTINE] == max(dist.values())
    assert abs(dist[Symptom.BYZANTINE] - 0.6133) < 0.05
    assert abs(dist[Symptom.FAIL_STOP] - 0.20) < 0.05
    assert abs(dist[Symptom.ERROR_MESSAGE] - 0.147) < 0.05
    assert abs(dist[Symptom.PERFORMANCE] - 0.04) < 0.03


def test_bench_byzantine_modes(benchmark, dataset):
    modes = once(benchmark, byzantine_mode_distribution, dataset)
    rows = [
        [
            mode.value,
            format_percent(paperdata.BYZANTINE_MODE_SHARE[mode.value]),
            format_percent(share),
        ]
        for mode, share in modes.items()
    ]
    print()
    print(ascii_table(["byzantine mode", "paper", "measured"], rows,
                      title="SS IV: modes within the byzantine class"))
    ordering = sorted(modes, key=modes.get, reverse=True)
    assert [m.value for m in ordering] == [
        "gray_failure", "incorrect_behavior", "stall",
    ]


def test_bench_fig2_failstop_root_causes(benchmark, dataset):
    result = once(benchmark, root_cause_by_symptom, dataset, Symptom.FAIL_STOP)
    print()
    for controller, dist in sorted(result.items()):
        top = ", ".join(
            f"{cause.value}={format_percent(share)}"
            for cause, share in list(dist.items())[:3]
        )
        print(f"  {controller:8s} fail-stop root causes: {top}")
    logic_share = controller_logic_share_of_symptom(dataset, Symptom.FAIL_STOP)
    # Fig 2 contrast: controller-logic causes dominate ONOS/CORD crashes,
    # human/ecosystem causes dominate FAUCET crashes.
    assert logic_share["ONOS"] > 0.5 > logic_share["FAUCET"] - 0.2
    assert logic_share["ONOS"] > logic_share["FAUCET"]
    assert logic_share["CORD"] > logic_share["FAUCET"]


def test_bench_fig2_performance_root_causes(benchmark, dataset):
    result = once(benchmark, root_cause_by_symptom, dataset, Symptom.PERFORMANCE)
    print()
    for controller, dist in sorted(result.items()):
        top = ", ".join(
            f"{cause.value}={format_percent(share)}"
            for cause, share in list(dist.items())[:3]
        )
        print(f"  {controller:8s} performance root causes: {top}")
    faucet_eco = sum(
        share for cause, share in result.get("FAUCET", {}).items()
        if cause.is_ecosystem
    )
    assert faucet_eco > 0.4, "FAUCET perf bugs come from ecosystem interactions"
    assert result["CORD"].get(RootCause.MEMORY, 0.0) > 0.1
    assert result["ONOS"].get(RootCause.CONCURRENCY, 0.0) > 0.1
