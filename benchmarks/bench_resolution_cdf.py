"""SS V-B / Fig 7: resolution-time CDFs per trigger.

Paper: configuration bugs have the longest tail of any trigger; ONOS tails
exceed CORD's for configuration/external/network triggers; CORD's reboot
tail exceeds ONOS's (specialized optical code); FAUCET is absent (GitHub
exposes no resolution timestamps).
"""

from __future__ import annotations

from conftest import once

from repro.analysis import resolution_cdfs
from repro.analysis.resolution import tail_comparison
from repro.reporting import ascii_table
from repro.taxonomy import Trigger


def test_bench_resolution_cdfs(benchmark, dataset):
    cdfs = once(benchmark, resolution_cdfs, dataset)
    rows = []
    for controller in sorted(cdfs):
        for trigger in Trigger:
            cdf = cdfs[controller].get(trigger)
            if cdf is None:
                continue
            rows.append(
                [
                    controller,
                    trigger.value,
                    len(cdf),
                    f"{cdf.median:.1f}",
                    f"{cdf.p90:.1f}",
                    f"{cdf.max:.0f}",
                ]
            )
    print()
    print(ascii_table(
        ["controller", "trigger", "n", "median d", "p90 d", "max d"], rows,
        title="Fig 7: resolution time (days) per trigger",
    ))
    assert "FAUCET" not in cdfs, "FAUCET resolution times are unobservable"
    for controller in ("ONOS", "CORD"):
        per = cdfs[controller]
        assert per[Trigger.CONFIGURATION].p90 == max(c.p90 for c in per.values())


def test_bench_tail_contrast(benchmark, dataset):
    tails = once(benchmark, tail_comparison, dataset, quantile=0.9)
    print()
    for trigger, per in sorted(tails.items(), key=lambda kv: kv[0].value):
        print(f"  {trigger.value:18s} " + "  ".join(
            f"{c}={v:6.1f}d" for c, v in sorted(per.items())
        ))
    for trigger in (Trigger.CONFIGURATION, Trigger.EXTERNAL_CALLS,
                    Trigger.NETWORK_EVENTS):
        assert tails[trigger]["ONOS"] > tails[trigger]["CORD"], trigger
    assert tails[Trigger.HARDWARE_REBOOTS]["CORD"] > tails[Trigger.HARDWARE_REBOOTS]["ONOS"]


def test_bench_distributional_significance(benchmark, dataset):
    """Back the Fig 7 contrast statistically: configuration resolution times
    are stochastically longer than reboot resolution times (one-sided
    Mann-Whitney).  The distributions overlap heavily (lognormal with
    sigma > 1), so this is a moderate-power test at alpha = 0.05."""
    from repro.analysis.stats import mann_whitney_greater

    def run():
        samples: dict[Trigger, list[float]] = {t: [] for t in Trigger}
        for bug in dataset:
            days = bug.report.resolution_days
            if days is not None:
                samples[bug.label.trigger].append(days)
        return mann_whitney_greater(
            samples[Trigger.CONFIGURATION], samples[Trigger.HARDWARE_REBOOTS]
        )

    result = once(benchmark, run)
    print(f"\nMann-Whitney(config > reboot resolution days): "
          f"U={result.statistic:.0f}, p={result.p_value:.2e}")
    assert result.significant(alpha=0.05)
