"""Table VII: symptom shares across domains (SDN vs Cloud vs BGP).

Paper: SDN fail-stop 20% vs Cloud 59% / BGP 39%; SDN byzantine 61.33% vs
Cloud 25% / BGP 38% — SDN bugs skew heavily toward byzantine behaviour
compared with other distributed-system domains.
"""

from __future__ import annotations

from conftest import once

from repro.analysis.symptoms import cross_domain_table
from repro.reporting import ascii_table, format_percent


def test_bench_cross_domain(benchmark, manual_sample):
    table = once(benchmark, cross_domain_table, manual_sample)
    rows = [
        [
            symptom,
            format_percent(row["SDN (measured)"]),
            format_percent(row["SDN (paper)"]),
            format_percent(row["Cloud"]),
            format_percent(row["BGP"]),
        ]
        for symptom, row in table.items()
    ]
    print()
    print(ascii_table(
        ["symptom", "SDN (measured)", "SDN (paper)", "Cloud", "BGP"], rows,
        title="Table VII: symptoms across domains",
    ))
    # Shape: SDN is byzantine-dominated, unlike Cloud/BGP which are
    # fail-stop-heavier relative to SDN.
    measured_byz = table["byzantine"]["SDN (measured)"]
    measured_fail = table["fail_stop"]["SDN (measured)"]
    assert measured_byz > table["byzantine"]["Cloud"]
    assert measured_byz > table["byzantine"]["BGP"]
    assert measured_fail < table["fail_stop"]["Cloud"]
    assert measured_fail < table["fail_stop"]["BGP"]
