"""Coverage-guided vs pure-random fuzzing under equal budget — the gate.

The fuzzer's reason to exist: on a 10-controller × 200-switch fat-tree
world, a coverage-guided campaign (corpus retention on unseen monitor
tokens, novelty-selected mutants, tree-biased ranking) must find at least
1.5× the distinct violation signatures a pure-random campaign finds with
the *same* budget, batch size, seed generator, and replay machinery —
pooled over two campaign seeds, and strictly more on every individual
seed.  Both arms are deterministic functions of their seed, so the gate
is a regression check, not a coin flip.

A second scenario checks the reproducer contract on a default-size
campaign: every violation class ships a ddmin-minimized schedule whose
replay still violates that class — twice, bit-for-bit.
"""

from __future__ import annotations

import json

from conftest import once

from repro.fuzzing import FuzzConfig, run_campaign
from repro.reporting import ascii_table

#: The gated headline ratio.
_GATE = 1.5
_SEEDS = (11, 23)

_SCALE = dict(
    controllers=10,
    switches=200,
    topology="fattree",
    budget=120,
    batch=12,
    horizon=40.0,
    events=1,
    minimize=False,
)


def _arms(tmp_path):
    results = []
    for seed in _SEEDS:
        guided = run_campaign(
            FuzzConfig(**_SCALE, seed=seed, guided=True),
            tmp_path / f"guided-{seed}",
        )
        rand = run_campaign(
            FuzzConfig(**_SCALE, seed=seed, guided=False),
            tmp_path / f"random-{seed}",
        )
        results.append((seed, guided, rand))
    return results


def test_bench_guided_vs_random_signatures(benchmark, tmp_path):
    results = once(benchmark, lambda: _arms(tmp_path))

    rows = []
    total_guided = 0
    total_random = 0
    for seed, guided, rand in results:
        assert guided.state.executed == rand.state.executed == _SCALE["budget"]
        rows.append([
            str(seed),
            str(guided.distinct_signatures),
            str(rand.distinct_signatures),
            f"{guided.distinct_signatures / max(rand.distinct_signatures, 1):.2f}x",
        ])
        total_guided += guided.distinct_signatures
        total_random += rand.distinct_signatures
    # Per-campaign yield summed over seeds: each campaign spends exactly
    # ``budget`` replays, so this compares what equal spend buys each arm.
    ratio = total_guided / max(total_random, 1)
    rows.append(["total", str(total_guided), str(total_random), f"{ratio:.2f}x"])
    topology = results[0][1].config.build_topology()
    print("\n" + ascii_table(
        ["seed", "guided sigs", "random sigs", "ratio"],
        rows,
        title=f"equal budget ({_SCALE['budget']} schedules) on {topology.summary()}",
    ))
    with open("benchmarks/artifacts/coverage_fuzzer.json", "w") as handle:
        json.dump({
            "topology": topology.summary(),
            "budget": _SCALE["budget"],
            "per_seed": [
                {"seed": seed,
                 "guided": guided.distinct_signatures,
                 "random": rand.distinct_signatures}
                for seed, guided, rand in results
            ],
            "total_guided": total_guided,
            "total_random": total_random,
            "ratio": round(ratio, 3),
            "gate": _GATE,
        }, handle, indent=2, sort_keys=True)

    for seed, guided, rand in results:
        assert guided.distinct_signatures > rand.distinct_signatures, (
            f"seed {seed}: guidance did not beat random "
            f"({guided.distinct_signatures} <= {rand.distinct_signatures})"
        )
    assert ratio >= _GATE, (
        f"coverage-guided fuzzing found only {ratio:.2f}x the distinct "
        f"violation signatures of pure-random (gate: {_GATE}x)"
    )


def test_bench_reproducers_replay_deterministically(benchmark, tmp_path):
    from repro.adversary.schedule import FaultSchedule
    from repro.fuzzing.campaign import _replay
    from repro.fuzzing.coverage import run_coverage

    config = FuzzConfig(
        controllers=5, switches=12, budget=40, batch=8, seed=7, horizon=30.0
    )
    report = once(
        benchmark, lambda: run_campaign(config, tmp_path / "reproducers")
    )

    assert report.state.reproducers, "campaign found no violation classes"
    topology = config.build_topology()
    for cls in sorted(report.state.reproducers):
        entry = report.state.reproducers[cls]
        minimized = FaultSchedule.from_dicts(entry.minimized)
        assert len(minimized) <= len(FaultSchedule.from_dicts(entry.original))
        prefix = f"viol:{cls}:"
        samples = [
            run_coverage(
                _replay(minimized, config, topology), horizon=config.horizon
            )
            for _ in range(2)
        ]
        for sample in samples:
            assert any(
                s.startswith(prefix) for s in sample.violation_signatures
            ), f"{cls}: minimized reproducer no longer violates its class"
        assert samples[0].tokens == samples[1].tokens, (
            f"{cls}: replay is not deterministic"
        )
