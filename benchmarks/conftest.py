"""Shared bench fixtures: one corpus for the whole benchmark session."""

from __future__ import annotations

import pytest

from repro.corpus import CorpusGenerator, StudyCorpus


@pytest.fixture(scope="session")
def corpus() -> StudyCorpus:
    return CorpusGenerator(seed=2020).generate()


@pytest.fixture(scope="session")
def dataset(corpus):
    return corpus.dataset


@pytest.fixture(scope="session")
def manual_sample(corpus):
    return corpus.manual_sample


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Most of these benches are full experiments (corpus generation, model
    training); repeating them for statistics would multiply runtimes without
    changing the reproduced numbers.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
