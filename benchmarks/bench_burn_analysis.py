"""SS VI-B / Fig 11: burn analysis of FAUCET's commit history.

Paper: commits split Configuration 38% / Network Functionality 35% /
External Abstraction 27%, with network functionality the central role.
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.gitmodel import FaucetHistoryGenerator, Subsystem, burn_distribution
from repro.reporting import ascii_table, format_percent

_PAPER_KEY = {
    Subsystem.CONFIGURATION: "configuration",
    Subsystem.NETWORK_FUNCTIONALITY: "network_functionality",
    Subsystem.EXTERNAL_ABSTRACTION: "external_abstraction",
}


def test_bench_burn_distribution(benchmark):
    def run():
        history = FaucetHistoryGenerator(n_commits=3000, seed=11).generate()
        return burn_distribution(history)

    dist = once(benchmark, run)
    rows = [
        [
            subsystem.value,
            format_percent(paperdata.FAUCET_COMMIT_SHARE[_PAPER_KEY[subsystem]]),
            format_percent(share),
        ]
        for subsystem, share in dist.items()
    ]
    print()
    print(ascii_table(["subsystem", "paper", "measured"], rows,
                      title="Fig 11: FAUCET commit distribution"))
    for subsystem, share in dist.items():
        expected = paperdata.FAUCET_COMMIT_SHARE[_PAPER_KEY[subsystem]]
        assert abs(share - expected) < 0.04
    assert (
        dist[Subsystem.CONFIGURATION]
        > dist[Subsystem.NETWORK_FUNCTIONALITY]
        > dist[Subsystem.EXTERNAL_ABSTRACTION]
    )
