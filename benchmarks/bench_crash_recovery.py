"""Crash-recovery evidence: kill-injection campaign over the journaled pipeline.

The recovery counterpart of ``bench_parallel_pipeline``: a journaled
pipeline run is SIGKILLed at three distinct journal offsets (mid-corpus,
after the tfidf commit, mid-validate) plus one torn-write scenario where a
committed checkpoint is truncated before resume.  Every killed-then-resumed
run must be bit-for-bit identical to the uninterrupted reference — same
accuracies, classifier-weight digests, topics, and checkpoint sha256s —
with torn checkpoints quarantined (never trusted) and only uncommitted
stages re-executed.
"""

from __future__ import annotations

from conftest import once

from repro.recovery import CrashHarness, run_kill_campaign, save_campaign_json
from repro.reporting import ascii_table

_KILL_POINTS = [2, 5, 8]


def test_bench_kill_injection_campaign(benchmark, tmp_path):
    harness = CrashHarness(tmp_path, seed=0)
    reports = once(
        benchmark,
        lambda: run_kill_campaign(harness, _KILL_POINTS, torn_write=True),
    )

    rows = [
        [
            report.label,
            "yes" if report.killed else "NO",
            str(report.skipped_stages),
            str(report.recomputed_stages),
            str(report.quarantined),
            "PASS" if report.passed else "FAIL",
        ]
        for report in reports
    ]
    print("\n" + ascii_table(
        ["scenario", "killed", "skipped", "recomputed", "quarantined", "verdict"],
        rows,
        title=f"kill-injection campaign ({harness.stage_count()} stages, "
              f"{harness.total_events()} journal events per clean run)",
    ))
    save_campaign_json(
        "benchmarks/artifacts/crash_recovery.json", reports
    )

    assert len(reports) == len(_KILL_POINTS) + 1
    for report in reports:
        assert report.killed, f"{report.label}: child was not SIGKILLed"
        assert report.passed, f"{report.label}: {report.mismatches}"
    # The torn-write scenario must surface its corruption in the ledger.
    torn = [r for r in reports if r.label.startswith("torn-write")]
    assert torn and torn[0].quarantined >= 1
    # Later kill points leave more committed work to skip on resume.
    by_kill = {r.kill_after: r for r in reports if not r.label.startswith("torn")}
    assert by_kill[2].skipped_stages <= by_kill[5].skipped_stages
    assert by_kill[5].skipped_stages <= by_kill[8].skipped_stages
