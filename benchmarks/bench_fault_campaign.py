"""RQ5 mechanical validation: the taxonomy-driven fault injector.

The paper positions its taxonomy as the design basis for representative
fault injectors.  This bench runs that injector: every catalog fault is
executed in the simulator, its observed symptom is compared against the
taxonomy cell it encodes, the named case studies are verified buggy-vs-
fixed, and the executable recovery strategies reproduce the deterministic-
recovery gap mechanically.
"""

from __future__ import annotations

from conftest import once

from repro.faultinjection import CASE_RUNNERS, FaultCampaign, run_case
from repro.frameworks.evaluator import mechanical_validation
from repro.reporting import ascii_table
from repro.taxonomy import BugType, Trigger


def test_bench_campaign(benchmark):
    campaign = once(benchmark, lambda: FaultCampaign(seeds_per_fault=4).run())
    rows = [
        [
            r.spec.fault_id,
            r.spec.trigger.value,
            r.spec.bug_type.value,
            r.spec.expected_symptom.value,
            f"{r.manifestation_rate:.2f}",
            "yes" if r.matches_expectation else "NO",
        ]
        for r in campaign.results
    ]
    print()
    print(ascii_table(
        ["fault", "trigger", "determinism", "expected", "manifest", "match"],
        rows, title="Fault campaign: taxonomy cell -> observed symptom",
    ))
    assert campaign.expectation_match_rate >= 0.9
    for result in campaign.deterministic_results():
        assert result.manifestation_rate == 1.0, result.spec.fault_id
    assert any(
        r.manifestation_rate < 1.0 for r in campaign.nondeterministic_results()
    )


def test_bench_case_studies(benchmark):
    def run():
        return {case_id: run_case(case_id) for case_id in sorted(CASE_RUNNERS)}

    outcomes = once(benchmark, run)
    rows = []
    for case_id, outcome in outcomes.items():
        buggy = outcome.buggy.symptom.value if outcome.buggy.symptom else "healthy"
        if outcome.buggy.byzantine_mode:
            buggy += f"/{outcome.buggy.byzantine_mode.value}"
        fixed = outcome.fixed.symptom.value if outcome.fixed.symptom else "healthy"
        rows.append([case_id, buggy, fixed,
                     "yes" if outcome.fix_removes_symptom else "NO"])
    print()
    print(ascii_table(
        ["case", "buggy outcome", "fixed outcome", "fix works"], rows,
        title="Named case studies, buggy vs patched",
    ))
    assert all(outcome.fix_removes_symptom for outcome in outcomes.values())


def test_bench_mechanical_strategies(benchmark):
    results = once(benchmark, mechanical_validation, seed=0)
    rows = []
    for strategy, attempts in results.items():
        detected = sum(1 for a in attempts if a.detected)
        recovered = sum(1 for a in attempts if a.recovered)
        rows.append([strategy, f"{detected}/{len(attempts)}",
                     f"{recovered}/{len(attempts)}"])
    print()
    print(ascii_table(
        ["strategy", "detected", "recovered"], rows,
        title="Executable recovery strategies vs the fault catalog",
    ))
    from repro.faultinjection.faults import catalog_by_id

    catalog = catalog_by_id()
    # Replay never beats a deterministic bug (SS III takeaway).
    for attempt in results["replay"]:
        if catalog[attempt.fault_id].bug_type is BugType.DETERMINISTIC:
            assert not attempt.recovered
    # Input filtering recovers only network-event-triggered faults.
    for attempt in results["input_filter"]:
        if attempt.recovered:
            assert catalog[attempt.fault_id].trigger is Trigger.NETWORK_EVENTS
    # And it does recover several deterministic network bugs — the one
    # bright spot the paper identifies.
    filter_wins = [a for a in results["input_filter"] if a.recovered]
    assert len(filter_wins) >= 2
