"""Control-plane adversary evidence: violate, minimize, compare (extension).

The paper's hardest bug classes — nondeterministic coordination failures,
controller-state inconsistency — live in the control-plane message stream,
and the troubleshooting frameworks it surveys (STS, Ravana) work there.
These benches exercise the adversary end to end:

* a seeded ≥20-event :class:`FaultSchedule` drives the interposition layer
  until a runtime invariant monitor fires;
* STS-style ddmin shrinks that schedule to a ≤5-event minimal reproducer,
  re-verified by deterministic replay (and written out as an artifact);
* an adversarial A/B campaign shows the hardened control plane (live-member
  quorum, term-checked mastership, retries, anti-entropy) violating fewer
  invariants than the bare one;
* the framework-evaluation table gains an ``sts_minimization`` row grounded
  in this implementation.
"""

from __future__ import annotations

import json
import pathlib

from conftest import once

from repro.adversary import (
    find_violating_schedule,
    minimize_schedule,
    run_adversary,
)
from repro.adversary.schedule import FaultSchedule
from repro.faultinjection import FaultCampaign
from repro.frameworks.evaluator import mechanical_validation
from repro.reporting import ascii_table

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


def test_bench_minimized_reproducer(benchmark):
    """≥20 events in, ≤5 events out, same invariant on deterministic replay."""

    def run():
        seed, schedule, result = find_violating_schedule(0, events=20)
        minimized = minimize_schedule(schedule)
        replay = run_adversary(minimized.minimized)
        return seed, schedule, result, minimized, replay

    seed, schedule, result, minimized, replay = once(benchmark, run)
    print()
    print(f"seed {seed}: {len(schedule)} events, "
          f"first violation {result.first_violation.invariant} "
          f"at t={result.first_violation.time:.2f}")
    print(minimized.summary())
    for event in minimized.minimized.events:
        print(f"  t={event.time:8.3f} {event.action.value:10s} {event.target}")

    assert len(schedule) >= 20
    assert result.violated
    assert len(minimized.minimized) <= 5
    # The minimized trace reproduces the *same* invariant violation.
    assert replay.violated
    assert replay.first_violation.invariant == minimized.target

    ARTIFACTS.mkdir(exist_ok=True)
    trace_path = ARTIFACTS / "minimized_trace.json"
    trace_path.write_text(minimized.minimized.to_json())
    # Round-trip sanity: the artifact reloads into the identical schedule.
    assert FaultSchedule.from_json(trace_path.read_text()) == minimized.minimized
    payload = {
        "seed": seed,
        "original_events": len(schedule),
        "minimized_events": len(minimized.minimized),
        "replays": minimized.replays,
        "invariant": minimized.target,
    }
    (ARTIFACTS / "minimized_trace_meta.json").write_text(json.dumps(payload))
    print(f"artifact: {trace_path}")


def test_bench_adversarial_ab(benchmark):
    """Hardened control plane violates fewer invariants than the bare one."""
    report = once(
        benchmark,
        lambda: FaultCampaign(seeds_per_fault=5).run_adversarial_ab(events=20),
    )
    rows = [
        [name, str(bare), str(hardened)]
        for name, (bare, hardened) in sorted(report.per_invariant().items())
    ]
    print()
    print(ascii_table(
        ["invariant", "bare", "hardened"], rows,
        title="Adversarial A/B: violating subjects per invariant",
    ))
    summary = report.summary()
    print(f"violating subjects {summary['bare_violations']} -> "
          f"{summary['hardened_violations']} "
          f"({summary['hardened_retries']} hardened retries spent)")

    assert report.bare_violation_count > 0
    assert report.hardened_violation_count < report.bare_violation_count
    # The hardening is not free: the ledger priced the retries it spent.
    assert summary["hardened_retries"] > 0


def test_bench_sts_row(benchmark):
    """Framework validation includes the trace-minimization (diagnosis) row."""
    results = once(benchmark, mechanical_validation)
    assert "sts_minimization" in results
    attempts = results["sts_minimization"]
    rows = [
        [a.fault_id, "yes" if a.detected else "no",
         "yes" if a.recovered else "no"]
        for a in attempts
    ]
    print()
    print(ascii_table(
        ["fault", "detects", "recovers"], rows,
        title="STS-style minimization: diagnosis-only coverage",
    ))
    # STS detects manifest violations but never repairs the system.
    assert any(a.detected for a in attempts)
    assert not any(a.recovered for a in attempts)
