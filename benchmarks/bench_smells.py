"""SS VI-A / Figs 8-9: code smells across ONOS releases.

Paper: architecture smells (god component) stay constant despite declining
commits; unstable-dependency smells decline steadily 1.12->2.3; design
smells spike between 1.12-1.14 then stay flat (insufficient modularization)
or decline (broken hierarchy); net.intent.impl grows from 49 to 107 classes;
ONOS-6594 re-parents Run under AsyncLeaderElector, fixing its broken
hierarchy (Fig 9).
"""

from __future__ import annotations

from conftest import once

from repro.codebase import release_series
from repro.paperdata import ONOS_RELEASES
from repro.reporting import ascii_table
from repro.smells import SmellKind, analyze


def test_bench_fig8_smell_series(benchmark):
    def run():
        return {
            version: analyze(model).counts()
            for version, model in release_series().items()
        }

    counts = once(benchmark, run)
    rows = [
        [version] + [counts[version][kind] for kind in SmellKind]
        for version in ONOS_RELEASES
    ]
    print()
    print(ascii_table(
        ["release"] + [k.value for k in SmellKind], rows,
        title="Fig 8: smell counts per ONOS release",
    ))
    series = {kind: [counts[v][kind] for v in ONOS_RELEASES] for kind in SmellKind}
    god = series[SmellKind.GOD_COMPONENT]
    assert max(god) - min(god) <= 1, "architecture debt constant"
    unstable = series[SmellKind.UNSTABLE_DEPENDENCY]
    assert unstable[0] > unstable[-1], "unstable dependencies decline"
    insufficient = series[SmellKind.INSUFFICIENT_MODULARIZATION]
    assert insufficient[2] > insufficient[0], "design spike 1.12->1.14"
    assert max(insufficient[2:]) - min(insufficient[2:]) <= 2, "then flat"
    broken = series[SmellKind.BROKEN_HIERARCHY]
    assert broken[2] == max(broken) and broken[-1] == min(broken)
    assert max(series[SmellKind.HUB_LIKE_MODULARIZATION]) <= 6, "hubs stay low"
    assert max(series[SmellKind.MISSING_HIERARCHY]) <= 6


def test_bench_intent_impl_growth(benchmark):
    models = once(benchmark, release_series)
    first = models["1.12"].package("org.onosproject.net.intent.impl").class_count
    last = models["2.3"].package("org.onosproject.net.intent.impl").class_count
    print(f"\nnet.intent.impl classes: 1.12 -> {first} (paper 49), "
          f"2.3 -> {last} (paper 107)")
    assert abs(first - 49) <= 5 and abs(last - 107) <= 5


def test_bench_fig9_onos6594(benchmark):
    models = once(benchmark, release_series)
    run_class = "org.onosproject.store.primitives.Run"
    before = [
        inst.subject
        for inst in analyze(models["1.15"]).by_kind(SmellKind.BROKEN_HIERARCHY)
    ]
    after = [
        inst.subject
        for inst in analyze(models["2.0"]).by_kind(SmellKind.BROKEN_HIERARCHY)
    ]
    print(f"\nRun broken-hierarchy before fix: {run_class in before}; "
          f"after ONOS-6594: {run_class in after}")
    assert run_class in before and run_class not in after
