"""SS IV "New Research Directions": log/metrics-based crash prediction.

The paper: "for the failures that are due to load and ecosystem
interactions, we may predict these crashes by analyzing metrics or existing
syslogs".  This bench trains the windowed-telemetry predictor and shows the
boundary of that idea: load- and memory-leak crashes are caught minutes in
advance with no false alarms, while missing-logic/configuration crashes are
invisible to telemetry (the deterministic null-deref gives no warning) —
which is why the paper also demands *input*-side techniques for those.
"""

from __future__ import annotations

from conftest import once

from repro.prediction import (
    CrashKind,
    CrashPredictor,
    TraceGenerator,
    evaluate_predictor,
)
from repro.reporting import ascii_table, format_percent


def test_bench_crash_prediction(benchmark):
    def run():
        train = TraceGenerator(seed=1).generate_mixed(per_kind=15)
        test = TraceGenerator(seed=99).generate_mixed(per_kind=12)
        predictor = CrashPredictor(window=180.0, horizon=240.0, seed=0).fit(train)
        return evaluate_predictor(predictor, test)

    report = once(benchmark, run)
    rows = []
    for kind in (CrashKind.MEMORY_LEAK, CrashKind.LOAD, CrashKind.LOGIC):
        hits, total = report.detected.get(kind, (0, 0))
        lead = report.lead_time.get(kind)
        rows.append([
            kind.value,
            f"{hits}/{total}",
            format_percent(report.recall(kind)),
            f"{lead:.0f} s" if lead else "-",
        ])
    print()
    print(ascii_table(
        ["crash kind", "predicted", "recall", "mean lead time"], rows,
        title="SS IV: crash prediction from telemetry",
    ))
    print(f"false-alarm rate on healthy runs: "
          f"{format_percent(report.false_alarm_rate)}")
    # The paper's claim, mechanized:
    assert report.recall(CrashKind.MEMORY_LEAK) >= 0.8
    assert report.recall(CrashKind.LOAD) >= 0.8
    assert report.recall(CrashKind.LOGIC) <= 0.2
    assert report.false_alarm_rate <= 0.2
    assert report.lead_time[CrashKind.MEMORY_LEAK] > 60.0
