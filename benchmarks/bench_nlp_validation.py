"""SS II-C2: autoclassifier validation (2/3 train, 1/3 test).

Paper: SVM with normalization is best — 96% accuracy for bug type, 86% for
symptoms; no algorithm predicts fixes accurately.
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.pipeline import ClassifierKind, validate_pipeline
from repro.reporting import ascii_table, format_percent


def test_bench_svm_dimension_accuracy(benchmark, manual_sample):
    def run():
        return {
            dim: validate_pipeline(manual_sample, dim, seed=0)
            for dim in ("bug_type", "symptom", "trigger", "root_cause", "fix")
        }

    reports = once(benchmark, run)
    paper = {
        "bug_type": paperdata.SVM_BUG_TYPE_ACCURACY,
        "symptom": paperdata.SVM_SYMPTOM_ACCURACY,
        "trigger": None,
        "root_cause": None,
        "fix": None,
    }
    rows = [
        [dim, format_percent(paper[dim]), format_percent(rep.accuracy)]
        for dim, rep in reports.items()
    ]
    print()
    print(ascii_table(["dimension", "paper (SVM)", "measured (SVM)"], rows,
                      title="SS II-C2: classification accuracy"))
    assert reports["bug_type"].accuracy >= 0.90
    assert reports["symptom"].accuracy >= 0.80
    # "we found it hard to find any algorithm to predict bug fixes accurately"
    assert reports["fix"].accuracy < 0.65


def test_bench_classifier_comparison(benchmark, manual_sample):
    """SVM should be the best of the explored classifier families.

    Averaged over three train/test splits: a single 50-sample test set
    makes one flipped sample worth 2pp.
    """
    seeds = (0, 1, 2)

    def run():
        means: dict[ClassifierKind, float] = {}
        for kind in ClassifierKind:
            accs = [
                validate_pipeline(manual_sample, "symptom", kind=kind, seed=s).accuracy
                for s in seeds
            ]
            means[kind] = sum(accs) / len(accs)
        return means

    means = once(benchmark, run)
    rows = [
        [kind.value, format_percent(acc)] for kind, acc in means.items()
    ]
    print()
    print(ascii_table(
        ["classifier", f"symptom accuracy (mean of {len(seeds)} splits)"], rows,
        title="SS II-C2: classifier family comparison",
    ))
    # Paper shape: SVM the best family.  On our cleaner synthetic text the
    # decision tree ties SVM (noted in EXPERIMENTS.md); we assert SVM is at
    # the top within half a test sample and clearly ahead of AdaBoost/NB.
    best = max(means.values())
    svm = means[ClassifierKind.SVM]
    assert svm >= best - 0.01
    assert svm > means[ClassifierKind.ADABOOST]
    assert svm > means[ClassifierKind.NAIVE_BAYES]
