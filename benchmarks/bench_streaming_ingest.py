"""Million-event acceptance gate for the streaming ingestion plane.

The paper's corpus is a snapshot: II-B freezes tracker state once and
analyzes it offline.  :mod:`repro.stream` is the same measurement run as
a *process* — events arrive continuously from sources that fail — and
this bench is the evidence that the plane holds its robustness contract
at a scale three orders of magnitude past the 795-bug study corpus:

* **exact accounting at >= 1M events under faults** — every record the
  flaky source emits is applied, deduplicated, dead-lettered, or counted
  as lost upstream with a priced ``GIVE_UP``; the unaccounted remainder
  is exactly zero;
* **duplication/reordering are analytically invisible** — a faulty arm
  whose only faults are duplicates and reorders converges to the same
  analytics digest as a clean arm over the same event population;
* **online learning keeps up with batch** — the ``partial_fit`` SVM
  lands within 2 accuracy points of the offline :class:`LinearSVM`
  on the study corpus under an identical hashed feature space.

Counters land in ``benchmarks/BENCH_trajectory.json`` where they are
gated at zero tolerance (they are pure functions of seed + config);
events/s is recorded ungated.
"""

from __future__ import annotations

import pathlib
import random
import re
import time

from conftest import once

from repro.ml.svm import LinearSVM
from repro.observability import TrajectoryStore
from repro.resilience.ledger import ResilienceEvent
from repro.stream import (
    FlakySource,
    HashingVectorizer,
    IngestConfig,
    OnlineLinearSVM,
    run_ingest,
    synthetic_event,
)

TRAJECTORY = pathlib.Path(__file__).parent / "BENCH_trajectory.json"

#: The million-event gate config.  The outage depth exceeds the retry
#: budget, so some blocks are genuinely lost — the point is that the
#: loss is *priced*, not avoided.
MILLION = IngestConfig(
    seed=2020,
    events=1_000_000,
    batch=131_072,
    block=2048,
    pool=150_000,
    outage_rate=0.08,
    outage_depth=5,
    rate_limit_rate=0.04,
    corrupt_rate=0.01,
    duplicate_rate=0.05,
    reorder_rate=0.2,
    queue_capacity=4096,
    retry_attempts=3,
)

_TOKEN = re.compile(r"[a-z][a-z0-9_]+")


def _emitted(config: IngestConfig) -> int:
    """Regenerate every wire block independently and count records —
    the external audit that the source's purity makes affordable."""
    source = FlakySource(
        lambda i: synthetic_event(config.seed, i, pool=config.pool),
        config.events,
        mix=config.mix(),
        seed=config.seed,
        block_size=config.block,
    )
    return sum(len(source.wire_block(b)) for b in range(source.n_blocks))


def test_bench_million_event_accounting(benchmark, tmp_path):
    """>= 1M events under the full fault catalog: zero unaccounted."""

    def run():
        start = time.perf_counter()
        report = run_ingest(MILLION, tmp_path / "million")
        return report, time.perf_counter() - start

    report, elapsed = once(benchmark, run)
    state = report.state
    unaccounted = state.consumed - (
        state.applied + state.deduped + state.dead_lettered
    )
    give_ups = report.ledger.count(ResilienceEvent.GIVE_UP)
    rate = state.consumed / elapsed
    print()
    print(f"  {report.summary()}")
    print(f"  {rate:,.0f} events/s over {elapsed:.1f}s wall "
          f"({report.batches_executed} batches, "
          f"{state.max_queue_depth} peak queue depth)")

    assert state.consumed >= 1_000_000 - state.lost_upstream
    # Gate 1: the accounting identity, with zero remainder.
    assert unaccounted == 0, f"{unaccounted} events unaccounted"
    # Gate 2: every abandoned block is priced in the ledger.
    assert give_ups == state.blocks_abandoned
    assert state.lost_upstream > 0, "outage depth never beat the retry budget"
    # Gate 3: every fault class actually fired at this scale.
    assert state.deduped > 0 and state.dead_lettered > 0
    assert state.retries > 0 and state.rate_limited > 0

    entry = {
        "bench": "streaming_ingest",
        "events": MILLION.events,
        "consumed": state.consumed,
        "applied": state.applied,
        "deduped": state.deduped,
        "dead_lettered": state.dead_lettered,
        "lost_upstream": state.lost_upstream,
        "unaccounted": unaccounted,
        "retries": state.retries,
        "give_ups": give_ups,
        "bugs_tracked": len(state.bugs),
        "events_per_sec": round(rate, 1),
    }
    TrajectoryStore(TRAJECTORY).record(entry)


def test_bench_duplication_is_invisible(benchmark, tmp_path):
    """Duplicates + reorders: same analytics digest as the clean arm.

    Emitted-record conservation is audited externally by regenerating
    every wire block, independent of either run.
    """
    clean = IngestConfig(seed=11, events=60_000, batch=8192, block=256,
                         pool=12_000, learn=False)
    noisy = IngestConfig(seed=11, events=60_000, batch=8192, block=256,
                         pool=12_000, duplicate_rate=0.15, reorder_rate=0.4,
                         learn=False)

    def run():
        return (run_ingest(clean, tmp_path / "clean"),
                run_ingest(noisy, tmp_path / "noisy"))

    clean_report, noisy_report = once(benchmark, run)
    cs, ns = clean_report.state, noisy_report.state
    print()
    print(f"  clean: {clean_report.summary()}")
    print(f"  noisy: {noisy_report.summary()}")

    assert cs.consumed == cs.applied == clean.events
    assert cs.deduped == cs.dead_lettered == cs.lost_upstream == 0
    # The noisy arm consumed strictly more records but applied exactly
    # the same unique events — its *analytics* are bit-identical.
    assert ns.consumed > cs.consumed
    assert ns.deduped == ns.consumed - cs.consumed
    assert ns.analytics_digest() == cs.analytics_digest()
    # External conservation audit for both arms.
    for config, state in ((clean, cs), (noisy, ns)):
        assert _emitted(config) == state.consumed + state.lost_upstream


def test_bench_online_within_two_points_of_batch(benchmark, dataset):
    """``partial_fit`` symptom accuracy >= batch accuracy - 2 points."""
    bugs = list(dataset)
    vec = HashingVectorizer(n_features=4096, seed=0)
    rows, labels = [], []
    for bug in bugs:
        text = f"{bug.report.title} {bug.report.description}".lower()
        rows.append(vec.transform_tokens(_TOKEN.findall(text)))
        labels.append(bug.label.symptom.value)
    order = list(range(len(bugs)))
    random.Random(0).shuffle(order)
    split = (3 * len(order)) // 4
    train_idx, test_idx = order[:split], order[split:]

    def run():
        batch = LinearSVM(seed=0)
        batch.fit(
            vec.to_dense([rows[i] for i in train_idx]),
            [labels[i] for i in train_idx],
        )
        batch_pred = batch.predict(vec.to_dense([rows[i] for i in test_idx]))

        online = OnlineLinearSVM(n_features=4096, t0=len(train_idx))
        epoch_rng = random.Random(0)
        for _ in range(40):
            epoch = list(train_idx)
            epoch_rng.shuffle(epoch)
            online.partial_fit([rows[i] for i in epoch],
                               [labels[i] for i in epoch])
        online_pred = online.predict([rows[i] for i in test_idx])
        return batch_pred, online_pred

    batch_pred, online_pred = once(benchmark, run)
    truth = [labels[i] for i in test_idx]
    batch_acc = sum(p == t for p, t in zip(batch_pred, truth)) / len(truth)
    online_acc = sum(p == t for p, t in zip(online_pred, truth)) / len(truth)
    print()
    print(f"  batch  LinearSVM       symptom accuracy {batch_acc:.3f}")
    print(f"  online OnlineLinearSVM symptom accuracy {online_acc:.3f} "
          f"({len(train_idx)} train / {len(truth)} test)")
    assert online_acc >= batch_acc - 0.02, (
        f"online {online_acc:.3f} more than 2 points below batch {batch_acc:.3f}"
    )
