"""Table IV: FAUCET dependency burn-down.

Paper: ryu leads with 28 version changes, then chewie (19),
prometheus_client (8), pyyaml (6), eventlet/beka (5), ... — core packages
churn faster than the controller releases, forcing continual compatibility
work.
"""

from __future__ import annotations

from conftest import once

from repro import paperdata
from repro.gitmodel import DependencyBurndown, FaucetHistoryGenerator
from repro.reporting import ascii_table


def test_bench_dependency_burndown(benchmark):
    def run():
        snapshots = FaucetHistoryGenerator(seed=11).generate_requirements_history()
        return DependencyBurndown(snapshots)

    burndown = once(benchmark, run)
    ranked = burndown.ranked()
    rows = [
        [
            package,
            paperdata.FAUCET_DEPENDENCY_BURNDOWN[package][0],
            changes,
            paperdata.FAUCET_DEPENDENCY_BURNDOWN[package][1],
        ]
        for package, changes in ranked
    ]
    print()
    print(ascii_table(
        ["dependency", "paper #changes", "measured", "description"], rows,
        title="Table IV: FAUCET dependency burn-down",
    ))
    changes = dict(ranked)
    for package, (expected, _desc) in paperdata.FAUCET_DEPENDENCY_BURNDOWN.items():
        assert changes[package] == expected, package
    assert ranked[0][0] == "ryu" and ranked[1][0] == "chewie"


def test_bench_release_cycle_mismatch(benchmark):
    """Critical packages churn much faster than annual controller releases."""

    def run():
        snapshots = FaucetHistoryGenerator(seed=11).generate_requirements_history()
        burndown = DependencyBurndown(snapshots)
        return {
            pkg: burndown.release_cycle_days(pkg) for pkg in ("ryu", "chewie")
        }

    cycles = once(benchmark, run)
    print()
    for package, days in cycles.items():
        print(f"  {package}: one version change every ~{days:.0f} days")
    assert all(days is not None and days < 180 for days in cycles.values())
