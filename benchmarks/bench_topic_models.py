"""Ablation: NMF vs LDA for keyword extraction (SS II-C design choice).

The paper picks TF-IDF + NMF over LDA/HDP, citing prior bug studies.  This
bench justifies that choice on our corpus: both models recover the
category-discriminative keywords, but NMF fits the 150-document sample an
order of magnitude faster and yields at-least-as-pure topics (purity =
how well topics align with symptom classes).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import once

from repro.ml import LDA, NMF
from repro.reporting import ascii_table
from repro.textmining import TfidfVectorizer, Tokenizer


def _prepare(manual_sample):
    tokenizer = Tokenizer()
    docs = tokenizer.tokenize_all(manual_sample.texts())
    tfidf = TfidfVectorizer(min_count=2)
    matrix = tfidf.fit_transform(docs)
    # LDA needs integer counts, not TF-IDF weights.
    counts = np.zeros_like(matrix, dtype=int)
    vocab = tfidf.vocabulary_
    for row, doc in enumerate(docs):
        for token in doc:
            idx = vocab.get(token)
            if idx >= 0:
                counts[row, idx] += 1
    return matrix, counts, tfidf.feature_names, manual_sample.labels("symptom")


def _topic_purity(doc_topic: np.ndarray, labels: list[str]) -> float:
    """Assign each doc to its argmax topic; purity = share of docs whose
    label matches their topic's majority label."""
    assignments = np.argmax(doc_topic, axis=1)
    correct = 0
    for topic in set(assignments.tolist()):
        members = [labels[i] for i in range(len(labels)) if assignments[i] == topic]
        if members:
            correct += max(members.count(v) for v in set(members))
    return correct / len(labels)


def test_bench_nmf_vs_lda(benchmark, manual_sample):
    def run():
        matrix, counts, names, labels = _prepare(manual_sample)
        n_topics = 4  # one per symptom class

        start = time.perf_counter()
        nmf = NMF(n_components=n_topics, seed=0)
        W = nmf.fit_transform(matrix)
        nmf_seconds = time.perf_counter() - start

        start = time.perf_counter()
        lda = LDA(n_topics=n_topics, n_iterations=40, seed=0).fit(counts)
        lda_seconds = time.perf_counter() - start

        return {
            "nmf": (_topic_purity(W, labels), nmf_seconds,
                    nmf.top_terms(names, 5)),
            "lda": (_topic_purity(lda.doc_topic_, labels), lda_seconds,
                    lda.top_terms(names, 5)),
        }

    results = once(benchmark, run)
    rows = [
        [name, f"{purity:.2f}", f"{seconds * 1000:.0f} ms",
         " | ".join(",".join(t[:3]) for t in topics[:2])]
        for name, (purity, seconds, topics) in results.items()
    ]
    print()
    print(ascii_table(
        ["model", "topic purity", "fit time", "sample topics"], rows,
        title="SS II-C ablation: NMF vs LDA keyword extraction",
    ))
    nmf_purity, nmf_time, _ = results["nmf"]
    lda_purity, lda_time, _ = results["lda"]
    # The paper's choice justified: NMF is no worse on purity and much
    # faster to fit.
    assert nmf_purity >= lda_purity - 0.10
    assert nmf_time < lda_time
    assert nmf_purity > 0.5  # topics meaningfully align with symptoms
