"""SS II-B methodology: keyword severity extraction for GitHub issues.

FAUCET's GitHub tracker has no severity field; the paper recovers critical
bugs "using a keyword approach".  This bench measures that approach against
ground truth: every generated FAUCET issue is critical by construction, so
recall of the extractor is directly observable, broken down by symptom
(error-message bugs are the expected misses — their text carries no
severity-bearing vocabulary, and the paper itself deems them operationally
irrelevant).
"""

from __future__ import annotations

from conftest import once

from repro.reporting import ascii_table, format_percent
from repro.taxonomy import Symptom
from repro.trackers import KeywordSeverityExtractor


def test_bench_severity_recall(benchmark, corpus):
    extractor = KeywordSeverityExtractor()

    def run():
        faucet = corpus.dataset.by_controller("FAUCET")
        per_symptom: dict[Symptom, list[bool]] = {}
        for bug in faucet:
            per_symptom.setdefault(bug.label.symptom, []).append(
                extractor.is_critical(bug.report)
            )
        return per_symptom

    per_symptom = once(benchmark, run)
    rows = []
    total_hits = 0
    total = 0
    for symptom, flags in sorted(per_symptom.items(), key=lambda kv: kv[0].value):
        hits = sum(flags)
        total_hits += hits
        total += len(flags)
        rows.append([symptom.value, len(flags), format_percent(hits / len(flags))])
    rows.append(["ALL", total, format_percent(total_hits / total)])
    print()
    print(ascii_table(
        ["symptom", "issues", "recovered as critical"], rows,
        title="SS II-B: keyword severity extraction recall (FAUCET)",
    ))
    assert total_hits / total > 0.7
    # Crash reports are nearly always recognized; error-message reports are
    # the systematic misses.
    failstop = per_symptom[Symptom.FAIL_STOP]
    errmsg = per_symptom[Symptom.ERROR_MESSAGE]
    assert sum(failstop) / len(failstop) > 0.9
    assert sum(errmsg) / len(errmsg) < sum(failstop) / len(failstop)


def test_bench_severity_precision_on_noise(benchmark, corpus):
    """The extractor must also *reject* trivial issues: feed it doc-typo
    noise reports and measure the false-critical rate."""
    from datetime import datetime

    from repro.trackers.models import BugReport

    noise_reports = [
        BugReport(
            bug_id=f"NOISE-{i}",
            controller="FAUCET",
            title=title,
            description=description,
            created_at=datetime(2019, 1, 1),
        )
        for i, (title, description) in enumerate(
            [
                ("typo in readme", "a cosmetic documentation typo in the docs"),
                ("rename variable", "cleanup only, no functional change at all"),
                ("improve log wording", "minor warning message wording tweak"),
                ("bump copyright year", "documentation chore for the new year"),
                ("add example config", "docs: provide a sample yaml for users"),
            ]
        )
    ]
    extractor = KeywordSeverityExtractor()

    def run():
        return [extractor.is_critical(r) for r in noise_reports]

    flags = once(benchmark, run)
    false_rate = sum(flags) / len(flags)
    print(f"\nfalse-critical rate on trivial issues: {format_percent(false_rate)}")
    assert false_rate == 0.0
